"""Picklable run specifications.

A :class:`RunSpec` is everything one simulation run depends on — scenario,
scheduling policy, configuration, and seeds — expressed as plain frozen
dataclasses, so it can

* cross a ``spawn`` process boundary (the :class:`~repro.parallel.SimPool`
  worker rebuilds the scheduler from the spec and executes it), and
* be hashed canonically (the :class:`~repro.parallel.ResultCache` keys an
  on-disk result by the spec plus a code fingerprint).

Schedulers are named, not carried: a live scheduler object is stateful
and unsuitable for hashing, so the spec stores the policy *name* plus its
frozen config and :func:`build_scheduler` constructs a fresh instance at
execution time — exactly what the serial drivers always did.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.coda import CodaConfig, CodaScheduler
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import Scenario, run_scenario
from repro.health.config import HealthConfig
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import Scheduler
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler

#: The policies a spec may name, in canonical comparison order.
SCHEDULER_NAMES: Tuple[str, ...] = ("fifo", "drf", "coda")


def build_scheduler(
    name: str,
    coda_config: Optional[CodaConfig] = None,
    restart_policy: Optional[RestartPolicy] = None,
) -> Scheduler:
    """Construct a fresh scheduler for the named policy.

    ``coda_config`` only applies to CODA; the baselines have no tunables
    beyond the restart policy.
    """
    if name == "fifo":
        return FifoScheduler(restart_policy=restart_policy)
    if name == "drf":
        return DrfScheduler(restart_policy=restart_policy)
    if name == "coda":
        return CodaScheduler(coda_config, restart_policy=restart_policy)
    raise ValueError(f"unknown scheduler: {name!r}")


@dataclass(frozen=True)
class RunSpec:
    """One independent (scenario, policy, seed) simulation run."""

    scenario: Scenario
    scheduler: str = "coda"
    #: Optional trace-seed override.  ``None`` keeps the scenario's own
    #: seed; setting it derives a sibling scenario that differs *only* in
    #: the trace seed — the replica fan-out pattern of multi-seed sweeps.
    seed: Optional[int] = None
    coda_config: Optional[CodaConfig] = None
    restart_policy: Optional[RestartPolicy] = None
    health_config: Optional[HealthConfig] = None
    sample_interval_s: float = 300.0

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_NAMES}"
            )
        if self.sample_interval_s <= 0:
            raise ValueError(
                f"non-positive sample interval: {self.sample_interval_s}"
            )

    def with_seed(self, seed: int) -> "RunSpec":
        """The same run on the same cluster, under trace seed ``seed``."""
        return replace(self, seed=seed)

    def label(self) -> str:
        """Short human-readable cell name, e.g. ``coda:s7``.

        Used by the sweep ledger and reports; unique within a policy x
        seed grid over one scenario (the content-addressed cache key is
        the collision-proof identity).
        """
        seed = (
            self.seed
            if self.seed is not None
            else self.scenario.trace_config.seed
        )
        return f"{self.scheduler}:s{seed}"

    def resolved_scenario(self) -> Scenario:
        """The scenario with any seed override applied."""
        if self.seed is None:
            return self.scenario
        return replace(
            self.scenario,
            trace_config=replace(self.scenario.trace_config, seed=self.seed),
        )

    def execute(self) -> RunResult:
        """Run this spec to completion (in the calling process)."""
        return run_scenario(
            self.resolved_scenario(),
            build_scheduler(
                self.scheduler, self.coda_config, self.restart_policy
            ),
            sample_interval_s=self.sample_interval_s,
            health_config=self.health_config,
        )

    def fingerprint(self) -> Dict[str, Any]:
        """Plain-data identity of this spec, seed override resolved.

        Two specs that execute the identical simulation produce the same
        fingerprint: the seed override is folded into the scenario, so
        ``RunSpec(s, seed=7)`` and ``RunSpec(s_with_seed_7)`` coincide.
        """
        resolved = replace(self, scenario=self.resolved_scenario(), seed=None)
        return dataclasses.asdict(resolved)

    def canonical_json(self) -> str:
        """Deterministic JSON encoding of :meth:`fingerprint`."""
        return json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        )
