"""The process-level fan-out pool.

:class:`SimPool` executes independent :class:`~repro.parallel.RunSpec`
runs across a ``multiprocessing`` worker pool (``spawn`` context — fresh
interpreters, no inherited state) and memoizes them through an optional
:class:`~repro.parallel.ResultCache`.

Determinism contract:

* every run is a pure function of its spec (seeded trace, seeded faults,
  no wall-clock reads in the simulator), so a worker process computes the
  byte-identical result the caller would have computed serially;
* results are returned **in spec order**, never completion order;
* every result — fresh, pooled, or cached — passes through the same
  exact JSON round trip (:mod:`repro.metrics.serialize`), so a warm-cache
  result is indistinguishable from a cold one.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.metrics.serialize import run_result_from_dict, run_result_to_dict
from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.spec import RunSpec

if TYPE_CHECKING:  # import cycle: repro.sweep builds on repro.parallel
    from repro.sweep.config import SupervisorConfig

#: Environment override consulted by :func:`default_jobs`.
JOBS_ENV = "REPRO_JOBS"

#: Escape hatch consulted by :func:`clamp_jobs`: keep the spawn pool
#: even on a single-CPU host (CI chaos tests need the process boundary
#: to inject crashes into).
FORCE_SPAWN_ENV = "REPRO_SWEEP_FORCE_SPAWN"


def clamp_jobs(requested: int) -> int:
    """The single home of the single-CPU degradation rule.

    A single-CPU host collapses any multi-worker request to 1 — spawn
    overhead buys nothing there — unless ``REPRO_SWEEP_FORCE_SPAWN``
    insists on the process boundary.  Every entry point that turns a
    *requested* worker count into an *actual* one (``default_jobs``,
    the sweep service's ``effective_jobs``, ``compare --jobs``) routes
    through here so the paths cannot disagree.  Programmatic
    ``SimPool(jobs=...)`` construction is deliberately not clamped.
    """
    if requested <= 1:
        return 1
    if os.environ.get(FORCE_SPAWN_ENV):
        return requested
    if (os.cpu_count() or 1) <= 1:
        return 1
    return requested


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``; 1 (serial) when unset.

    An env-configured ``REPRO_JOBS=8`` is still subject to
    :func:`clamp_jobs`, so a single-CPU host gets 1 unless
    ``REPRO_SWEEP_FORCE_SPAWN`` overrides.
    """
    value = os.environ.get(JOBS_ENV)
    if not value:
        return 1
    return clamp_jobs(max(1, int(value)))


def _execute_to_dict(spec: RunSpec) -> Dict[str, Any]:
    """Pool worker: run one spec and return its serialized result.

    Module-level so ``spawn`` can import it; returns plain data so the
    parent deserializes through the same path the cache uses.
    """
    return run_result_to_dict(spec.execute())


def serial_map(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Execute specs one after another in this process (no round trip).

    The executor the refactored drivers default to — byte-identical to
    the historical hard-coded serial loops.
    """
    return [spec.execute() for spec in specs]


class SimPool:
    """Fans independent runs out over processes, through the cache.

    ``jobs=1`` executes in-process (no spawn overhead) but still takes
    the serialization round trip, keeping all three paths — serial,
    parallel, cached — structurally identical.

    Passing a :class:`~repro.sweep.SupervisorConfig` as ``supervisor``
    routes multi-process execution through the fault-tolerant worker
    supervisor (per-run timeouts, heartbeat liveness, bounded retries)
    instead of a bare ``multiprocessing.Pool``.  :meth:`map` promises a
    result for every spec, so a spec the supervisor quarantines raises
    :class:`RuntimeError` — callers that want partial results should use
    :func:`repro.sweep.run_sweep` instead.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        supervisor: Optional["SupervisorConfig"] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.supervisor = supervisor

    @property
    def stats(self) -> CacheStats:
        """The attached cache's counters (all zero when uncached)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def map(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; results align with ``specs`` by index."""
        results: List[Optional[RunResult]] = [None] * len(specs)
        pending: List[Tuple[int, RunSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                key = self.cache.key_for(spec)
                hit = self.cache.load(key)
                if hit is not None:
                    results[index] = hit
                    continue
                pending.append((index, spec, key))
            else:
                pending.append((index, spec, None))

        if pending:
            payloads = self._execute([spec for _, spec, _ in pending])
            for (index, _, key), payload in zip(pending, payloads):
                if self.cache is not None and key is not None:
                    self.cache.store(key, payload)
                results[index] = run_result_from_dict(payload)

        return [result for result in results if result is not None]

    def _execute(self, todo: List[RunSpec]) -> List[Dict[str, Any]]:
        if self.supervisor is not None and self.jobs > 1 and len(todo) > 1:
            return self._execute_supervised(todo)
        if self.jobs == 1 or len(todo) == 1:
            return [_execute_to_dict(spec) for spec in todo]
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=min(self.jobs, len(todo))) as pool:
            # chunksize=1: runs are few and long, so load balance beats
            # batching; map (not imap_unordered) pins result order.
            return pool.map(_execute_to_dict, todo, chunksize=1)

    def _execute_supervised(self, todo: List[RunSpec]) -> List[Dict[str, Any]]:
        # Lazy import: repro.sweep imports repro.parallel at module
        # scope, so the reverse edge must stay function-local.
        from repro.sweep.supervisor import OUTCOME_OK, run_supervised

        outcomes = run_supervised(
            todo, jobs=min(self.jobs, len(todo)), config=self.supervisor
        )
        payloads: List[Dict[str, Any]] = []
        for outcome in outcomes:
            if outcome.status != OUTCOME_OK or outcome.payload is None:
                raise RuntimeError(
                    f"run {outcome.label!r} quarantined after "
                    f"{outcome.attempts} attempt(s): {outcome.last_failure}"
                )
            payloads.append(outcome.payload)
        return payloads
