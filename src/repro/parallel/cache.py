"""The content-addressed result cache.

Every completed run is stored as metrics JSON under a key derived from

* the :class:`~repro.parallel.RunSpec`'s canonical encoding (scenario,
  policy, configs, resolved seeds), and
* a *code fingerprint* — package version plus result-schema version.

Re-running a figure script or sweep with unchanged inputs then skips the
simulation entirely; changing any config knob, the trace seed, or the
installed package version changes the key and forces a fresh run.

The fingerprint is derived from **version metadata only** — never from
file mtimes or wall-clock reads, which would silently poison keys with
non-determinism (codalint CL001 polices exactly this class of bug).

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON document per run,
sharded by key prefix so huge sweeps do not produce one enormous
directory.  Writes are atomic (temp file + ``os.replace``), so a crashed
or concurrent run never leaves a half-written entry; unreadable entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.runner import RunResult
from repro.metrics.serialize import (
    RESULT_SCHEMA_VERSION,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.parallel.spec import RunSpec

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment overrides honoured by :func:`default_cache`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_CACHE_ENV = "REPRO_NO_CACHE"


def code_fingerprint() -> Dict[str, Any]:
    """Version metadata that keys must vary with.

    Reads ``repro.__version__`` at call time (not import time) so tests
    can exercise version-based invalidation, and bundles the result-schema
    version so serialization changes retire old entries.
    """
    import repro

    return {
        "package": "repro",
        "version": repro.__version__,
        "result_schema": RESULT_SCHEMA_VERSION,
    }


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of (spec, code fingerprint).

    Module-level so code that has no cache instance (the sweep ledger,
    report tooling) can still name a run by the same key a cache would
    file it under.
    """
    payload = json.dumps(
        {"spec": spec.fingerprint(), "code": code_fingerprint()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Stores that succeeded only on the second try (transient OSError —
    #: e.g. a concurrent cleanup removed the temp directory mid-write).
    store_retries: int = 0
    #: Stores abandoned after the retry also failed.  A failed store is
    #: a lost memoization, not a lost result, so it is counted rather
    #: than raised.
    store_failures: int = 0

    def render(self) -> str:
        # Retry/failure counters render even at zero: "no line" and
        # "no losses" must not look the same to whoever reads the
        # --cache-stats output or the sweep report.
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.stores} store(s), "
            f"{self.store_retries} store retry(ies), "
            f"{self.store_failures} store failure(s)"
        )


class ResultCache:
    """Content-addressed, on-disk store of serialized run results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Keys

    def key_for(self, spec: RunSpec) -> str:
        """Stable content hash of (spec, code fingerprint)."""
        return spec_key(spec)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Lookup / store

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result under ``key``, or None on a miss.

        Unreadable or stale-schema entries count as misses: the caller
        re-runs and overwrites them.
        """
        path = self.path_for(key)
        try:
            with path.open(encoding="utf-8") as handle:
                data = json.load(handle)
            result = run_result_from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, payload: Dict[str, Any]) -> Optional[Path]:
        """Atomically persist a serialized result under ``key``.

        A transient filesystem failure (concurrent cache cleanup racing
        the write, a vanished temp file) is retried once; a second
        failure is recorded in :attr:`CacheStats.store_failures` and
        swallowed — losing a memoization must never lose the run that
        produced it.  Returns the stored path, or None when abandoned.
        """
        try:
            path = self._write(key, payload)
        except OSError:
            self.stats.store_retries += 1
            try:
                path = self._write(key, payload)
            except OSError:
                self.stats.store_failures += 1
                return None
        self.stats.stores += 1
        return path

    def _write(self, key: str, payload: Dict[str, Any]) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def store_result(self, key: str, result: RunResult) -> Optional[Path]:
        return self.store(key, run_result_to_dict(result))

    # ------------------------------------------------------------------ #
    # Introspection

    def entry_count(self) -> int:
        """Number of results currently cached under the root."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


def default_cache(
    root: Optional[Union[str, Path]] = None,
) -> Optional[ResultCache]:
    """The environment-configured cache, or None when caching is off.

    ``REPRO_NO_CACHE`` (any non-empty value) disables caching entirely;
    ``REPRO_CACHE_DIR`` relocates it.  An explicit ``root`` argument wins
    over both — a caller that names a directory wants a cache there.
    """
    if root is not None:
        return ResultCache(root)
    if os.environ.get(NO_CACHE_ENV):
        return None
    return ResultCache(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)
