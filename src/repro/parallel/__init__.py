"""Parallel experiment orchestration with a content-addressed result cache.

The paper's evaluation is ~20 figure scripts plus comparison/MTBF sweeps,
each a bag of *independent, deterministic* (scenario, scheduler, seed)
runs.  This package gives every multi-run entry point two order-of-
magnitude levers on top of the single-run hot-path work:

* :class:`SimPool` — process-level fan-out over a ``spawn`` worker pool,
  byte-identical to serial execution and ordered by spec, not completion;
* :class:`ResultCache` — a content-addressed on-disk store keyed by
  (:class:`RunSpec`, code fingerprint), so unchanged inputs skip the
  simulation entirely on re-runs.

Quickstart::

    from repro.experiments.scenarios import run_comparison, small_scenario
    from repro.parallel import ResultCache, SimPool

    pool = SimPool(jobs=4, cache=ResultCache(".repro-cache"))
    results = run_comparison(small_scenario(), executor=pool.map)
    print(pool.stats.render())
"""

from repro.parallel.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    NO_CACHE_ENV,
    CacheStats,
    ResultCache,
    code_fingerprint,
    default_cache,
    spec_key,
)
from repro.parallel.pool import (
    FORCE_SPAWN_ENV,
    JOBS_ENV,
    SimPool,
    clamp_jobs,
    default_jobs,
    serial_map,
)
from repro.parallel.spec import (
    SCHEDULER_NAMES,
    RunSpec,
    build_scheduler,
)

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "FORCE_SPAWN_ENV",
    "JOBS_ENV",
    "NO_CACHE_ENV",
    "SCHEDULER_NAMES",
    "CacheStats",
    "ResultCache",
    "RunSpec",
    "SimPool",
    "build_scheduler",
    "clamp_jobs",
    "code_fingerprint",
    "default_cache",
    "default_jobs",
    "serial_map",
    "spec_key",
]
