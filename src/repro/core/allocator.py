"""The adaptive CPU allocator (Sec. V-B).

Responsibilities:

* pick N_start for every arriving DNN training job (category + owner
  history + hints, :mod:`repro.core.nstart`);
* after the job starts, run 90-second profiling steps: measure GPU
  utilization, feed the :class:`~repro.core.tuning.TuningSession`, and
  retune the job's cores through the scheduler context until the session
  settles;
* on completion, write the tuned outcome into the tenant history log so
  the owner's next similar job starts at (or next to) the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.historylog import TenantHistory
from repro.core.nstart import determine_n_start
from repro.core.tuning import DEFAULT_EPSILON, TuningSession
from repro.schedulers.base import SchedulerContext
from repro.sim.events import EventHandle
from repro.workload.job import GpuJob

#: Sec. VI-F: "we sample the GPU utilization for each profiling step that
#: lasts 90 seconds".
PROFILING_STEP_S = 90.0

#: Consecutive failure-killed profiling sessions after which the allocator
#: enters degraded mode (stops probing, serves N_start only).
DEFAULT_DEGRADED_AFTER_ABORTS = 3

#: Default length of one degraded-mode episode.
DEFAULT_DEGRADED_COOLDOWN_S = 1800.0


@dataclass
class _ActiveSession:
    job: GpuJob
    session: TuningSession
    event_handle: Optional[EventHandle] = None


@dataclass
class TuningOutcome:
    """Recorded per job, for Table II and Fig. 14."""

    job_id: str
    model_name: str
    n_start: int
    tuned_cores: int
    profiling_steps: int
    requested_cpus: int


class AdaptiveCpuAllocator:
    """Feedback-based per-job CPU allocation."""

    def __init__(
        self,
        *,
        profiling_step_s: float = PROFILING_STEP_S,
        epsilon: float = DEFAULT_EPSILON,
        max_cores_per_job: int = 24,
        history_window: int = 20,
        degraded_after_aborts: int = DEFAULT_DEGRADED_AFTER_ABORTS,
        degraded_cooldown_s: float = DEFAULT_DEGRADED_COOLDOWN_S,
    ) -> None:
        if profiling_step_s <= 0:
            raise ValueError(f"non-positive profiling step: {profiling_step_s}")
        if max_cores_per_job < 1:
            raise ValueError(f"max_cores_per_job must be >= 1: {max_cores_per_job}")
        if degraded_after_aborts < 1:
            raise ValueError(
                f"degraded_after_aborts must be >= 1: {degraded_after_aborts}"
            )
        if degraded_cooldown_s < 0:
            raise ValueError(
                f"negative degraded cooldown: {degraded_cooldown_s}"
            )
        self.profiling_step_s = profiling_step_s
        self.epsilon = epsilon
        self.max_cores_per_job = max_cores_per_job
        self.degraded_after_aborts = degraded_after_aborts
        self.degraded_cooldown_s = degraded_cooldown_s
        self.history = TenantHistory(window=history_window)
        self.outcomes: Dict[str, TuningOutcome] = {}
        self._active: Dict[str, _ActiveSession] = {}
        self._known_cores: Dict[str, int] = {}
        #: Degraded-mode state: consecutive failure-killed sessions, the
        #: sim time until which probing stays suspended, and counters.
        self._failure_aborts = 0
        self._degraded_until = float("-inf")
        self.degraded_entries = 0
        self.sessions_skipped_degraded = 0

    # ------------------------------------------------------------------ #
    # Placement-time: what cores should this job start with?

    def initial_cores(self, job: GpuJob, *, node_cores: int) -> int:
        """The per-node core count to place ``job`` with.

        A job already tuned in this run (e.g., migrated by the multi-array
        scheduler) restarts at its tuned allocation; otherwise N_start.
        """
        known = self._known_cores.get(job.job_id)
        if known is not None:
            return min(known, node_cores)
        return determine_n_start(
            job,
            self.history,
            max_cores=min(self.max_cores_per_job, node_cores),
        )

    # ------------------------------------------------------------------ #
    # Runtime: profiling-step loop

    def on_job_started(
        self, job: GpuJob, cores_per_node: int, context: SchedulerContext
    ) -> None:
        """Begin (or skip) tuning for a job that just started running."""
        if job.job_id in self._known_cores:
            return  # migrated back in at its tuned allocation
        if job.job_id in self._active:
            return
        if context.now < self._degraded_until:
            # Degraded mode: repeated failure-killed sessions showed that
            # probing is currently wasted work (every search dies with its
            # node), so the job simply runs at its category-default
            # N_start until the cooldown passes.
            self.sessions_skipped_degraded += 1
            return
        session = TuningSession(
            n_start=cores_per_node,
            min_cores=1,
            max_cores=self.max_cores_per_job,
            epsilon=self.epsilon,
        )
        active = _ActiveSession(job=job, session=session)
        self._active[job.job_id] = active
        self._arm_step(active, context)

    def on_job_finished(self, job: GpuJob, final_cores: Optional[int]) -> None:
        """Record the outcome and tear down any in-flight session."""
        active = self._active.pop(job.job_id, None)
        if active is not None and active.event_handle is not None:
            active.event_handle.cancel()
        tuned = self._known_cores.pop(job.job_id, None)
        if tuned is None:
            if active is not None:
                tuned = active.session.best_cores
            elif final_cores is not None:
                tuned = final_cores
            else:
                return
        steps = active.session.steps_taken if active is not None else 0
        self.outcomes.setdefault(
            job.job_id,
            TuningOutcome(
                job_id=job.job_id,
                model_name=job.model_name,
                n_start=active.session.n_start if active else tuned,
                tuned_cores=tuned,
                profiling_steps=steps,
                requested_cpus=job.requested_cpus,
            ),
        )
        self._record_history(job, tuned)

    def on_job_preempted(self, job: GpuJob, current_cores: int) -> None:
        """A running job was migrated; remember where tuning stood."""
        active = self._active.pop(job.job_id, None)
        if active is not None:
            if active.event_handle is not None:
                active.event_handle.cancel()
            self._known_cores[job.job_id] = active.session.best_cores
        else:
            self._known_cores.setdefault(job.job_id, current_cores)

    def on_job_failed(self, job: GpuJob, now: Optional[float] = None) -> None:
        """The job was killed by an infrastructure failure.

        Unlike a migration, a crash invalidates the search: the samples
        behind a half-finished session measured a node that no longer
        exists, and even a settled allocation may not suit wherever the
        job restarts.  Abort the session and drop the tuned cores so the
        restarted job re-derives N_start and profiles afresh.

        Each in-flight session killed this way counts toward degraded
        mode: after ``degraded_after_aborts`` consecutive kills (with no
        cleanly completed session in between) the allocator stops opening
        new sessions for ``degraded_cooldown_s`` — re-probing forever on
        hardware that keeps eating the probes wastes resize churn for
        tuning data that never lands.  Resize-refusal aborts do *not*
        count: those settle deterministically on the session's best cores
        and are a normal part of a loaded, healthy cluster.
        """
        active = self._active.pop(job.job_id, None)
        if active is not None and active.event_handle is not None:
            active.event_handle.cancel()
        self._known_cores.pop(job.job_id, None)
        if active is not None and now is not None:
            self._failure_aborts += 1
            if self._failure_aborts >= self.degraded_after_aborts:
                self._degraded_until = now + self.degraded_cooldown_s
                self._failure_aborts = 0
                self.degraded_entries += 1

    def is_degraded(self, now: float) -> bool:
        """True while the allocator is refusing to open tuning sessions."""
        return now < self._degraded_until

    def tuned_cores(self, job_id: str) -> Optional[int]:
        return self._known_cores.get(job_id)

    def is_tuning(self, job_id: str) -> bool:
        return job_id in self._active

    # ------------------------------------------------------------------ #
    # Internals

    def _arm_step(self, active: _ActiveSession, context: SchedulerContext) -> None:
        active.event_handle = context.schedule_event(
            self.profiling_step_s,
            lambda: self._on_step(active.job.job_id, context),
            tag=f"profile:{active.job.job_id}",
        )

    def _on_step(self, job_id: str, context: SchedulerContext) -> None:
        active = self._active.get(job_id)
        if active is None:
            return  # job finished or was preempted before the step fired
        session = active.session
        cores = session.next_cores
        if cores is None:
            self._finish_session(job_id, context)
            return
        try:
            utilization = context.gpu_job_utilization(job_id)
        except KeyError:
            # The job is no longer running; the finish/preempt hooks will
            # (or already did) clean up.
            return
        next_cores = session.record(cores, utilization)
        if next_cores is None:
            self._finish_session(job_id, context)
            return
        if not context.resize_gpu_job_cores(job_id, next_cores):
            # The node cannot grow the job right now; settle for the best
            # allocation seen and fall back to it.
            session.abort()
            context.resize_gpu_job_cores(job_id, session.best_cores)
            self._finish_session(job_id, context)
            return
        self._arm_step(active, context)

    def _finish_session(self, job_id: str, context: SchedulerContext) -> None:
        active = self._active.pop(job_id, None)
        if active is None:
            return
        # A session that ran to a settled allocation is proof the control
        # loop works again; the degraded-mode strike count starts over.
        self._failure_aborts = 0
        session = active.session
        best = session.best_cores
        self._known_cores[job_id] = best
        context.resize_gpu_job_cores(job_id, best)
        self.outcomes[job_id] = TuningOutcome(
            job_id=job_id,
            model_name=active.job.model_name,
            n_start=session.n_start,
            tuned_cores=best,
            profiling_steps=session.steps_taken,
            requested_cpus=active.job.requested_cpus,
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable allocator state.

        Active sessions carry their tuning state machine but not their
        profiling-step timer: the timer lives in the engine inventory and
        :meth:`rearm` reconnects it.
        """
        return {
            "history": self.history.snapshot(),
            "outcomes": {
                job_id: [
                    o.model_name,
                    o.n_start,
                    o.tuned_cores,
                    o.profiling_steps,
                    o.requested_cpus,
                ]
                for job_id, o in self.outcomes.items()
            },
            "active": {
                job_id: active.session.snapshot()
                for job_id, active in self._active.items()
            },
            "known_cores": dict(self._known_cores),
            "failure_aborts": self._failure_aborts,
            "degraded_until": self._degraded_until,
            "degraded_entries": self.degraded_entries,
            "sessions_skipped_degraded": self.sessions_skipped_degraded,
        }

    def restore(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, GpuJob]
    ) -> None:
        self.history.restore(state["history"])
        self.outcomes = {
            job_id: TuningOutcome(
                job_id=job_id,
                model_name=str(model_name),
                n_start=int(n_start),
                tuned_cores=int(tuned),
                profiling_steps=int(steps),
                requested_cpus=int(requested),
            )
            for job_id, (model_name, n_start, tuned, steps, requested) in state[
                "outcomes"
            ].items()
        }
        self._active = {
            job_id: _ActiveSession(
                job=jobs_by_id[job_id],
                session=TuningSession.from_snapshot(session_state),
            )
            for job_id, session_state in state["active"].items()
        }
        self._known_cores = {
            job_id: int(cores) for job_id, cores in state["known_cores"].items()
        }
        self._failure_aborts = int(state["failure_aborts"])
        self._degraded_until = float(state["degraded_until"])
        self.degraded_entries = int(state["degraded_entries"])
        self.sessions_skipped_degraded = int(state["sessions_skipped_degraded"])

    def rearm(self, engine: Any, context: SchedulerContext) -> None:
        """Reconnect each restored session's profiling-step timer."""
        for tag in engine.pending_rearm_tags():
            if not tag.startswith("profile:"):
                continue
            job_id = tag.partition(":")[2]
            active = self._active.get(job_id)
            if active is None:
                raise RuntimeError(
                    f"pending {tag!r} has no active tuning session"
                )
            active.event_handle = engine.rearm(
                tag, lambda job_id=job_id: self._on_step(job_id, context)
            )

    def _record_history(self, job: GpuJob, tuned_cores: int) -> None:
        """Single-node outcomes feed the history, normalized per GPU so a
        future 4-GPU job scales a 1-GPU precedent correctly.  Multi-node
        outcomes are excluded: their 2-core network-bound allocations say
        nothing about the model's real appetite."""
        if job.setup.num_nodes > 1:
            return
        per_gpu = max(1, round(tuned_cores / job.setup.gpus_per_node))
        self.history.record(
            tenant_id=job.tenant_id,
            job_id=job.job_id,
            model_name=job.model_name,
            category=job.category,
            tuned_cores=per_gpu,
        )
