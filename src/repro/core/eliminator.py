"""The real-time contention eliminator (Sec. V-D).

Control loop, per node, every monitoring tick:

1. read total memory-bandwidth usage (the simulated MBM);
2. if it exceeds the threshold (75 % of capacity by default) *and* a
   co-located DNN training job's GPU utilization has dropped below its
   observed peak, pick the CPU job granted the most bandwidth and throttle
   it one MBA level;
3. on nodes without MBA support, halve that CPU job's cores instead.

Only CPU jobs are ever throttled: "DNN training jobs have higher priority
than all CPU jobs", and trainers do not contend with each other severely
(Sec. IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cluster.node import Node
from repro.perfmodel.contention import BANDWIDTH_PRESSURE_THRESHOLD
from repro.schedulers.base import SchedulerContext
from repro.sim.events import EventHandle

#: Flap cooldown the CLI applies under active fault injection (the config
#: default stays 0.0 so failure-free runs are byte-identical to the
#: pre-damping behaviour).
CHAOS_FLAP_COOLDOWN_S = 120.0


@dataclass(frozen=True)
class EliminatorConfig:
    """Knobs of the eliminator loop."""

    bandwidth_threshold: float = BANDWIDTH_PRESSURE_THRESHOLD
    monitor_interval_s: float = 30.0
    utilization_drop: float = 0.01
    #: Only CPU jobs granted at least this share of node bandwidth count as
    #: "bandwidth-intensive programs" (Sec. VI-E) worth restricting; below
    #: it the pressure is the trainers' own, which Sec. IV-C deems benign.
    min_victim_share: float = 0.08
    #: How old an MBM reading may be before the eliminator refuses to act
    #: on it.  During a telemetry dropout the node keeps its last sample;
    #: once that sample ages past this window the node is skipped entirely
    #: (no throttles, no halvings, no releases) until telemetry returns.
    staleness_window_s: float = 60.0
    #: Throttle-flap damping: after a victim's throttle is released, the
    #: same victim may not be throttled again on that node for this long.
    #: 0 disables damping (the default — release/re-throttle cycles in
    #: healthy runs keep their historical timing); the CLI switches it to
    #: :data:`CHAOS_FLAP_COOLDOWN_S` whenever fault injection is armed.
    flap_cooldown_s: float = 0.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.bandwidth_threshold <= 1.0:
            raise ValueError(
                f"bandwidth threshold out of (0, 1]: {self.bandwidth_threshold}"
            )
        if self.monitor_interval_s <= 0:
            raise ValueError(
                f"non-positive monitor interval: {self.monitor_interval_s}"
            )
        if self.utilization_drop < 0:
            raise ValueError(f"negative utilization drop: {self.utilization_drop}")
        if not 0.0 <= self.min_victim_share <= 1.0:
            raise ValueError(
                f"min_victim_share out of [0, 1]: {self.min_victim_share}"
            )
        if self.staleness_window_s < 0:
            raise ValueError(
                f"negative staleness window: {self.staleness_window_s}"
            )
        if self.flap_cooldown_s < 0:
            raise ValueError(
                f"negative flap cooldown: {self.flap_cooldown_s}"
            )


@dataclass
class ContentionEliminator:
    """Per-cluster bandwidth-contention policeman."""

    config: EliminatorConfig = field(default_factory=EliminatorConfig)
    throttle_actions: int = 0
    halving_actions: int = 0
    #: Ticks on which a node was skipped for stale/missing telemetry.
    stale_skips: int = 0
    #: Throttle attempts suppressed by the flap cooldown.
    flap_suppressions: int = 0
    _peak_util: Dict[str, float] = field(default_factory=dict)
    #: (node_id, job_id) -> sim time of the last throttle release there.
    _released_at: Dict[Tuple[int, str], float] = field(default_factory=dict)
    _armed: bool = field(default=False)
    _tick_handle: Optional[EventHandle] = field(default=None)

    def start(self, context: SchedulerContext) -> None:
        """Arm the periodic monitor (idempotent, no-op when disabled).

        Re-armable: after :meth:`stop` (a simulated controller reset), a
        fresh ``start`` resumes the loop.
        """
        if not self.config.enabled or self._armed:
            return
        self._armed = True
        self._arm(context)

    def stop(self) -> None:
        """Disarm the monitor: cancel the pending tick and allow a later
        :meth:`start` to re-arm.  Idempotent."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self._armed = False

    def _arm(self, context: SchedulerContext) -> None:
        self._tick_handle = context.schedule_event(
            self.config.monitor_interval_s,
            lambda: self._tick(context),
            tag="eliminator-tick",
        )

    def _tick(self, context: SchedulerContext) -> None:
        # One memoized scan instead of a per-node state_of: the tracker's
        # lazy transitions are idempotent at fixed now, so the set is
        # exactly the nodes the per-node check would have excluded.
        # A quarantined node hosts nothing to police (residents were
        # evicted at quarantine entry) and its telemetry is the least
        # trustworthy on the floor; leave those alone.
        now = context.now
        quarantined = set(context.cluster.health.quarantined_nodes(now))
        nodes = context.cluster.nodes
        # Activity-indexed: only nodes the context flags as active (CPU
        # jobs, live throttles, or an open telemetry outage) are examined.
        # A node outside the set could only ever take the no-CPU-jobs fast
        # path below, whose sole side effect is the observe() freshness
        # stamp — which the context back-fills on re-activation — so the
        # skip is decision-invisible.  The default context returns every
        # node, reproducing the historical full scan.
        for node_id in context.monitor_active_node_ids():
            node = nodes[node_id]
            if not node.is_up or node_id in quarantined:
                continue
            self._check_node(node, context)
        context.monitor_note_tick(now)
        self._arm(context)

    # ------------------------------------------------------------------ #

    def _check_node(self, node: Node, context: SchedulerContext) -> None:
        pressure = node.bandwidth.observe(context.now)
        sampled = pressure is not None
        if pressure is None:
            # Telemetry dropout.  A reading within the staleness window is
            # still trusted (the monitor's arbitration state has not moved
            # far); beyond it, acting would mean acting on garbage — skip
            # the node until its MBM comes back.
            if (
                node.bandwidth.sample_age(context.now)
                > self.config.staleness_window_s
            ):
                self.stale_skips += 1
                return
            pressure = node.bandwidth.pressure
        if not node.bandwidth.has_cpu_jobs() and not node.mba.has_throttles():
            # Fast path for the common tick: with no CPU job to throttle
            # and no throttle to relax, neither branch below can act —
            # any pressure here is the trainers' own, which Sec. IV-C
            # deems benign.  (The observe() above still ran, so sample
            # freshness bookkeeping is identical to the slow path.)
            # Deactivation needs a *successful* observe: dropping a node
            # whose telemetry is down would break the back-fill invariant
            # ("outside the set implies telemetry up at every skipped
            # tick") the activity index relies on.
            if sampled:
                context.monitor_deactivate_node(node.node_id)
            return
        if pressure < self.config.bandwidth_threshold:
            self._relax_node(node, context)
            return
        if not self._training_degraded(node, context):
            return
        victim = self._pick_victim(
            node, self.config.min_victim_share * node.bandwidth.capacity_gbps
        )
        if victim is None:
            return
        if self._in_flap_cooldown(node.node_id, victim, context.now):
            # The same victim was just released; throttling it straight
            # back would oscillate (throttle -> pressure drops -> release
            # -> pressure returns -> throttle ...) with every cycle paid
            # in stretched CPU jobs.  Sit this tick out.
            self.flap_suppressions += 1
            return
        if node.mba.supported:
            steps = self._throttle_steps_needed(node, victim)
            throttled = False
            for _ in range(steps):
                if not context.throttle_cpu_job(victim, node.node_id):
                    break
                throttled = True
            if throttled:
                self.throttle_actions += 1
        else:
            context.halve_cpu_job_cores(victim)
            self.halving_actions += 1

    def _relax_node(self, node: Node, context: SchedulerContext) -> None:
        """Lift throttles whose reason has passed.

        A throttle is released when the node no longer hosts any training
        job, or when the node's *unthrottled* demand would stay below the
        threshold anyway.  Keeping a hog throttled after the trainers left
        only stretches the hog (and its core occupancy) for nobody's
        benefit.
        """
        throttled = node.mba.throttled_jobs()
        if not throttled:
            return
        has_trainers = any(gpu.owner is not None for gpu in node.gpus)
        if has_trainers:
            unthrottled_demand = node.bandwidth.unthrottled_demand_gbps
            target = self.config.bandwidth_threshold * node.bandwidth.capacity_gbps
            if unthrottled_demand > target:
                return
        for job_id in throttled:
            context.release_cpu_throttle(job_id, node.node_id)
            if self.config.flap_cooldown_s > 0:
                self._released_at[(node.node_id, job_id)] = context.now

    def _in_flap_cooldown(self, node_id: int, job_id: str, now: float) -> bool:
        if self.config.flap_cooldown_s <= 0:
            return False
        released = self._released_at.get((node_id, job_id))
        return released is not None and now - released < self.config.flap_cooldown_s

    def _throttle_steps_needed(self, node: Node, victim: str) -> int:
        """MBA levels to step down so the node lands below the threshold.

        One throttle *action* may span several 10 % levels: leaving the
        hog saturating the bus for another interval only stretches both
        the contention window and the hog itself.
        """
        usage = node.bandwidth.usage_of(victim)
        if usage.demand <= 0:
            return 1
        target_total = self.config.bandwidth_threshold * node.bandwidth.capacity_gbps
        others = node.bandwidth.total_granted - usage.granted
        desired_cap = max(0.0, target_total - others)
        desired_level = desired_cap / usage.demand
        current_level = node.mba.throttle_level(victim)
        if desired_level >= current_level:
            return 1
        # MBA levels are 10 % apart.
        steps = int(round((current_level - desired_level) / 0.1 + 0.499))
        return max(1, min(steps, 9))

    def _training_degraded(self, node: Node, context: SchedulerContext) -> bool:
        """True when some training job on the node runs below what it would
        reach on a quiet node (the paper's second trigger condition).

        The reference comes from the job's profiling history rather than
        its observed peak: a trainer placed onto an *already* contended
        node never exhibits a drop, but is degraded all the same.
        """
        for gpu in node.gpus:
            owner = gpu.owner
            if owner is None:
                continue
            if gpu.utilization > self._peak_util.get(owner, 0.0):
                self._peak_util[owner] = gpu.utilization
            try:
                expected = context.gpu_job_expected_utilization(owner)
            except KeyError:
                expected = self._peak_util.get(owner, 0.0)
            if gpu.utilization < expected - self.config.utilization_drop:
                return True
        return False

    @staticmethod
    def _pick_victim(node: Node, min_granted_gbps: float = 0.0) -> Optional[str]:
        """The bandwidth-hungriest CPU job on this node, if any qualifies.

        User-facing inference jobs are exempt: they outrank training
        (Sec. V-A), so they are never throttled.
        """
        best: Optional[Tuple[float, str]] = None
        for job_id, usage in node.bandwidth.cpu_job_usages().items():
            if usage.is_inference:
                continue
            key = (usage.granted, job_id)
            if best is None or key > best:
                best = key
        if best is None or best[0] <= 0 or best[0] < min_granted_gbps:
            return None
        return best[1]

    def forget_job(self, job_id: str) -> None:
        """Drop the peak-utilization memory of a finished job."""
        self._peak_util.pop(job_id, None)

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        return {
            "throttle_actions": self.throttle_actions,
            "halving_actions": self.halving_actions,
            "stale_skips": self.stale_skips,
            "flap_suppressions": self.flap_suppressions,
            "peak_util": dict(self._peak_util),
            "released_at": [
                [node_id, job_id, time]
                for (node_id, job_id), time in sorted(self._released_at.items())
            ],
            "armed": self._armed,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.throttle_actions = int(state["throttle_actions"])
        self.halving_actions = int(state["halving_actions"])
        self.stale_skips = int(state["stale_skips"])
        self.flap_suppressions = int(state["flap_suppressions"])
        self._peak_util = {
            job_id: float(util) for job_id, util in state["peak_util"].items()
        }
        self._released_at = {
            (int(node_id), str(job_id)): float(time)
            for node_id, job_id, time in state["released_at"]
        }
        self._armed = bool(state["armed"])
        self._tick_handle = None

    def rearm(self, engine: Any, context: SchedulerContext) -> None:
        """Reconnect the monitor tick from the engine's event inventory."""
        for tag in engine.pending_rearm_tags():
            if tag != "eliminator-tick":
                continue
            self._tick_handle = engine.rearm(
                tag, lambda: self._tick(context)
            )
