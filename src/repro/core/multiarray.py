"""The multi-array job scheduler (Sec. V-C, Fig. 9).

Queue structure:

* one DRF-scheduled **CPU job array** (dominant resource: CPU cores) whose
  jobs normally live on the unreserved cores of every node;
* one DRF-scheduled **GPU job array** (dominant resource: GPUs) whose jobs
  receive their core counts from the adaptive CPU allocator, split into a
  **4-GPU sub-array** (jobs demanding >= 4 GPUs, on the GPU-densest nodes)
  and a **1-GPU sub-array** (everything else).

Cross-array elasticity:

* when every GPU queue is empty, CPU jobs may *borrow* the reserved cores
  of the GPU array; an arriving GPU job that needs them aborts the
  borrowers, which "re-enter the array head" losing their progress;
* a small GPU job may borrow 4-GPU sub-array nodes when its own sub-array
  is full; when a big job needs the node back, the borrower is *migrated*
  (preempted with progress preserved — containerized checkpoint/restore)
  and re-queued at its array head;
* a big GPU job overflows into the 1-GPU sub-array when its own is full.

Failure resilience: a job displaced by an infrastructure failure (node
crash, GPU failure) takes the same abort/re-queue path as a preempted
borrower — :meth:`job_preempted` puts it back at its array head, so it is
the next of its kind to run once capacity returns.  Whether any progress
survived (checkpoint-restart for trainers) is decided by the runner, not
the queues.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.core.allocator import AdaptiveCpuAllocator
from repro.core.arrays import (
    DEFAULT_FOUR_GPU_FRACTION,
    DEFAULT_RESERVED_CORES,
    FOUR_GPU_THRESHOLD,
    ArrayLayout,
    build_layout,
)
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import (
    Decision,
    PreemptDecision,
    Scheduler,
    SchedulerContext,
    ShareHeap,
    StartDecision,
    UsageLedger,
)
from repro.schedulers.dirty import PassGate
from repro.schedulers.placement import (
    FreeState,
    Placement,
    place_cpu_job,
    place_gpu_job,
)
from repro.workload.job import CpuJob, GpuJob, Job


class MultiArrayScheduler(Scheduler):
    """CODA's queue-and-placement policy."""

    name = "multi-array"

    def __init__(
        self,
        allocator: Optional[AdaptiveCpuAllocator] = None,
        *,
        reserved_cores: int = DEFAULT_RESERVED_CORES,
        four_gpu_fraction: float = DEFAULT_FOUR_GPU_FRACTION,
        contention_aware: bool = False,
        rack_aware: bool = False,
        restart_policy: Optional[RestartPolicy] = None,
    ) -> None:
        super().__init__(restart_policy=restart_policy)
        self.allocator = allocator or AdaptiveCpuAllocator()
        self._reserved_cores = reserved_cores
        self._four_gpu_fraction = four_gpu_fraction
        #: Extension (off by default, not part of the paper's design): when
        #: enabled, GPU placement prefers nodes whose memory-bandwidth and
        #: PCIe budgets can absorb the new job without crossing the
        #: contention threshold.
        self.contention_aware = contention_aware
        #: Extension: prefer keeping a multi-node gang inside one rack so
        #: its gradient sync rides the full-speed intra-rack fabric.
        self.rack_aware = rack_aware
        self._topology = None
        self._layout: Optional[ArrayLayout] = None
        self._context: Optional[SchedulerContext] = None

        #: Separate sub-array queues (Fig. 9): a blocked 4-GPU job must not
        #: head-of-line block its tenant's 1-GPU jobs, and vice versa.
        self._gpu_queues_small: Dict[int, Deque[GpuJob]] = {}
        self._gpu_queues_big: Dict[int, Deque[GpuJob]] = {}
        self._cpu_queues: Dict[int, Deque[CpuJob]] = {}
        #: User-facing inference jobs outrank everything (Sec. V-A): their
        #: own queues drain first and may use any free cores.
        self._inference_queues: Dict[int, Deque[CpuJob]] = {}
        self._gpu_ledger = UsageLedger()
        self._cpu_ledger = UsageLedger()

        self._running: Dict[str, Job] = {}
        #: Non-borrowing, non-inference CPU jobs: job_id -> home node_id.
        #: Maintained so the CPU-array pass can total per-node usage from
        #: the handful of tracked jobs instead of scanning every resident
        #: of every node.
        self._cpu_node: Dict[str, int] = {}
        #: Incrementally maintained CPU-array census (see ``_cpu_census``):
        #: per-node cores held by tracked jobs, and each tracked job's
        #: current core count.  Membership moves through ``job_started`` /
        #: ``_forget``; core counts move through :meth:`cpu_job_resized`
        #: (the eliminator's halvings, relayed by the runner).  A restore
        #: marks the maps dirty and the next census rebuilds them from the
        #: cluster walk.
        self._cpu_used: Dict[int, int] = {}
        self._cpu_cores: Dict[str, int] = {}
        self._census_dirty = False
        #: Static per-cluster placement inputs, filled when the layout is
        #: first built (node totals never change after construction).
        self._biggest_node_cores: int = 0
        self._cpu_capacity: Dict[int, int] = {}
        #: CPU jobs sitting on reserved (GPU-array) cores: job_id -> node_id.
        self._borrowed_cpu: Dict[str, int] = {}
        #: Small GPU jobs sitting on 4-GPU sub-array nodes: job_id -> node_id.
        self._borrowed_gpu: Dict[str, int] = {}
        self._pending_borrow_cpu: Set[str] = set()
        self._pending_borrow_gpu: Set[str] = set()
        #: Inverse of the borrow maps (node_id -> borrower job ids), so
        #: reclaim scans touch only nodes that actually host borrowers.
        self._cpu_borrow_index: Dict[int, Set[str]] = {}
        self._gpu_borrow_index: Dict[int, Set[str]] = {}

        #: Incremental-pass state (see docs/scheduler-internals.md): one
        #: gate group per queue family, one share heap per family (the
        #: two GPU heaps share the GPU ledger, the two CPU heaps the CPU
        #: ledger, so a share change re-keys the tenant in both).
        self._gate = PassGate(("gpu_big", "gpu_small", "inference", "cpu"))
        self._heap_gpu_big = ShareHeap(self._gpu_ledger)
        self._heap_gpu_small = ShareHeap(self._gpu_ledger)
        self._heap_inference = ShareHeap(self._cpu_ledger)
        self._heap_cpu = ShareHeap(self._cpu_ledger)
        #: ``gpu_queue_empty()`` at the end of the last pass; a flip to
        #: idle gives blocked CPU jobs new borrow options without any
        #: capacity being freed, so it must dirty the "cpu" group.
        self._gpu_idle_prev = True
        #: Per-pass memo of placement *shapes* that failed the full
        #: cascade, keyed by (num_nodes, gpus_per_node, total_gpus,
        #: cores, model) and stamped with the free-state mutation count:
        #: an identical request at an identical snapshot must fail again,
        #: so the whole cascade is skipped.  Reset at the top of every
        #: pass.
        self._place_memo: Dict[
            Tuple[int, int, int, int, Optional[str]], int
        ] = {}

    # ------------------------------------------------------------------ #
    # Scheduler interface

    def attach(self, context: SchedulerContext) -> None:
        super().attach(context)
        self._context = context

    @property
    def layout(self) -> Optional[ArrayLayout]:
        return self._layout

    def submit(self, job: Job, now: float) -> None:
        if isinstance(job, GpuJob):
            group, queue = self._gpu_group_queue(job)
            # GPU sub-arrays look BACKFILL_DEPTH deep per tenant, so a
            # submit is only visible when it lands inside that window.
            if len(queue) < self.BACKFILL_DEPTH:
                self._gate.mark(group)
            if not queue:
                self._gpu_heap(group).push(job.tenant_id)
            queue.append(job)
        elif isinstance(job, CpuJob):
            if job.is_inference:
                queues, group, heap = (
                    self._inference_queues, "inference", self._heap_inference
                )
            else:
                queues, group, heap = (
                    self._cpu_queues, "cpu", self._heap_cpu
                )
            queue = queues.setdefault(job.tenant_id, deque())
            # CPU classes are head-only: a submit behind a blocked head
            # cannot be examined until the head moves.
            if not queue:
                self._gate.mark(group)
                heap.push(job.tenant_id)
            queue.append(job)
        else:
            raise TypeError(f"unknown job type: {type(job).__name__}")

    def _gpu_group_queue(self, job: GpuJob) -> Tuple[str, Deque[GpuJob]]:
        if job.setup.total_gpus >= FOUR_GPU_THRESHOLD:
            group, queues = "gpu_big", self._gpu_queues_big
        else:
            group, queues = "gpu_small", self._gpu_queues_small
        return group, queues.setdefault(job.tenant_id, deque())

    def _gpu_heap(self, group: str) -> ShareHeap:
        return self._heap_gpu_big if group == "gpu_big" else self._heap_gpu_small

    def job_started(
        self, job: Job, placements: Sequence[Tuple[int, int, int]], now: float
    ) -> None:
        # DRF shares were charged at decision time (so one pass stays fair
        # across tenants); here only the placement-dependent state lands.
        self._running[job.job_id] = job
        if isinstance(job, GpuJob):
            if job.job_id in self._pending_borrow_gpu:
                self._pending_borrow_gpu.discard(job.job_id)
                node_id = placements[0][0]
                self._borrowed_gpu[job.job_id] = node_id
                self._gpu_borrow_index.setdefault(node_id, set()).add(
                    job.job_id
                )
        else:
            if job.job_id in self._pending_borrow_cpu:
                self._pending_borrow_cpu.discard(job.job_id)
                node_id = placements[0][0]
                self._borrowed_cpu[job.job_id] = node_id
                self._cpu_borrow_index.setdefault(node_id, set()).add(
                    job.job_id
                )
            elif isinstance(job, CpuJob) and not job.is_inference:
                node_id = placements[0][0]
                self._cpu_node[job.job_id] = node_id
                # While dirty (post-restore) the census maps are stale and
                # the next _cpu_census rebuilds them wholesale, so
                # incremental updates are suspended until then.
                if not self._census_dirty:
                    self._cpu_cores[job.job_id] = job.cores
                    self._cpu_used[node_id] = (
                        self._cpu_used.get(node_id, 0) + job.cores
                    )

    def job_finished(self, job: Job, now: float) -> None:
        self._forget(job.job_id)

    def cpu_job_resized(self, job_id: str, cores: int, now: float) -> None:
        """The eliminator halved a running CPU job's cores (relayed by the
        runner): fold the delta into the incremental census."""
        node_id = self._cpu_node.get(job_id)
        if node_id is None or self._census_dirty:
            return
        old = self._cpu_cores.get(job_id, 0)
        self._cpu_cores[job_id] = cores
        self._cpu_used[node_id] = (
            self._cpu_used.get(node_id, 0) - old + cores
        )

    def job_failed(self, job: Job, now: float) -> None:
        """An infrastructure failure killed the job: its share is already
        gone from the cluster, so drop it from the census tracking before
        the base class charges the restart budget.  Only the census maps
        are touched — ledger shares and borrow indexes keep their
        historical failure semantics (a restart re-keys them)."""
        self._census_forget(job.job_id)
        super().job_failed(job, now)

    def _census_forget(self, job_id: str) -> None:
        node_id = self._cpu_node.pop(job_id, None)
        if node_id is not None and not self._census_dirty:
            cores = self._cpu_cores.pop(job_id, 0)
            left = self._cpu_used.get(node_id, 0) - cores
            if left > 0:
                self._cpu_used[node_id] = left
            else:
                self._cpu_used.pop(node_id, None)

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        self._forget(job.job_id)
        if isinstance(job, GpuJob):
            group, queue = self._gpu_group_queue(job)
            self._gate.mark(group)
            self._gpu_heap(group).push(job.tenant_id)
            queue.appendleft(job)
        elif job.is_inference:
            self._gate.mark("inference")
            self._heap_inference.push(job.tenant_id)
            self._inference_queues.setdefault(job.tenant_id, deque()).appendleft(job)
        else:
            self._gate.mark("cpu")
            self._heap_cpu.push(job.tenant_id)
            self._cpu_queues.setdefault(job.tenant_id, deque()).appendleft(job)

    def _forget(self, job_id: str) -> None:
        self._running.pop(job_id, None)
        gpu_footprint = self._gpu_ledger.finish(job_id)
        if gpu_footprint is not None:
            self._push_gpu_tenant(gpu_footprint[0])
        cpu_footprint = self._cpu_ledger.finish(job_id)
        if cpu_footprint is not None:
            self._push_cpu_tenant(cpu_footprint[0])
        self._census_forget(job_id)
        node_id = self._borrowed_cpu.pop(job_id, None)
        if node_id is not None:
            self._cpu_borrow_index[node_id].discard(job_id)
        node_id = self._borrowed_gpu.pop(job_id, None)
        if node_id is not None:
            self._gpu_borrow_index[node_id].discard(job_id)
        self._pending_borrow_cpu.discard(job_id)
        self._pending_borrow_gpu.discard(job_id)

    def _push_gpu_tenant(self, tenant_id: int) -> None:
        """The tenant's GPU-ledger share changed: re-key it in both
        sub-array heaps (the ledger is shared across them)."""
        if self._gpu_queues_big.get(tenant_id):
            self._heap_gpu_big.push(tenant_id)
        if self._gpu_queues_small.get(tenant_id):
            self._heap_gpu_small.push(tenant_id)

    def _push_cpu_tenant(self, tenant_id: int) -> None:
        """Same as :meth:`_push_gpu_tenant` for the CPU-side heaps."""
        if self._inference_queues.get(tenant_id):
            self._heap_inference.push(tenant_id)
        if self._cpu_queues.get(tenant_id):
            self._heap_cpu.push(tenant_id)

    def pending_jobs(self) -> List[Job]:
        pending: List[Job] = []
        for queues in (
            self._gpu_queues_big,
            self._gpu_queues_small,
            self._inference_queues,
            self._cpu_queues,
        ):
            for queue in queues.values():
                pending.extend(queue)
        pending.sort(key=lambda job: (job.submit_time, job.job_id))
        return pending

    def gpu_queue_empty(self) -> bool:
        return all(
            not queue for queue in self._gpu_queues_big.values()
        ) and all(not queue for queue in self._gpu_queues_small.values())

    # ------------------------------------------------------------------ #
    # The scheduling pass

    def schedule(self, cluster: Cluster, now: float) -> List[Decision]:
        if self._layout is None:
            self._layout = build_layout(
                cluster,
                reserved_cores=self._reserved_cores,
                four_gpu_fraction=self._four_gpu_fraction,
            )
            self._topology = cluster.topology
            self._biggest_node_cores = max(
                node.total_cpus for node in cluster.nodes
            )
            self._cpu_capacity = {
                node.node_id: self._layout.cpu_array_capacity(
                    node.total_cpus, node.total_gpus
                )
                for node in cluster.nodes
            }
        decisions: List[Decision] = []
        free = FreeState.of(cluster, now=now)
        preempted: Set[str] = set()
        self._place_memo = {}
        if self._gate.enabled:
            total = cluster.total
            for heap, queues in (
                (self._heap_gpu_big, self._gpu_queues_big),
                (self._heap_gpu_small, self._gpu_queues_small),
                (self._heap_inference, self._inference_queues),
                (self._heap_cpu, self._cpu_queues),
            ):
                heap.configure(total.cpus, total.gpus)
                if heap.needs_rebuild:
                    heap.rebuild(queues)
        self._schedule_gpu_array(cluster, free, decisions, preempted)
        self._schedule_cpu_array(cluster, free, decisions, preempted)
        self._gate.pass_done(cluster)
        if self._gate.enabled:
            for heap in (
                self._heap_gpu_big,
                self._heap_gpu_small,
                self._heap_inference,
                self._heap_cpu,
            ):
                heap.flush_stash()
            # Cross-group coupling that no capacity-freed bump covers:
            # the GPU queues draining gives blocked CPU jobs new borrow
            # options, and freshly-planned borrowers give blocked GPU
            # jobs new *reclaim* options.
            gpu_idle = self.gpu_queue_empty()
            if gpu_idle and not self._gpu_idle_prev:
                self._gate.mark("cpu")
            self._gpu_idle_prev = gpu_idle
            if self._pending_borrow_cpu or self._pending_borrow_gpu:
                self._gate.mark("gpu_big")
                self._gate.mark("gpu_small")
        return decisions

    def can_skip_pass(self, cluster: Cluster) -> bool:
        if self._layout is None:
            return False  # the first pass must build the layout
        return self._gate.can_skip_pass(cluster)

    # -------------------------- GPU array ----------------------------- #

    def _schedule_gpu_array(
        self,
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> None:
        # Big jobs first: they are the hardest to place and small jobs
        # backfill around them.  The DRF ledger is shared, so fairness is
        # still judged on each tenant's total GPU usage.
        if self._gate.should_scan("gpu_big", cluster):
            self._schedule_gpu_subarray(
                self._gpu_queues_big, cluster, free, decisions, preempted,
                heap=self._heap_gpu_big if self._gate.enabled else None,
            )
        if self._gate.should_scan("gpu_small", cluster):
            self._schedule_gpu_subarray(
                self._gpu_queues_small, cluster, free, decisions, preempted,
                heap=self._heap_gpu_small if self._gate.enabled else None,
            )

    #: How far past a tenant's blocked queue head the scheduler may look
    #: for a placeable job (bounded backfill; skipped jobs keep their
    #: position, and DRF shares keep backfilling tenants honest).
    BACKFILL_DEPTH = 4

    def _schedule_gpu_subarray(
        self,
        queues: Dict[int, Deque[GpuJob]],
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
        *,
        heap: Optional[ShareHeap] = None,
    ) -> None:
        total = cluster.total
        biggest_node = self._biggest_node_cores
        blocked: Set[int] = set()
        while True:
            if heap is None:
                entry = None
                tenant_id = self._next_tenant(
                    queues, self._gpu_ledger, total.cpus, total.gpus, blocked
                )
            else:
                entry = heap.pop_min(queues, blocked)
                tenant_id = None if entry is None else entry[1]
            if tenant_id is None:
                return
            queue = queues[tenant_id]
            placed_index = None
            placements = None
            for index, job in enumerate(queue):
                if index >= self.BACKFILL_DEPTH:
                    break
                cores = self.allocator.initial_cores(
                    job, node_cores=biggest_node
                )
                placements = self._try_place_gpu(
                    job, cores, cluster, free, decisions, preempted
                )
                if placements is not None:
                    placed_index = index
                    break
            if placed_index is None:
                blocked.add(tenant_id)
                if heap is not None and entry is not None:
                    heap.stash(entry)
                continue
            job = queue[placed_index]
            free.commit(placements)
            del queue[placed_index]
            # DRF inside the GPU array goes "according to the usage of GPU"
            # (Sec. V-C), so cores are not counted against the share.
            self._gpu_ledger.start(
                job.job_id, job.tenant_id, 0, job.setup.total_gpus
            )
            if heap is not None:
                self._push_gpu_tenant(job.tenant_id)
            decisions.append(StartDecision(job=job, placements=tuple(placements)))

    def _try_place_gpu(
        self,
        job: GpuJob,
        cores: int,
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> Optional[List[Placement]]:
        """Memoized front door for the placement cascade.

        The cascade's outcome for a *failing* job depends only on the
        placement shape (node/GPU geometry, core request, and — under the
        contention extension — the model) plus the free snapshot, and a
        failed cascade has no side effects.  So within one pass, a shape
        that failed at the current free-state mutation stamp is
        guaranteed to fail again and the whole cascade is skipped.
        (``preempted`` only ever grows alongside a *successful* reclaim,
        which also mutates ``free``, so the stamp covers it too.)
        """
        key = (
            job.setup.num_nodes,
            job.setup.gpus_per_node,
            job.setup.total_gpus,
            cores,
            job.model_name if self.contention_aware else None,
        )
        if self._place_memo.get(key) == free.mutations:
            return None
        placements = self._try_place_gpu_uncached(
            job, cores, cluster, free, decisions, preempted
        )
        if placements is None:
            self._place_memo[key] = free.mutations
        return placements

    def _try_place_gpu_uncached(
        self,
        job: GpuJob,
        cores: int,
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> Optional[List[Placement]]:
        """The full placement cascade for one job: slimming ladder over
        undisturbing placements first, then over borrower reclaims."""
        ladder = self._core_ladder(job, cores)
        if (
            self.rack_aware
            and job.setup.num_nodes > 1
            and self._topology is not None
            and self._topology.num_racks > 1
        ):
            # Try to keep the gang inside one rack at the full core count.
            for rack_id in self._topology.racks():
                placements = self._place_gpu_plain(
                    job,
                    ladder[0],
                    free,
                    restrict_to=self._topology.nodes_in_rack(rack_id),
                )
                if placements is not None:
                    return placements
        if self.contention_aware:
            # Prefer a clean node — but only at the full core count: a
            # well-fed placement on a hot node still beats a starved one
            # on a clean node.
            friendly = self._contention_friendly_nodes(job, cores, cluster)
            placements = self._place_gpu_plain(
                job, ladder[0], free, restrict_to=friendly
            )
            if placements is not None:
                return placements
        # At each rung: an undisturbing placement first, then reclaim of
        # borrowed resources.  Training outranks (non-inference) CPU
        # borrowers, so a well-fed placement via reclaim beats running
        # starved at fewer cores.
        for attempt in ladder:
            placements = self._place_gpu_plain(job, attempt, free)
            if placements is not None:
                return placements
            placements = self._place_gpu_reclaim(
                job, attempt, cluster, free, decisions, preempted
            )
            if placements is not None:
                return placements
        return None

    def _contention_friendly_nodes(
        self, job: GpuJob, cores: int, cluster: Cluster
    ) -> Set[int]:
        """Nodes that can absorb this job's memory and PCIe footprint
        without crossing the bandwidth threshold or the PCIe fabric."""
        from repro.perfmodel.bandwidth import memory_bandwidth_demand
        from repro.perfmodel.catalog import get_model
        from repro.perfmodel.contention import BANDWIDTH_PRESSURE_THRESHOLD
        from repro.perfmodel.pcie import pcie_peak_demand

        profile = get_model(job.model_name)
        bw_demand = memory_bandwidth_demand(profile, job.setup, cores)
        pcie_demand = pcie_peak_demand(profile, job.setup)
        friendly: Set[int] = set()
        for node in cluster.nodes:
            bw_budget = (
                BANDWIDTH_PRESSURE_THRESHOLD * node.bandwidth.capacity_gbps
            )
            if node.bandwidth.total_granted + bw_demand > bw_budget:
                continue
            if node.pcie.total_demand + pcie_demand > node.config.pcie_gbps:
                continue
            friendly.add(node.node_id)
        return friendly

    @staticmethod
    def _core_ladder(job: GpuJob, cores: int) -> List[int]:
        """Slimming ladder: if the tuned/N_start core count does not fit
        anywhere, place the job slimmer rather than leave GPUs idle — the
        profiling loop grows it back once cores free up.  Floor: one core
        per local GPU."""
        floor = max(1, job.setup.gpus_per_node)
        ladder = [cores]
        step = cores
        while step > floor:
            step = max(floor, step // 2)
            ladder.append(step)
        return ladder

    def _place_gpu_plain(
        self,
        job: GpuJob,
        cores: int,
        free: FreeState,
        restrict_to: Optional[Set[int]] = None,
    ) -> Optional[List[Placement]]:
        """Placement without disturbing anyone: primary sub-array first,
        then the other one (a small job landing there becomes a borrower).

        ``restrict_to`` optionally intersects every candidate set (the
        contention-aware extension passes its friendly nodes here).
        """
        layout = self._layout
        assert layout is not None
        total_gpus = job.setup.total_gpus

        def narrowed(nodes: frozenset) -> Set[int]:
            if restrict_to is None:
                return set(nodes)
            return set(nodes) & restrict_to

        placements = place_gpu_job(
            job,
            free,
            cpus_per_node=cores,
            among=narrowed(layout.primary_nodes(total_gpus)),
        )
        if placements is not None:
            return placements
        placements = place_gpu_job(
            job,
            free,
            cpus_per_node=cores,
            among=narrowed(layout.fallback_nodes(total_gpus)),
        )
        if placements is not None:
            if total_gpus < FOUR_GPU_THRESHOLD:
                self._pending_borrow_gpu.add(job.job_id)
            return placements
        if job.setup.num_nodes > 1:
            # A multi-node gang may have to straddle both sub-arrays when
            # neither alone has enough suitable nodes.
            among = None if restrict_to is None else restrict_to
            placements = place_gpu_job(
                job, free, cpus_per_node=cores, among=among
            )
        return placements

    def _place_gpu_reclaim(
        self,
        job: GpuJob,
        cores: int,
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> Optional[List[Placement]]:
        """Placement by reclaiming borrowed resources: big jobs may migrate
        small GPU borrowers off their own sub-array; every GPU job may
        abort CPU borrowers sitting on reserved cores."""
        if not self._borrowed_cpu and not self._borrowed_gpu:
            # With zero reclaimable capacity every attempt below reduces
            # to plain feasibility over a subset of the nodes the plain
            # cascade just failed on (the multi-node straddle attempt was
            # tried over *all* nodes), so failure is guaranteed.
            return None
        layout = self._layout
        assert layout is not None
        total_gpus = job.setup.total_gpus
        primary = layout.primary_nodes(total_gpus)
        fallback = layout.fallback_nodes(total_gpus)
        small = total_gpus < FOUR_GPU_THRESHOLD
        attempts = [
            (primary, not small, False),
            (fallback, False, True),
        ]
        if job.setup.num_nodes > 1:
            # Multi-node gangs may need to straddle both sub-arrays.
            attempts.append((primary | fallback, False, False))
        for node_set, allow_gpu_reclaim, is_fallback in attempts:
            placements = self._place_with_reclaim(
                job,
                cores,
                cluster,
                free,
                node_set,
                allow_gpu_reclaim,
                decisions,
                preempted,
            )
            if placements is not None:
                if small and is_fallback:
                    self._pending_borrow_gpu.add(job.job_id)
                return placements
        return None

    def _place_with_reclaim(
        self,
        job: GpuJob,
        cores: int,
        cluster: Cluster,
        free: FreeState,
        node_set,
        allow_gpu_reclaim: bool,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> Optional[List[Placement]]:
        gpus_needed = job.setup.gpus_per_node
        nodes_needed = job.setup.num_nodes
        candidates: List[Tuple[int, int, int, int, List[str], List[str]]] = []
        for node_id in node_set:
            free_cpus, free_gpus = free.free_of(node_id)
            cpu_borrowers = self._borrowers_on(
                cluster, node_id, self._cpu_borrow_index, preempted
            )
            gpu_borrowers = (
                self._borrowers_on(
                    cluster, node_id, self._gpu_borrow_index, preempted
                )
                if allow_gpu_reclaim
                else []
            )
            if cpu_borrowers or gpu_borrowers:
                reclaim_cpus = sum(c for _, c, _ in cpu_borrowers) + sum(
                    c for _, c, _ in gpu_borrowers
                )
                reclaim_gpus = sum(g for _, _, g in gpu_borrowers)
            else:  # the common case: nothing to reclaim on this node
                reclaim_cpus = reclaim_gpus = 0
            if (
                free_gpus + reclaim_gpus >= gpus_needed
                and free_cpus + reclaim_cpus >= cores
            ):
                candidates.append(
                    (
                        node_id,
                        free_cpus,
                        free_gpus,
                        reclaim_cpus + reclaim_gpus,  # prefer least disruption
                        [j for j, _, _ in cpu_borrowers],
                        [j for j, _, _ in gpu_borrowers],
                    )
                )
        if len(candidates) < nodes_needed:
            return None
        candidates.sort(
            key=lambda c: (free.placement_penalty(c[0]), c[3], c[2], c[1], c[0])
        )
        chosen = candidates[:nodes_needed]
        placements: List[Placement] = []
        for node_id, free_cpus, free_gpus, _, cpu_victims, gpu_victims in chosen:
            # Migrate small GPU borrowers first (they free both GPUs and
            # cores), then abort CPU borrowers for the remaining cores.
            for victim in gpu_victims:
                if free_gpus >= gpus_needed and free_cpus >= cores:
                    break
                share = cluster.node(node_id).share_of(victim)
                decisions.append(
                    PreemptDecision(
                        job_id=victim,
                        reason="4-GPU job reclaims sub-array node",
                        preserve_progress=True,
                    )
                )
                preempted.add(victim)
                free.add(node_id, share.cpus, share.gpus)
                free_cpus += share.cpus
                free_gpus += share.gpus
            for victim in cpu_victims:
                if free_cpus >= cores:
                    break
                share = cluster.node(node_id).share_of(victim)
                decisions.append(
                    PreemptDecision(
                        job_id=victim,
                        reason="GPU job reclaims reserved cores",
                        preserve_progress=False,
                    )
                )
                preempted.add(victim)
                free.add(node_id, share.cpus, 0)
                free_cpus += share.cpus
            if free_gpus < gpus_needed or free_cpus < cores:
                raise RuntimeError(
                    f"reclaim accounting failed on node {node_id} for "
                    f"{job.job_id}"
                )
            placements.append((node_id, cores, gpus_needed))
        return placements

    def _borrowers_on(
        self,
        cluster: Cluster,
        node_id: int,
        borrow_index: Dict[int, Set[str]],
        preempted: Set[str],
    ) -> List[Tuple[str, int, int]]:
        """Live (job_id, cores, gpus) of borrowers on a node, largest first.

        Reads the per-node inverse index rather than scanning the whole
        borrow map; the ``(-cores, job_id)`` sort is a total order, so
        the set's iteration order cannot leak into the result.
        """
        borrowers = borrow_index.get(node_id)
        if not borrowers:
            return []
        node = cluster.node(node_id)
        found: List[Tuple[str, int, int]] = []
        for job_id in borrowers:
            if job_id in preempted or not node.holds(job_id):
                continue
            share = node.share_of(job_id)
            found.append((job_id, share.cpus, share.gpus))
        found.sort(key=lambda item: (-item[1], item[0]))
        return found

    # -------------------------- CPU array ----------------------------- #

    def _schedule_cpu_array(
        self,
        cluster: Cluster,
        free: FreeState,
        decisions: List[Decision],
        preempted: Set[str],
    ) -> None:
        layout = self._layout
        assert layout is not None
        incremental = self._gate.enabled
        scan_inference = self._gate.should_scan("inference", cluster)
        scan_cpu = self._gate.should_scan("cpu", cluster)
        if not scan_inference and not scan_cpu:
            return
        if not any(self._inference_queues.values()) and not any(
            self._cpu_queues.values()
        ):
            # Nothing queued in either CPU class: both tenant loops below
            # would spin zero iterations, so skip the headroom census too.
            return
        total = cluster.total

        # User-facing inference first: it outranks training, so it may use
        # any free cores (reserved or not) and is never a borrower.
        heap = self._heap_inference if incremental else None
        blocked: Set[int] = set()
        while scan_inference:
            if heap is None:
                entry = None
                tenant_id = self._next_tenant(
                    self._inference_queues, self._cpu_ledger, total.cpus,
                    total.gpus, blocked,
                )
            else:
                entry = heap.pop_min(self._inference_queues, blocked)
                tenant_id = None if entry is None else entry[1]
            if tenant_id is None:
                break
            queue = self._inference_queues[tenant_id]
            job = queue[0]
            placement = place_cpu_job(job, free)
            if placement is None:
                blocked.add(tenant_id)
                if heap is not None and entry is not None:
                    heap.stash(entry)
                continue
            free.commit(placement)
            queue.popleft()
            self._cpu_ledger.start(job.job_id, job.tenant_id, job.cores, 0)
            if heap is not None:
                self._push_cpu_tenant(job.tenant_id)
            decisions.append(StartDecision(job=job, placements=tuple(placement)))

        if not scan_cpu:
            return
        # Normal CPU-array headroom per node: unreserved cores minus what
        # non-borrowing CPU jobs already hold there.  The census walks the
        # tracked-job map rather than every resident of every node; core
        # counts are read live from the node, so the eliminator's
        # core-halvings free capacity immediately.
        normal_used = self._cpu_census(cluster, preempted)

        gpu_idle = self.gpu_queue_empty()
        heap = self._heap_cpu if incremental else None
        blocked = set()
        while True:
            if heap is None:
                entry = None
                tenant_id = self._next_tenant(
                    self._cpu_queues, self._cpu_ledger, total.cpus,
                    total.gpus, blocked,
                )
            else:
                entry = heap.pop_min(self._cpu_queues, blocked)
                tenant_id = None if entry is None else entry[1]
            if tenant_id is None:
                return
            queue = self._cpu_queues[tenant_id]
            job = queue[0]
            placement = self._place_cpu_normal(job, cluster, free, normal_used)
            borrowed = False
            if placement is None and gpu_idle:
                placement = place_cpu_job(job, free)
                borrowed = placement is not None
            if placement is None:
                blocked.add(tenant_id)
                if heap is not None and entry is not None:
                    heap.stash(entry)
                continue
            free.commit(placement)
            node_id = placement[0][0]
            if borrowed:
                self._pending_borrow_cpu.add(job.job_id)
            else:
                normal_used[node_id] = normal_used.get(node_id, 0) + job.cores
            queue.popleft()
            self._cpu_ledger.start(job.job_id, job.tenant_id, job.cores, 0)
            if heap is not None:
                self._push_cpu_tenant(job.tenant_id)
            decisions.append(StartDecision(job=job, placements=tuple(placement)))

    def _cpu_census_build(
        self, cluster: Cluster, preempted: Set[str]
    ) -> Dict[int, int]:
        normal_used: Dict[int, int] = {}  # sparse: absent node == 0 used
        for job_id, node_id in self._cpu_node.items():
            if job_id in preempted:
                continue
            node = cluster.node(node_id)
            if node.holds(job_id):
                normal_used[node_id] = (
                    normal_used.get(node_id, 0) + node.share_of(job_id).cpus
                )
        return normal_used

    def _cpu_census(
        self, cluster: Cluster, preempted: Set[str]
    ) -> Dict[int, int]:
        """Per-node cores held by tracked (non-borrowing) CPU jobs.

        Served from the incrementally maintained ``_cpu_used`` map:
        membership adds ride ``job_started``, removals ride ``_forget``,
        and core counts move through :meth:`cpu_job_resized` — every
        mutation a walk over the cluster would see reaches one of those
        hooks, so the map equals a fresh walk entry-for-entry.  Preempted
        jobs are borrowers and borrowers are never tracked in
        ``_cpu_node``; should that invariant ever break, the overlap
        check below drops to an uncached walk rather than serving a
        census the incremental path cannot see.
        """
        if not self._gate.enabled:
            return self._cpu_census_build(cluster, preempted)
        if preempted and not preempted.isdisjoint(self._cpu_node):
            return self._cpu_census_build(cluster, preempted)
        if self._census_dirty:
            # Post-restore: reconstruct both maps from the live cluster
            # (the walk is authoritative for membership *and* cores).
            self._cpu_used = self._cpu_census_build(cluster, preempted)
            self._cpu_cores = {
                job_id: cluster.node(node_id).share_of(job_id).cpus
                for job_id, node_id in self._cpu_node.items()
                if cluster.node(node_id).holds(job_id)
            }
            self._census_dirty = False
        # Callers mutate their census as they commit placements; hand out
        # a copy so the maintained map stays pristine.
        return dict(self._cpu_used)

    def _place_cpu_normal(
        self,
        job: CpuJob,
        cluster: Cluster,
        free: FreeState,
        normal_used: Dict[int, int],
    ) -> Optional[List[Placement]]:
        """Best-fit within the CPU array's unreserved per-node capacity."""
        layout = self._layout
        assert layout is not None
        best: Optional[Tuple[int, int, int]] = None  # (penalty, headroom, node_id)
        capacities = self._cpu_capacity
        for node in cluster.nodes:
            capacity = capacities[node.node_id]
            headroom = capacity - normal_used.get(node.node_id, 0)
            free_cpus, _ = free.free_of(node.node_id)
            if headroom < job.cores or free_cpus < job.cores:
                continue
            key = (
                free.placement_penalty(node.node_id),
                headroom,
                node.node_id,
            )
            if best is None or key < best:
                best = key
        if best is None:
            return None
        return [(best[2], job.cores, 0)]

    # ---------------------- checkpoint / restore ----------------------- #

    def _snapshot_queues(self) -> Dict[str, Any]:
        def queues_state(
            queues: Dict[int, Deque],
        ) -> Dict[str, List[str]]:
            return {
                str(tenant_id): [job.job_id for job in queue]
                for tenant_id, queue in queues.items()
            }

        # The lazily-built layout fields (_layout, _topology, _cpu_capacity)
        # are pure functions of the cluster config and rebuild on the first
        # post-restore pass, so they are deliberately not snapshotted.
        return {
            "gpu_small": queues_state(self._gpu_queues_small),
            "gpu_big": queues_state(self._gpu_queues_big),
            "cpu": queues_state(self._cpu_queues),
            "inference": queues_state(self._inference_queues),
            "gpu_ledger": self._gpu_ledger.snapshot(),
            "cpu_ledger": self._cpu_ledger.snapshot(),
            "running": sorted(self._running),
            "cpu_node": dict(self._cpu_node),
            "borrowed_cpu": dict(self._borrowed_cpu),
            "borrowed_gpu": dict(self._borrowed_gpu),
            "pending_borrow_cpu": sorted(self._pending_borrow_cpu),
            "pending_borrow_gpu": sorted(self._pending_borrow_gpu),
        }

    def _restore_queues(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]
    ) -> None:
        def queues_from(raw: Dict[str, List[str]]) -> Dict[int, Deque]:
            return {
                int(tenant_id): deque(jobs_by_id[job_id] for job_id in job_ids)
                for tenant_id, job_ids in raw.items()
            }

        self._gpu_queues_small = queues_from(state["gpu_small"])
        self._gpu_queues_big = queues_from(state["gpu_big"])
        self._cpu_queues = queues_from(state["cpu"])
        self._inference_queues = queues_from(state["inference"])
        self._gpu_ledger.restore(state["gpu_ledger"])
        self._cpu_ledger.restore(state["cpu_ledger"])
        self._running = {
            job_id: jobs_by_id[job_id] for job_id in state["running"]
        }
        self._cpu_node = {
            job_id: int(node_id)
            for job_id, node_id in state["cpu_node"].items()
        }
        # The restored tracked-job map invalidates the incremental census;
        # mark it dirty so the next pass rebuilds both maps from a cluster
        # walk instead of trusting counters across a restore boundary.
        self._cpu_used = {}
        self._cpu_cores = {}
        self._census_dirty = True
        self._borrowed_cpu = {
            job_id: int(node_id)
            for job_id, node_id in state["borrowed_cpu"].items()
        }
        self._borrowed_gpu = {
            job_id: int(node_id)
            for job_id, node_id in state["borrowed_gpu"].items()
        }
        self._pending_borrow_cpu = set(state["pending_borrow_cpu"])
        self._pending_borrow_gpu = set(state["pending_borrow_gpu"])
        self._cpu_borrow_index = {}
        for job_id, node_id in self._borrowed_cpu.items():
            self._cpu_borrow_index.setdefault(node_id, set()).add(job_id)
        self._gpu_borrow_index = {}
        for job_id, node_id in self._borrowed_gpu.items():
            self._gpu_borrow_index.setdefault(node_id, set()).add(job_id)
        # Restored state may differ arbitrarily from the last pass this
        # process saw: re-arm every gate group and rebuild the heaps.
        self._gate.mark_all()
        for heap in (
            self._heap_gpu_big,
            self._heap_gpu_small,
            self._heap_inference,
            self._heap_cpu,
        ):
            heap.invalidate()
        self._gpu_idle_prev = self.gpu_queue_empty()
        self._place_memo = {}

    # --------------------------- shared ------------------------------- #

    @staticmethod
    def _next_tenant(
        queues: Dict[int, Deque],
        ledger: UsageLedger,
        total_cpus: int,
        total_gpus: int,
        blocked: Set[int],
    ) -> Optional[int]:
        best_id, best_share = None, None
        for tenant_id, queue in queues.items():
            if not queue or tenant_id in blocked:
                continue
            share = ledger.dominant_share(tenant_id, total_cpus, total_gpus)
            if best_share is None or (share, tenant_id) < (best_share, best_id):
                best_id, best_share = tenant_id, share
        return best_id
