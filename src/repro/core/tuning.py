"""The feedback core-tuning state machine (Sec. V-B2).

Starting from N_start, the allocator "tries both larger and smaller core
number" in profiling steps, each step measuring GPU utilization for one
candidate allocation:

1. measure the start point (the baseline);
2. try one core fewer — keep reducing while utilization stays within
   ``epsilon`` of the best seen (this is CODA's *slimming*: cores that
   buy no utilization are returned to the cluster, which also walks an
   over-provisioned N_start back down Fig. 3's flat post-optimum
   plateau); when reducing costs real utilization,
3. try one core more — if utilization improves by more than ``epsilon``,
   keep increasing until it stops improving;
4. settle on the best observed allocation (fewest cores on ties).

The down-walk compares against a drift-free reference (the maximum
utilization seen), so twenty sub-epsilon steps cannot accumulate into a
real regression.  Below the knee every removed core costs well over
``epsilon`` (Fig. 3's steep left side), so a well-started search still
takes the 3-4 profiling steps of Table II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Minimum utilization gain that counts as an improvement.
DEFAULT_EPSILON = 0.01


class _Phase(enum.Enum):
    BASELINE = "baseline"
    TRYING_FEWER = "trying_fewer"
    TRYING_MORE = "trying_more"
    DONE = "done"


@dataclass
class TuningSession:
    """One job's core-number search.

    Drive it by alternating: take ``next_cores`` (resize the job, run a
    profiling step), then call :meth:`record` with the measured
    utilization; ``record`` returns the next candidate or ``None`` when
    the search settled.  ``best_cores`` then holds the answer.
    """

    n_start: int
    min_cores: int = 1
    max_cores: int = 28
    epsilon: float = DEFAULT_EPSILON

    _phase: _Phase = field(default=_Phase.BASELINE, init=False)
    _measurements: List[Tuple[int, float]] = field(default_factory=list, init=False)
    _best_cores: Optional[int] = field(default=None, init=False)
    _best_util: float = field(default=-1.0, init=False)
    _pending_cores: Optional[int] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.min_cores <= self.n_start <= self.max_cores:
            raise ValueError(
                f"N_start {self.n_start} outside [{self.min_cores}, "
                f"{self.max_cores}]"
            )
        if self.epsilon < 0:
            raise ValueError(f"negative epsilon: {self.epsilon}")
        self._pending_cores = self.n_start

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def done(self) -> bool:
        return self._phase is _Phase.DONE

    @property
    def next_cores(self) -> Optional[int]:
        """The allocation to profile next, or None when done."""
        return self._pending_cores

    @property
    def best_cores(self) -> int:
        if self._best_cores is None:
            return self.n_start
        return self._best_cores

    @property
    def steps_taken(self) -> int:
        """Profiling steps completed so far (Table II's first column)."""
        return len(self._measurements)

    @property
    def measurements(self) -> List[Tuple[int, float]]:
        return list(self._measurements)

    # ------------------------------------------------------------------ #
    # Driving

    def record(self, cores: int, utilization: float) -> Optional[int]:
        """Feed the utilization measured at ``cores``; get the next probe.

        Returns ``None`` once the search has settled (``done`` is then
        True and ``best_cores`` holds the result).
        """
        if self.done:
            raise RuntimeError("tuning session already settled")
        if cores != self._pending_cores:
            raise ValueError(
                f"measured {cores} cores but session expected "
                f"{self._pending_cores}"
            )
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization out of [0, 1]: {utilization}")
        self._measurements.append((cores, utilization))
        improved = utilization > self._best_util + self.epsilon
        harmless = utilization >= self._best_util - self.epsilon
        if self._best_cores is None or improved:
            self._best_cores, self._best_util = cores, utilization
        elif harmless and cores < self._best_cores:
            # Slimming: same utilization for fewer cores is a better
            # allocation.  The reference utilization keeps the *maximum*
            # seen so sub-epsilon steps cannot drift downwards.
            self._best_cores = cores
            self._best_util = max(self._best_util, utilization)

        if self._phase is _Phase.BASELINE:
            return self._after_baseline()
        if self._phase is _Phase.TRYING_FEWER:
            return self._after_fewer(improved, harmless, cores)
        if self._phase is _Phase.TRYING_MORE:
            return self._after_more(improved, cores)
        raise AssertionError(f"unreachable phase {self._phase}")

    def abort(self) -> None:
        """Settle immediately on the best seen (e.g., resize impossible)."""
        self._phase = _Phase.DONE
        self._pending_cores = None

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        return {
            "n_start": self.n_start,
            "min_cores": self.min_cores,
            "max_cores": self.max_cores,
            "epsilon": self.epsilon,
            "phase": self._phase.value,
            "measurements": [[cores, util] for cores, util in self._measurements],
            "best_cores": self._best_cores,
            "best_util": self._best_util,
            "pending_cores": self._pending_cores,
        }

    @classmethod
    def from_snapshot(cls, state: Dict[str, Any]) -> "TuningSession":
        session = cls(
            n_start=int(state["n_start"]),
            min_cores=int(state["min_cores"]),
            max_cores=int(state["max_cores"]),
            epsilon=float(state["epsilon"]),
        )
        session._phase = _Phase(state["phase"])
        session._measurements = [
            (int(cores), float(util)) for cores, util in state["measurements"]
        ]
        best_cores = state["best_cores"]
        session._best_cores = None if best_cores is None else int(best_cores)
        session._best_util = float(state["best_util"])
        # Written after __post_init__ already primed it with n_start.
        pending = state["pending_cores"]
        session._pending_cores = None if pending is None else int(pending)
        return session

    # ------------------------------------------------------------------ #
    # Phase transitions

    def _after_baseline(self) -> Optional[int]:
        if self.n_start - 1 >= self.min_cores:
            self._phase = _Phase.TRYING_FEWER
            return self._probe(self.n_start - 1)
        if self.n_start + 1 <= self.max_cores:
            self._phase = _Phase.TRYING_MORE
            return self._probe(self.n_start + 1)
        return self._settle()

    def _after_fewer(
        self, improved: bool, harmless: bool, cores: int
    ) -> Optional[int]:
        if (improved or harmless) and cores - 1 >= self.min_cores:
            return self._probe(cores - 1)
        if improved or harmless:
            return self._settle()  # hit the floor while still slimming
        if cores == self.n_start - 1 and self.n_start + 1 <= self.max_cores:
            # Fewer cost real utilization on the first try; probe the
            # other direction (the paper's step 2).
            self._phase = _Phase.TRYING_MORE
            return self._probe(self.n_start + 1)
        return self._settle()

    def _after_more(self, improved: bool, cores: int) -> Optional[int]:
        if improved and cores + 1 <= self.max_cores:
            return self._probe(cores + 1)
        return self._settle()

    def _probe(self, cores: int) -> int:
        self._pending_cores = cores
        return cores

    def _settle(self) -> None:
        self._phase = _Phase.DONE
        self._pending_cores = None
        return None
