"""Resource-array layout (Sec. V-C, Fig. 9).

The multi-array scheduler divides the cluster two ways:

* **CPU array vs GPU array** — on every node, ``reserved_cores`` CPU cores
  belong to the GPU array (reserved for training jobs); the rest form the
  CPU array where CPU jobs normally live.  "This part of the computing
  resources is derived from historical statistical information."
* **1-GPU vs 4-GPU sub-array** — a subset of nodes (the GPU-densest ones)
  is set aside for jobs demanding four GPUs or more; the remainder serves
  smaller jobs.  "The maximum GPU number required by 4-GPU jobs in the
  historical statistics is designated as the corresponding initial
  resource division."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.cluster.cluster import Cluster

#: Default per-node reservation for GPU jobs: sized for a node full of
#: tuned trainers (4 GPUs x ~4 cores each) out of 28 cores.
DEFAULT_RESERVED_CORES = 16

#: Default share of the cluster's GPUs set aside for the 4-GPU sub-array.
#: Half the fleet: all of the GPU-densest (8-GPU) nodes plus enough 4-GPU
#: nodes that 4-GPU jobs best-fit onto the latter and leave whole 8-GPU
#: nodes for the biggest single-node jobs.
DEFAULT_FOUR_GPU_FRACTION = 0.5

#: Jobs demanding at least this many GPUs in total belong to the 4-GPU
#: sub-array ("jobs that apply for 4 GPUs or more").
FOUR_GPU_THRESHOLD = 4


@dataclass(frozen=True)
class ArrayLayout:
    """The static division of cluster resources into arrays."""

    four_gpu_nodes: FrozenSet[int]
    one_gpu_nodes: FrozenSet[int]
    reserved_cores: int

    def __post_init__(self) -> None:
        if self.four_gpu_nodes & self.one_gpu_nodes:
            raise ValueError("sub-arrays overlap")
        if self.reserved_cores < 0:
            raise ValueError(f"negative reservation: {self.reserved_cores}")

    @property
    def all_nodes(self) -> FrozenSet[int]:
        return self.four_gpu_nodes | self.one_gpu_nodes

    def primary_nodes(self, total_gpus_demanded: int) -> FrozenSet[int]:
        """The sub-array a job of this GPU demand belongs to."""
        if total_gpus_demanded >= FOUR_GPU_THRESHOLD:
            return self.four_gpu_nodes
        return self.one_gpu_nodes

    def fallback_nodes(self, total_gpus_demanded: int) -> FrozenSet[int]:
        """The other sub-array, used when the primary is exhausted."""
        if total_gpus_demanded >= FOUR_GPU_THRESHOLD:
            return self.one_gpu_nodes
        return self.four_gpu_nodes

    def cpu_array_capacity(
        self, node_total_cores: int, node_total_gpus: int = 1
    ) -> int:
        """Cores on a node that belong to the CPU array.

        The GPU-array reservation only makes sense on nodes that host
        GPUs; on pure CPU nodes (the larger mixed clusters of Sec. VI-G)
        every core belongs to the CPU array.
        """
        if node_total_gpus == 0:
            return node_total_cores
        return max(0, node_total_cores - self.reserved_cores)


def build_layout(
    cluster: Cluster,
    *,
    reserved_cores: int = DEFAULT_RESERVED_CORES,
    four_gpu_fraction: float = DEFAULT_FOUR_GPU_FRACTION,
    historical_big_job_gpus: Optional[Sequence[int]] = None,
) -> ArrayLayout:
    """Carve the cluster into the Fig. 9 arrays.

    GPU-densest nodes fill the 4-GPU sub-array until it holds
    ``four_gpu_fraction`` of all GPUs.  When historical big-job GPU demands
    are supplied, the fraction is instead derived from them (their share of
    total demand, clamped to [0.1, 0.8]) — the paper's "historical
    statistical information".
    """
    if not 0.0 <= four_gpu_fraction <= 1.0:
        raise ValueError(f"four_gpu_fraction out of [0, 1]: {four_gpu_fraction}")
    if historical_big_job_gpus:
        total_demand = sum(historical_big_job_gpus)
        big_demand = sum(
            g for g in historical_big_job_gpus if g >= FOUR_GPU_THRESHOLD
        )
        if total_demand > 0:
            four_gpu_fraction = min(0.8, max(0.1, big_demand / total_demand))

    total_gpus = cluster.total.gpus
    target = four_gpu_fraction * total_gpus
    ordered: List = sorted(
        cluster.nodes, key=lambda node: (-node.total_gpus, node.node_id)
    )
    four_nodes: List[int] = []
    accumulated = 0
    for node in ordered:
        if accumulated >= target:
            break
        four_nodes.append(node.node_id)
        accumulated += node.total_gpus
    four_set = frozenset(four_nodes)
    one_set = frozenset(
        node.node_id for node in cluster.nodes if node.node_id not in four_set
    )
    return ArrayLayout(
        four_gpu_nodes=four_set,
        one_gpu_nodes=one_set,
        reserved_cores=reserved_cores,
    )
