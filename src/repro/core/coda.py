"""The CODA scheduling system (Fig. 8).

Wires the three components behind the standard scheduler interface:

* the :class:`~repro.core.multiarray.MultiArrayScheduler` owns the queues
  and placement;
* the :class:`~repro.core.allocator.AdaptiveCpuAllocator` supplies each
  training job's starting core count and runs the 90-second profiling
  loop once the job is on GPUs;
* the :class:`~repro.core.eliminator.ContentionEliminator` polices memory
  bandwidth on every node.

CODA also "periodically updates the job information from all users ...
in the backend" — here that backend is the allocator's
:class:`~repro.core.historylog.TenantHistory`, fed on every completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.allocator import AdaptiveCpuAllocator, PROFILING_STEP_S
from repro.core.arrays import DEFAULT_FOUR_GPU_FRACTION, DEFAULT_RESERVED_CORES
from repro.core.eliminator import ContentionEliminator, EliminatorConfig
from repro.core.multiarray import MultiArrayScheduler
from repro.core.tuning import DEFAULT_EPSILON
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import SchedulerContext
from repro.workload.job import GpuJob, Job


@dataclass(frozen=True)
class CodaConfig:
    """All of CODA's tunables in one place."""

    reserved_cores: int = DEFAULT_RESERVED_CORES
    four_gpu_fraction: float = DEFAULT_FOUR_GPU_FRACTION
    profiling_step_s: float = PROFILING_STEP_S
    tuning_epsilon: float = DEFAULT_EPSILON
    max_cores_per_job: int = 24
    history_window: int = 20
    #: Consecutive failure-killed profiling sessions after which the
    #: allocator stops probing and serves category-default N_start only
    #: (degraded mode, see docs/resilience.md).
    degraded_after_aborts: int = 3
    #: How long degraded mode lasts before profiling resumes.
    degraded_cooldown_s: float = 1800.0
    #: Extension beyond the paper: prefer placing trainers on nodes with
    #: memory-bandwidth/PCIe headroom (see MultiArrayScheduler).
    contention_aware_placement: bool = False
    #: Extension: keep multi-node gangs inside one rack when the cluster
    #: is racked (no effect on the paper's flat topology).
    rack_aware_placement: bool = False
    eliminator: EliminatorConfig = field(default_factory=EliminatorConfig)

    @classmethod
    def provisioned_from(cls, jobs, cluster_config, **overrides) -> "CodaConfig":
        """Size the arrays from historical jobs (Sec. V-C's "historical
        statistical information") — see :mod:`repro.core.provisioning`."""
        from repro.core.provisioning import (
            suggest_four_gpu_fraction,
            suggest_reservation,
        )

        values = dict(
            reserved_cores=suggest_reservation(jobs, cluster_config),
            four_gpu_fraction=suggest_four_gpu_fraction(jobs),
        )
        values.update(overrides)
        return cls(**values)


class CodaScheduler(MultiArrayScheduler):
    """The complete CODA system as a drop-in scheduler."""

    name = "coda"

    def __init__(
        self,
        config: Optional[CodaConfig] = None,
        *,
        restart_policy: Optional[RestartPolicy] = None,
    ) -> None:
        self.config = config or CodaConfig()
        allocator = AdaptiveCpuAllocator(
            profiling_step_s=self.config.profiling_step_s,
            epsilon=self.config.tuning_epsilon,
            max_cores_per_job=self.config.max_cores_per_job,
            history_window=self.config.history_window,
            degraded_after_aborts=self.config.degraded_after_aborts,
            degraded_cooldown_s=self.config.degraded_cooldown_s,
        )
        super().__init__(
            allocator,
            reserved_cores=self.config.reserved_cores,
            four_gpu_fraction=self.config.four_gpu_fraction,
            contention_aware=self.config.contention_aware_placement,
            rack_aware=self.config.rack_aware_placement,
            restart_policy=restart_policy,
        )
        self.eliminator = ContentionEliminator(config=self.config.eliminator)

    # ------------------------------------------------------------------ #
    # Lifecycle hooks

    def attach(self, context: SchedulerContext) -> None:
        super().attach(context)
        self.eliminator.start(context)

    def job_started(
        self, job: Job, placements: Sequence[Tuple[int, int, int]], now: float
    ) -> None:
        super().job_started(job, placements, now)
        if isinstance(job, GpuJob):
            if self._context is None:
                raise RuntimeError(
                    "CodaScheduler.job_started before attach(); the runner "
                    "must attach the scheduler first"
                )
            self.allocator.on_job_started(job, placements[0][1], self._context)

    def job_finished(self, job: Job, now: float) -> None:
        if isinstance(job, GpuJob):
            final = self._final_cores(job)
            self.allocator.on_job_finished(job, final)
            self.eliminator.forget_job(job.job_id)
        super().job_finished(job, now)

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        if isinstance(job, GpuJob):
            self.allocator.on_job_preempted(job, self._final_cores(job) or 1)
            self.eliminator.forget_job(job.job_id)
        super().job_preempted(job, now, preserve_progress=preserve_progress)

    def job_failed(self, job: Job, now: float) -> None:
        """Failure path: unlike a migration, the allocator aborts any
        in-flight profiling search and forgets the tuned cores, so the
        restarted job falls back to N_start (Sec. V-B) on whatever node it
        lands on next.  The base class then charges the restart budget and
        decides between re-queue (possibly delayed) and the dead-job
        ledger."""
        if isinstance(job, GpuJob):
            self.allocator.on_job_failed(job, now)
            self.eliminator.forget_job(job.job_id)
        super().job_failed(job, now)

    def _requeue_failed_job(self, job: Job, now: float) -> None:
        # Skip CodaScheduler.job_preempted (it would stash tuned cores the
        # failure path just dropped); the multi-array re-queue still lands
        # the job at its array head.
        MultiArrayScheduler.job_preempted(
            self, job, now, preserve_progress=False
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        state = super().snapshot()
        state["allocator"] = self.allocator.snapshot()
        state["eliminator"] = self.eliminator.snapshot()
        return state

    def restore(self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]) -> None:
        super().restore(state, jobs_by_id)
        self.allocator.restore(state["allocator"], jobs_by_id)
        self.eliminator.restore(state["eliminator"])

    def rearm(self, engine: Any, jobs_by_id: Dict[str, Job]) -> None:
        super().rearm(engine, jobs_by_id)
        context = self._context
        if context is None:
            raise RuntimeError("cannot re-arm CODA timers before attach()")
        self.allocator.rearm(engine, context)
        self.eliminator.rearm(engine, context)

    def _final_cores(self, job: GpuJob) -> Optional[int]:
        """The per-node cores the job last ran with, if discoverable."""
        tuned = self.allocator.tuned_cores(job.job_id)
        if tuned is not None:
            return tuned
        context = self._context
        if context is not None and context.cluster.has_allocation(job.job_id):
            return context.cluster.allocation_of(job.job_id).shares[0].cpus
        return None
