"""N_start determination (Sec. V-B1).

The search start point is chosen in priority order:

1. the largest tuned core count among the owner's recent jobs in the same
   category;
2. failing that (no same-category history), the owner's history across all
   categories — "it is also sufficient to find a reasonable N_start based
   only on the owner's historical job execution information";
3. failing that, the category defaults from the Sec. IV-B characterization:
   3 for CV, 5 for NLP, 5 for Speech;
4. with no category either, a neutral global default.

When the start comes from category defaults (not history, which already
reflects tuned outcomes), the optional hints refine it: pipeline
optimization -1, a large weight count -1, complex inter-iteration
processing +1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.historylog import TenantHistory
from repro.workload.job import GpuJob

#: Sec. V-B1: "we choose 3 for CV models, 5 for NLP models, and 5 for
#: SPEECH models empirically".
CATEGORY_DEFAULTS = {"CV": 3, "NLP": 5, "SPEECH": 5}

#: Start point when the tenant provided nothing and has no history.
GLOBAL_DEFAULT = 4


def determine_n_start(
    job: GpuJob,
    history: TenantHistory,
    *,
    max_cores: int,
    min_cores: int = 1,
) -> int:
    """Pick the profiling start point for ``job``, clamped to the node."""
    if max_cores < min_cores:
        raise ValueError(f"max_cores {max_cores} below min_cores {min_cores}")

    category: Optional[str] = (
        job.category if job.hints.category_provided else None
    )

    start: Optional[int] = None
    if category is not None:
        start = history.best_cores(job.tenant_id, category)
    if start is None:
        start = history.best_cores_any_category(job.tenant_id)

    if start is None:
        if category is not None:
            start = CATEGORY_DEFAULTS.get(category, GLOBAL_DEFAULT)
        else:
            start = GLOBAL_DEFAULT
        start = _apply_hints(job, start)

    # Multi-GPU single-node jobs need proportionally more prep workers
    # (Sec. IV-B2: demand is linear in the local GPU count); multi-node
    # jobs need no more than two cores per node.
    if job.setup.num_nodes > 1:
        start = min(start, 2)
    else:
        start = start * job.setup.gpus_per_node

    return max(min_cores, min(start, max_cores))


def _apply_hints(job: GpuJob, start: int) -> int:
    hints = job.hints
    if hints.uses_pipeline:
        start -= 1
    if hints.many_weights:
        start -= 1
    if hints.complex_inter_iteration:
        start += 1
    return max(1, start)
