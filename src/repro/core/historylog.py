"""The backend job-history log (Sec. V-A step 5).

When a job completes, "its resource usage, scheduling information, and
owner information are recorded in a log for future use".  The adaptive CPU
allocator reads this log to pick N_start: "a user tends to submit similar
training jobs", so the tuned core counts of the owner's past jobs in the
same category are the best predictor for the next one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class HistoryEntry:
    """One completed training job's outcome."""

    job_id: str
    model_name: str
    category: str
    tuned_cores: int


class TenantHistory:
    """Per-tenant, per-category ring buffers of tuned core counts."""

    def __init__(self, window: int = 20) -> None:
        if window < 1:
            raise ValueError(f"history window must be positive: {window}")
        self._window = window
        self._entries: Dict[Tuple[int, str], Deque[HistoryEntry]] = {}

    def record(
        self,
        tenant_id: int,
        job_id: str,
        model_name: str,
        category: str,
        tuned_cores: int,
    ) -> None:
        if tuned_cores < 1:
            raise ValueError(f"{job_id}: tuned cores must be positive")
        key = (tenant_id, category)
        bucket = self._entries.setdefault(key, deque(maxlen=self._window))
        bucket.append(
            HistoryEntry(
                job_id=job_id,
                model_name=model_name,
                category=category,
                tuned_cores=tuned_cores,
            )
        )

    def best_cores(self, tenant_id: int, category: str) -> Optional[int]:
        """The paper's rule: "we choose the largest core number" among the
        owner's recent same-category jobs.  None with no history."""
        bucket = self._entries.get((tenant_id, category))
        if not bucket:
            return None
        return max(entry.tuned_cores for entry in bucket)

    def best_cores_any_category(self, tenant_id: int) -> Optional[int]:
        """Worst-case fallback (Sec. V-B1): the owner gave no category, so
        use their history across all categories."""
        candidates = [
            max(entry.tuned_cores for entry in bucket)
            for (owner, _), bucket in self._entries.items()
            if owner == tenant_id and bucket
        ]
        if not candidates:
            return None
        return max(candidates)

    def entries_for(self, tenant_id: int, category: str) -> Tuple[HistoryEntry, ...]:
        return tuple(self._entries.get((tenant_id, category), ()))

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> List[Any]:
        return [
            [
                tenant_id,
                category,
                [
                    [e.job_id, e.model_name, e.category, e.tuned_cores]
                    for e in bucket
                ],
            ]
            for (tenant_id, category), bucket in sorted(self._entries.items())
        ]

    def restore(self, state: List[Any]) -> None:
        self._entries = {}
        for tenant_id, category, entries in state:
            bucket: Deque[HistoryEntry] = deque(maxlen=self._window)
            for job_id, model_name, entry_category, tuned_cores in entries:
                bucket.append(
                    HistoryEntry(
                        job_id=str(job_id),
                        model_name=str(model_name),
                        category=str(entry_category),
                        tuned_cores=int(tuned_cores),
                    )
                )
            self._entries[(int(tenant_id), str(category))] = bucket
