"""CODA — the paper's contribution.

Three cooperating components (Fig. 8):

* :class:`~repro.core.allocator.AdaptiveCpuAllocator` — picks each DNN
  training job's starting core count from its category, its owner's
  history, and optional hints, then feedback-tunes it in 90-second
  profiling steps (Sec. V-B);
* :class:`~repro.core.multiarray.MultiArrayScheduler` — splits resources
  into a CPU array and a GPU array (itself split into 1-GPU and 4-GPU
  sub-arrays), runs DRF inside each, and lets arrays preempt each other's
  idle resources (Sec. V-C);
* :class:`~repro.core.eliminator.ContentionEliminator` — watches per-node
  memory bandwidth and throttles offending CPU jobs via MBA, falling back
  to halving their cores on nodes without MBA (Sec. V-D).

:class:`~repro.core.coda.CodaScheduler` wires them together behind the
standard :class:`~repro.schedulers.base.Scheduler` interface.
"""

from repro.core.allocator import AdaptiveCpuAllocator
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import ContentionEliminator, EliminatorConfig
from repro.core.historylog import TenantHistory
from repro.core.multiarray import MultiArrayScheduler
from repro.core.nstart import CATEGORY_DEFAULTS, determine_n_start
from repro.core.provisioning import (
    suggest_four_gpu_fraction,
    suggest_reservation,
)
from repro.core.tuning import TuningSession

__all__ = [
    "AdaptiveCpuAllocator",
    "CATEGORY_DEFAULTS",
    "CodaConfig",
    "CodaScheduler",
    "ContentionEliminator",
    "EliminatorConfig",
    "MultiArrayScheduler",
    "TenantHistory",
    "TuningSession",
    "determine_n_start",
    "suggest_four_gpu_fraction",
    "suggest_reservation",
]
