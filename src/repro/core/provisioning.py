"""Array provisioning from historical statistics (Sec. V-C).

The paper sizes both multi-array divisions from history rather than fixing
them: the GPU array's reserved CPU cores per node are "derived from
historical statistical information", and the 4-GPU sub-array's share comes
from "the maximum GPU number required by 4-GPU jobs in the historical
statistics".  This module computes both from a set of (historical or
anticipated) GPU jobs, using the performance model's per-job optima — the
same signal the adaptive allocator would have logged.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.config import ClusterConfig
from repro.core.arrays import FOUR_GPU_THRESHOLD
from repro.metrics.stats import mean, percentile
from repro.perfmodel.catalog import get_model
from repro.perfmodel.utilization import optimal_cores
from repro.workload.job import GpuJob

#: Keep at least this many cores per node in the CPU array.
MIN_CPU_ARRAY_CORES = 4


def optimal_cores_per_gpu(jobs: Sequence[GpuJob]) -> List[float]:
    """Per-GPU tuned core demand of each historical single-node job.

    Multi-node jobs are excluded for the same reason the allocator's
    history excludes them: their network-bound 2-core allocations say
    nothing about CPU appetite.
    """
    samples: List[float] = []
    for job in jobs:
        if job.setup.num_nodes > 1:
            continue
        profile = get_model(job.model_name)
        best = optimal_cores(profile, job.setup)
        samples.append(best / job.setup.gpus_per_node)
    return samples


def suggest_reservation(
    jobs: Sequence[GpuJob],
    cluster_config: ClusterConfig,
    *,
    quantile: float = 75.0,
) -> int:
    """Reserved CPU cores per node for the GPU array.

    Sized so a node whose GPUs are fully occupied by jobs at the
    ``quantile``-th per-GPU core demand still finds its cores reserved,
    clamped to leave :data:`MIN_CPU_ARRAY_CORES` for the CPU array on the
    *smallest* node.
    """
    samples = optimal_cores_per_gpu(jobs)
    if not samples:
        raise ValueError("no single-node GPU jobs in the history")
    per_gpu = percentile(samples, quantile)
    nodes = cluster_config.expand()
    typical_gpus = mean([node.gpus for node in nodes if node.gpus > 0])
    smallest_cores = min(node.cores for node in nodes)
    reservation = round(per_gpu * typical_gpus)
    return max(1, min(reservation, smallest_cores - MIN_CPU_ARRAY_CORES))


def suggest_four_gpu_fraction(jobs: Iterable[GpuJob]) -> float:
    """Share of the cluster's GPUs to dedicate to the 4-GPU sub-array.

    The big jobs' share of historical GPU demand, clamped to [0.1, 0.8]
    (the same clamp :func:`repro.core.arrays.build_layout` applies).
    """
    total = 0
    big = 0
    for job in jobs:
        gpus = job.setup.total_gpus
        total += gpus
        if gpus >= FOUR_GPU_THRESHOLD:
            big += gpus
    if total == 0:
        raise ValueError("no GPU jobs in the history")
    return min(0.8, max(0.1, big / total))
