"""Command-line interface.

Subcommands mirroring how a downstream user would drive the library:

* ``repro-sim run`` — simulate a scenario under a policy and print the
  evaluation summary;
* ``repro-sim compare`` — FIFO vs DRF vs CODA on the same trace;
* ``repro-sim sweep`` — a fault-tolerant, resumable policy x seed grid
  with supervised workers and a crash-safe progress ledger;
* ``repro-sim trace`` — generate a synthetic trace and write it to JSONL;
* ``repro-sim characterize`` — print a model's Sec.-IV characterization.

All output is plain text; exit code 0 on success (``sweep`` exits 1 when
any grid cell was quarantined, and 130 when a SIGINT/SIGTERM stopped it
— after journalling ``interrupted`` cells and flushing partial results
and the report).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro import profiling
from repro.analysis.invariants import DEFAULT_AUDIT_INTERVAL_S, InvariantAuditor
from repro.core.coda import CodaConfig
from repro.core.eliminator import CHAOS_FLAP_COOLDOWN_S, EliminatorConfig
from repro.experiments.scenarios import (
    Scenario,
    grid_specs,
    paper_scale_scenario,
    run_comparison,
    run_scenario,
    small_scenario,
)
from repro.faults import FaultConfig
from repro.health import HealthConfig, RestartPolicy
from repro.metrics.report import render_table
from repro.metrics.stats import fraction_at_most, fraction_exceeding
from repro.parallel import (
    SCHEDULER_NAMES,
    ResultCache,
    RunSpec,
    SimPool,
    build_scheduler,
    default_cache,
    clamp_jobs,
    default_jobs,
)
from repro.perfmodel.bandwidth import memory_bandwidth_demand
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import optimal_cores, utilization_curve
from repro.workload.job import JobKind
from repro.workload.tracegen import TraceConfig, generate_trace
from repro.workload.traceio import save_trace


def _chaos_coda_config(chaos: bool) -> CodaConfig:
    """CODA's config with resilience knobs threaded through.

    Under active fault injection (``chaos``) CODA additionally arms the
    eliminator's flap cooldown; failure-free runs keep the 0-cooldown
    default so their output stays byte-identical to earlier versions.
    """
    return CodaConfig(
        eliminator=EliminatorConfig(
            flap_cooldown_s=CHAOS_FLAP_COOLDOWN_S if chaos else 0.0
        )
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache directory (default: "
        "$REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-stats", action="store_true",
        help="print cache hit/miss/store counters after the run",
    )


def _cache_from_args(args: argparse.Namespace) -> Optional[ResultCache]:
    """The cache the flags select: --no-cache wins, --cache-dir pins the
    directory, otherwise the environment defaults decide."""
    if args.no_cache:
        return None
    return default_cache(args.cache_dir)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="CODA (ICDCS 2020) reproduction — cluster simulator CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a scenario under a policy")
    run.add_argument(
        "--policy", choices=sorted(SCHEDULER_NAMES), default="coda",
        help="scheduling policy (default: coda)",
    )
    run.add_argument(
        "--scale", choices=("small", "paper"), default="small",
        help="cluster scale (default: small = 6 nodes)",
    )
    run.add_argument("--days", type=float, default=0.25, help="trace length")
    run.add_argument("--seed", type=int, default=0, help="trace seed")
    run.add_argument(
        "--mtbf", type=float, default=0.0, metavar="HOURS",
        help="per-node crash MTBF in hours; 0 disables fault injection "
        "(default: 0)",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault injector's RNG streams (default: 0)",
    )
    run.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="failure restarts a job may consume before it is retired to "
        "the dead-job ledger; 0 means unlimited (default: 5)",
    )
    run.add_argument(
        "--quarantine-threshold", type=float, default=3.0, metavar="SCORE",
        help="windowed failure score at which a node is quarantined "
        "(crash/GPU strikes weigh 1.0, telemetry dropouts 0.25; "
        "default: 3.0)",
    )
    run.add_argument(
        "--audit", action="store_true",
        help="run the invariant auditor alongside the simulation and "
        "print its violation report (the run itself is unchanged)",
    )
    run.add_argument(
        "--audit-interval", type=float, default=DEFAULT_AUDIT_INTERVAL_S,
        metavar="SECONDS",
        help="audit sweep cadence in simulated seconds (default: "
        f"{DEFAULT_AUDIT_INTERVAL_S:g})",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="measure per-subsystem wall-clock time shares during the run "
        "and print them after the summary (the run's outputs are "
        "unchanged)",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe, integrity-checked checkpoints of the run "
        "into DIR (requires --checkpoint-interval)",
    )
    run.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="EVENTS",
        help="fired-event cadence of the checkpoint writer "
        "(requires --checkpoint-dir)",
    )
    run.add_argument(
        "--restore", default=None, metavar="CKPT",
        help="resume from this checkpoint file; the finished run is "
        "byte-identical to an uninterrupted one",
    )
    _add_cache_flags(run)

    compare = sub.add_parser(
        "compare", help="run FIFO, DRF, and CODA on the same trace"
    )
    compare.add_argument(
        "--scale", choices=("small", "paper"), default="small"
    )
    compare.add_argument("--days", type=float, default=0.25)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the three policy runs (default: "
        "$REPRO_JOBS or 1 = serial)",
    )
    _add_cache_flags(compare)

    sweep = sub.add_parser(
        "sweep",
        help="run a resumable policy x seed grid with supervised workers",
    )
    where = sweep.add_mutually_exclusive_group(required=True)
    where.add_argument(
        "--out", metavar="DIR",
        help="start a fresh sweep in DIR (must not already hold one)",
    )
    where.add_argument(
        "--resume", metavar="DIR",
        help="resume the sweep in DIR: completed cells are skipped via "
        "the progress ledger and result cache",
    )
    sweep.add_argument(
        "--scale", choices=("small", "paper"), default="small"
    )
    sweep.add_argument("--days", type=float, default=0.05)
    sweep.add_argument(
        "--policies", default="fifo,drf,coda", metavar="CSV",
        help="comma-separated policies forming the grid's first axis "
        "(default: fifo,drf,coda)",
    )
    sweep.add_argument(
        "--seeds", default="0", metavar="CSV",
        help="comma-separated trace seeds forming the second axis "
        "(default: 0)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="supervised worker processes (default: $REPRO_JOBS or 1; "
        "a single-CPU host always degrades to in-process serial)",
    )
    sweep.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retries per failing cell before it is quarantined "
        "(default: 2)",
    )
    sweep.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock ceiling per attempt; the worker is killed past "
        "it (default: none)",
    )
    sweep.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat silence after which it is presumed hung "
        "and killed (default: none)",
    )
    sweep.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="first retry delay; doubles per failure, with seeded jitter "
        "(default: 0.5)",
    )
    sweep.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="EVENTS",
        help="checkpoint each cell every N simulation events under "
        "DIR/checkpoints/ and resume retries from the newest snapshot "
        "(default: off)",
    )
    _add_cache_flags(sweep)

    trace = sub.add_parser("trace", help="generate a synthetic trace (JSONL)")
    trace.add_argument("output", help="output path, e.g. trace.jsonl")
    trace.add_argument("--days", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--gpu-jobs-per-day", type=float, default=25000.0 / 30.0)
    trace.add_argument("--cpu-jobs-per-day", type=float, default=75000.0 / 30.0)

    character = sub.add_parser(
        "characterize", help="print a model's CPU-demand characterization"
    )
    character.add_argument(
        "model", nargs="?", default="resnet50",
        help=f"one of: {', '.join(ALL_MODEL_NAMES)}",
    )
    character.add_argument("--max-cores", type=int, default=12)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.scale == "paper":
        scenario: Scenario = paper_scale_scenario(
            duration_days=args.days, seed=args.seed
        )
    else:
        scenario = small_scenario(duration_days=args.days, seed=args.seed)
    faults_on = args.mtbf > 0
    if faults_on:
        scenario = scenario.with_faults(
            FaultConfig(seed=args.fault_seed, node_mtbf_s=args.mtbf * 3600.0)
        )
    print(
        f"Simulating {scenario.trace_config.duration_days:g} day(s) on "
        f"{scenario.cluster_config.num_nodes} nodes / "
        f"{scenario.cluster_config.total_gpus} GPUs under "
        f"{args.policy.upper()} (seed {args.seed}"
        + (f", node MTBF {args.mtbf:g} h, fault seed {args.fault_seed}"
           if faults_on else "")
        + ") ..."
    )
    auditor = (
        InvariantAuditor(args.audit_interval) if args.audit else None
    )
    if args.max_restarts < 0:
        print(f"--max-restarts must be >= 0: {args.max_restarts}", file=sys.stderr)
        return 2
    if args.quarantine_threshold <= 0:
        print(
            f"--quarantine-threshold must be positive: "
            f"{args.quarantine_threshold}",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        print(
            f"--checkpoint-interval must be >= 1: {args.checkpoint_interval}",
            file=sys.stderr,
        )
        return 2
    if (args.checkpoint_dir is None) != (args.checkpoint_interval is None):
        print(
            "--checkpoint-dir and --checkpoint-interval go together",
            file=sys.stderr,
        )
        return 2
    checkpointing = args.checkpoint_dir is not None or args.restore is not None
    if checkpointing and (args.audit or args.profile):
        print(
            "--checkpoint-dir/--restore cannot be combined with "
            "--audit/--profile",
            file=sys.stderr,
        )
        return 2
    restart_policy = RestartPolicy(
        max_restarts=args.max_restarts if args.max_restarts > 0 else None
    )
    coda_config = (
        _chaos_coda_config(True)
        if args.policy == "coda" and faults_on
        else None
    )
    health_config = (
        HealthConfig(quarantine_threshold=args.quarantine_threshold)
        if faults_on
        else None
    )
    # The auditor and the profiler observe the simulation as it executes,
    # so those runs bypass the result cache — a cached result has nothing
    # left to observe.  Checkpointed (or restored) runs bypass it too:
    # the point is to execute, snapshotting along the way.
    observed = args.audit or args.profile
    pool = SimPool(
        cache=None if observed or checkpointing else _cache_from_args(args)
    )
    profiler = profiling.enable() if args.profile else None
    try:
        if observed:
            scheduler = build_scheduler(
                args.policy,
                coda_config=coda_config,
                restart_policy=restart_policy,
            )
            result = run_scenario(
                scenario, scheduler, auditor=auditor, health_config=health_config
            )
        elif checkpointing:
            from repro.checkpoint import CheckpointError, execute_with_checkpoints

            spec = RunSpec(
                scenario=scenario,
                scheduler=args.policy,
                coda_config=coda_config,
                restart_policy=restart_policy,
                health_config=health_config,
            )
            try:
                result = execute_with_checkpoints(
                    spec,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_every_events=args.checkpoint_interval,
                    restore_from=args.restore,
                )
            except CheckpointError as error:
                print(f"checkpoint error: {error}", file=sys.stderr)
                return 1
        else:
            spec = RunSpec(
                scenario=scenario,
                scheduler=args.policy,
                coda_config=coda_config,
                restart_policy=restart_policy,
                health_config=health_config,
            )
            result = pool.map([spec])[0]
    finally:
        if profiler is not None:
            profiling.disable()
    collector = result.collector
    gpu_queue = collector.queueing_times(
        JobKind.GPU, include_unstarted_until=result.horizon_s
    )
    cpu_queue = collector.queueing_times(
        JobKind.CPU, include_unstarted_until=result.horizon_s
    )
    tracker = collector.fragmentation
    print(
        render_table(
            ["metric", "value"],
            [
                ("finished GPU jobs", result.finished_gpu_jobs),
                ("finished CPU jobs", result.finished_cpu_jobs),
                ("GPU utilization", f"{collector.gpu_utilization.mean():.3f}"),
                ("GPU active rate", f"{collector.gpu_active_rate.mean():.3f}"),
                (
                    "avg fragmentation",
                    f"{tracker.fragmentation_rate() * tracker.contended_fraction():.3f}",
                ),
                (
                    "GPU jobs queued >10 min",
                    f"{fraction_exceeding(gpu_queue, 600.0):.3f}",
                ),
                (
                    "CPU jobs started <=3 min",
                    f"{fraction_at_most(cpu_queue, 180.0):.3f}",
                ),
                ("preemptions", result.preemptions),
                ("simulation events", result.events_fired),
            ]
            + (
                [
                    ("node failures", collector.faults.node_failures),
                    ("job restarts", result.restarts),
                    (
                        "node downtime",
                        f"{result.node_downtime_s / 3600.0:.2f} h",
                    ),
                    (
                        "lost GPU iterations",
                        f"{collector.faults.lost_gpu_iterations:.0f}",
                    ),
                    (
                        "lost CPU seconds",
                        f"{collector.faults.lost_cpu_seconds:.0f}",
                    ),
                    ("quarantines", result.quarantines),
                    (
                        "quarantine time",
                        f"{result.quarantine_s / 3600.0:.2f} node-h",
                    ),
                    ("dead jobs", result.dead_jobs),
                ]
                + (
                    [("flap suppressions", result.flap_suppressions)]
                    if args.policy == "coda"
                    else []
                )
                if faults_on
                else []
            ),
            title=f"\n{args.policy.upper()} summary:",
        )
    )
    if args.cache_stats:
        print(f"\ncache: {pool.stats.render()}" if pool.cache is not None
              else "\ncache: disabled")
    if profiler is not None:
        total = profiler.total_timed_s()
        print(
            render_table(
                ["section", "seconds", "share"],
                [
                    (name, f"{seconds:.3f}", f"{share:6.1%}")
                    for name, seconds, share in profiler.time_shares(total)
                ],
                title="\nTime shares (of instrumented event time):",
            )
        )
    if auditor is not None:
        print()
        print(auditor.report())
        return 0 if auditor.stats.ok else 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.scale == "paper":
        scenario: Scenario = paper_scale_scenario(
            duration_days=args.days, seed=args.seed
        )
    else:
        scenario = small_scenario(duration_days=args.days, seed=args.seed)
    if args.jobs is not None:
        if args.jobs < 1:
            print(f"--jobs must be >= 1: {args.jobs}", file=sys.stderr)
            return 2
        # Same single-CPU degradation rule as the sweep service, so the
        # two entry points cannot disagree on one-core hosts
        # (REPRO_SWEEP_FORCE_SPAWN escapes it on both).
        jobs = clamp_jobs(args.jobs)
        if jobs < args.jobs:
            print(
                f"--jobs {args.jobs} clamped to {jobs} on a single-CPU "
                "host (set REPRO_SWEEP_FORCE_SPAWN=1 to force workers)",
                file=sys.stderr,
            )
    else:
        jobs = default_jobs()
    pool = SimPool(jobs=jobs, cache=_cache_from_args(args))
    results = run_comparison(scenario, executor=pool.map)
    rows = []
    for name in ("fifo", "drf", "coda"):
        result = results[name]
        collector = result.collector
        gpu_queue = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        tracker = collector.fragmentation
        rows.append(
            (
                name,
                f"{collector.gpu_utilization.mean():.3f}",
                f"{collector.gpu_active_rate.mean():.3f}",
                f"{tracker.fragmentation_rate() * tracker.contended_fraction():.3f}",
                f"{fraction_at_most(gpu_queue, 1.0):.3f}",
                result.finished_gpu_jobs,
            )
        )
    print(
        render_table(
            [
                "policy",
                "gpu util",
                "active rate",
                "avg frag",
                "gpu no-queue",
                "gpu done",
            ],
            rows,
            title="FIFO vs DRF vs CODA:",
        )
    )
    if args.cache_stats:
        print(f"\ncache: {pool.stats.render()}" if pool.cache is not None
              else "\ncache: disabled")
    return 0


def _csv_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        MANIFEST_NAME,
        SupervisorConfig,
        SweepInterrupted,
        run_sweep,
    )

    resuming = args.resume is not None
    out = Path(args.resume if resuming else args.out)
    manifest_path = out / MANIFEST_NAME

    if args.retries < 0:
        print(f"--retries must be >= 0: {args.retries}", file=sys.stderr)
        return 2
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        print(
            f"--checkpoint-interval must be >= 1: {args.checkpoint_interval}",
            file=sys.stderr,
        )
        return 2
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        print(f"--jobs must be >= 1: {jobs}", file=sys.stderr)
        return 2

    if resuming:
        # The manifest pins the grid: a resume re-derives the identical
        # specs, so flag drift cannot silently fork the sweep.
        if not manifest_path.is_file():
            print(
                f"{out} holds no sweep to resume ({MANIFEST_NAME} missing)",
                file=sys.stderr,
            )
            return 2
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        scale = manifest["scale"]
        days = manifest["days"]
        policies = list(manifest["policies"])
        seeds = [int(seed) for seed in manifest["seeds"]]
    else:
        if manifest_path.exists():
            print(
                f"{out} already holds a sweep; use --resume {out} to "
                "continue it",
                file=sys.stderr,
            )
            return 2
        scale = args.scale
        days = args.days
        policies = _csv_list(args.policies)
        seeds = [int(seed) for seed in _csv_list(args.seeds)]
        if not policies or not seeds:
            print("--policies and --seeds must be non-empty", file=sys.stderr)
            return 2

    unknown = [name for name in policies if name not in SCHEDULER_NAMES]
    if unknown:
        print(
            f"unknown policy(ies) {unknown}; expected {SCHEDULER_NAMES}",
            file=sys.stderr,
        )
        return 2

    if scale == "paper":
        scenario: Scenario = paper_scale_scenario(duration_days=days)
    else:
        scenario = small_scenario(duration_days=days)
    specs = grid_specs(scenario, schedulers=policies, seeds=seeds)

    if not resuming:
        out.mkdir(parents=True, exist_ok=True)
        manifest_path.write_text(
            json.dumps(
                {
                    "scale": scale,
                    "days": days,
                    "policies": policies,
                    "seeds": seeds,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    config = SupervisorConfig(
        max_retries=args.retries,
        run_timeout_s=args.run_timeout,
        heartbeat_timeout_s=args.heartbeat_timeout,
        backoff_base_s=args.backoff_base,
        checkpoint_every_events=args.checkpoint_interval,
    )
    cache = _cache_from_args(args)
    if cache is None:
        print(
            "warning: caching disabled — a resume cannot skip completed "
            "cells",
            file=sys.stderr,
        )
    print(
        f"{'Resuming' if resuming else 'Starting'} sweep in {out}: "
        f"{len(policies)} policy(ies) x {len(seeds)} seed(s) = "
        f"{len(specs)} cell(s), jobs={jobs}"
    )
    # A SIGTERM (e.g. a batch scheduler's shutdown) gets the same
    # graceful flush as Ctrl-C: both surface as KeyboardInterrupt inside
    # the sweep, which journals interrupted cells, keeps every settled
    # result, and still writes the report before raising.
    def _on_sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    interrupted = False
    try:
        result = run_sweep(
            specs,
            out_dir=out,
            jobs=jobs,
            supervisor=config,
            cache=cache,
            resume=resuming,
            title=f"Sweep report — {scale}, {days:g} day(s)",
            log=print,
        )
    except SweepInterrupted as stop:
        interrupted = True
        result = stop.result
    except KeyboardInterrupt:
        # The signal landed outside the supervised batch (during the
        # cache scan or while writing the report); the ledger is still
        # consistent, so a --resume simply continues.
        print("\ninterrupted before the batch settled; resume with "
              f"--resume {out}", file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    print(
        f"\nexecuted {result.executed} new simulation run(s), reused "
        f"{result.reused}, quarantined {result.quarantined} "
        f"(retries spent: {result.retries})"
    )
    if result.degraded_reason:
        print(f"degraded mode: {result.degraded_reason}")
    print(f"report: {result.report_path}")
    if args.cache_stats:
        print(f"cache: {cache.stats.render()}" if cache is not None
              else "cache: disabled")
    if interrupted:
        print(
            f"interrupted: {result.interrupted} cell(s) unfinished — "
            f"resume with --resume {out}",
            file=sys.stderr,
        )
        return 130
    return 0 if result.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        duration_days=args.days,
        gpu_jobs_per_day=args.gpu_jobs_per_day,
        cpu_jobs_per_day=args.cpu_jobs_per_day,
        seed=args.seed,
    )
    trace = generate_trace(config)
    save_trace(trace, args.output)
    print(
        f"Wrote {len(trace.jobs)} jobs ({len(trace.gpu_jobs)} GPU, "
        f"{len(trace.cpu_jobs)} CPU) to {args.output}"
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = get_model(args.model)
    setup = TrainSetup(1, 1)
    best = optimal_cores(profile, setup)
    print(
        f"{profile.name} ({profile.domain.value}/{profile.arch}, "
        f"{profile.dataset}) — 1N1G optimum: {best} cores, bandwidth "
        f"{memory_bandwidth_demand(profile, setup, best):.1f} GB/s"
    )
    print(
        render_table(
            ["cores", "GPU utilization"],
            [
                (cores, f"{util:.3f}")
                for cores, util in utilization_curve(
                    profile, setup, args.max_cores
                )
            ],
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
