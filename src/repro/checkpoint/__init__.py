"""Crash-safe simulation checkpoint/restore with byte-identical resume.

See :mod:`repro.checkpoint.store` for the on-disk format and
:mod:`repro.checkpoint.state` for the snapshot/re-arm protocol; the
user-facing story is in docs/resilience.md.
"""

from repro.checkpoint.errors import CheckpointError
from repro.checkpoint.state import (
    CheckpointWriter,
    build_runner,
    execute_with_checkpoints,
    restore_run,
    snapshot_run,
    spec_digest,
)
from repro.checkpoint.store import (
    CHECKPOINT_SCHEMA_VERSION,
    checkpoint_path,
    latest_checkpoint,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointWriter",
    "build_runner",
    "checkpoint_path",
    "execute_with_checkpoints",
    "latest_checkpoint",
    "read_checkpoint",
    "restore_run",
    "snapshot_run",
    "spec_digest",
    "write_checkpoint",
]
