"""Checkpoint failure type.

Every way a checkpoint can disappoint — unreadable file, schema drift,
integrity mismatch, or state that no longer re-arms — surfaces as one
loud :class:`CheckpointError`, so callers (the sweep supervisor, the CLI)
have exactly one thing to catch when deciding between resume and a
from-scratch rerun.
"""

from __future__ import annotations


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or restored."""
