"""Whole-simulation snapshot, restore, and the periodic writer.

A snapshot composes every stateful layer's own ``snapshot()``: engine
(clock, counters, live-event inventory), cluster (nodes, GPUs, monitors,
health tracker), scheduler (queues, ledgers, CODA's allocator and
eliminator), fault injector (RNG streams, injected log), the runner core
(running-job records, pass flags), and the metrics collector.

Restore deliberately never pickles the event heap.  Events hold closures,
so :func:`restore_run` rebuilds the simulation from its
:class:`~repro.parallel.spec.RunSpec` (trace and cluster regenerate
deterministically from config), then opens an engine restore window in
which each subsystem *re-arms* its own timers by tag, reconstructing each
closure from restored state under the event's original ``(time,
priority, seq)``.  ``finish_restore`` then verifies the re-armed
inventory covers every snapshotted event — an unclaimed tag means the
restore would silently drop a timer, and fails loudly instead.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.checkpoint.errors import CheckpointError
from repro.checkpoint.store import (
    checkpoint_path,
    read_checkpoint,
    write_checkpoint,
)
from repro.experiments.runner import RunResult, SimulationRunner
from repro.metrics.serialize import collector_from_dict, collector_to_dict
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.spec import RunSpec


def spec_digest(spec: "RunSpec") -> str:
    """Content hash of the spec's resolved fingerprint.

    Stamped into every snapshot so :func:`restore_run` can refuse a
    checkpoint taken under a different trace seed, scheduler, or cluster
    shape *before* re-arming — tag-based verification alone cannot tell
    two seeds of the same scenario apart (their job ids coincide).
    """
    return hashlib.sha256(spec.canonical_json().encode("utf-8")).hexdigest()


def snapshot_run(
    runner: SimulationRunner, spec: Optional["RunSpec"] = None
) -> Dict[str, Any]:
    """One serializable snapshot of a mid-flight simulation.

    Pass the run's ``spec`` so the snapshot carries its identity digest;
    restores then verify the checkpoint belongs to the spec being
    resumed."""
    state: Dict[str, Any] = {
        "engine": runner.engine.snapshot(),
        "cluster": runner.cluster.snapshot(),
        "scheduler": runner.scheduler.snapshot(),
        "runner": runner.snapshot(),
        "collector": collector_to_dict(runner.collector),
    }
    if runner.fault_injector is not None:
        state["faults"] = runner.fault_injector.snapshot()
    if spec is not None:
        state["spec"] = spec_digest(spec)
    return state


def build_runner(spec: "RunSpec") -> SimulationRunner:
    """A fresh runner for ``spec`` — the construction ``spec.execute()``
    performs, with the runner handed back instead of run to completion."""
    from repro.parallel.spec import build_scheduler

    scenario = spec.resolved_scenario()
    return SimulationRunner(
        scenario.build_cluster(),
        build_scheduler(spec.scheduler, spec.coda_config, spec.restart_policy),
        scenario.build_trace(),
        sample_interval_s=spec.sample_interval_s,
        fault_injector=scenario.build_fault_injector(),
        health_config=spec.health_config,
    )


def restore_run(spec: "RunSpec", state: Dict[str, Any]) -> SimulationRunner:
    """Rebuild a mid-flight simulation of ``spec`` from snapshot ``state``.

    Raises:
        CheckpointError: the state does not restore cleanly against this
            spec (wrong scenario shape, missing subsystem state, or an
            event inventory the subsystems cannot fully re-arm).
    """
    stored_digest = state.get("spec")
    if stored_digest is not None and stored_digest != spec_digest(spec):
        raise CheckpointError(
            f"checkpoint does not restore against spec {spec.label()!r}: "
            f"it was taken under a different spec (fingerprint "
            f"{stored_digest[:12]}..., expected {spec_digest(spec)[:12]}...)"
        )
    scenario = spec.resolved_scenario()
    trace = scenario.build_trace()
    jobs_by_id = {job.job_id: job for job in trace.jobs}
    runner = build_runner(spec)
    engine = runner.engine
    try:
        # Discards every construction-time event (arrivals, monitor and
        # fault arms); subsystems claim their snapshotted timers back.
        engine.begin_restore(state["engine"])
        runner.cluster.restore(state["cluster"])
        runner.scheduler.restore(state["scheduler"], jobs_by_id)
        if runner.fault_injector is not None:
            runner.fault_injector.restore(state["faults"])
        elif "faults" in state:
            raise CheckpointError(
                "checkpoint carries fault-injector state but the spec's "
                "scenario has no fault injector"
            )
        runner.restore(state["runner"], jobs_by_id)
        runner.collector = collector_from_dict(state["collector"])
        runner.rearm(jobs_by_id)
        runner.scheduler.rearm(engine, jobs_by_id)
        if runner.fault_injector is not None:
            runner.fault_injector.rearm(engine)
        engine.finish_restore()
    except CheckpointError:
        raise
    except (KeyError, IndexError, RuntimeError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint does not restore against spec "
            f"{spec.label()!r}: {exc}"
        ) from exc
    return runner


class CheckpointWriter:
    """Engine observer that writes a checkpoint every N fired events.

    Registered via ``engine.add_observer`` only when checkpointing is on,
    so a run without ``--checkpoint-dir`` executes the exact pre-feature
    event loop.  Snapshots are taken *after* an event's action returns,
    so the stored ``fired`` count includes the event that triggered the
    write, and observers never fire events or advance the clock — a
    checkpointed run stays byte-identical to an unobserved one.
    """

    def __init__(
        self,
        runner: SimulationRunner,
        directory: str,
        every_events: int,
        spec: Optional["RunSpec"] = None,
    ) -> None:
        if every_events < 1:
            raise ValueError(
                f"checkpoint interval must be >= 1 event: {every_events}"
            )
        self._runner = runner
        self._directory = directory
        self._every = every_events
        self._spec = spec
        self.checkpoints_written = 0
        self.last_path: Optional[str] = None

    def __call__(self, event: Event) -> None:
        if self._runner.engine.fired % self._every == 0:
            self.write_now()

    def write_now(self) -> str:
        """Snapshot the run and write it atomically; returns the path."""
        path = checkpoint_path(self._directory, self._runner.engine.fired)
        write_checkpoint(path, snapshot_run(self._runner, self._spec))
        self.checkpoints_written += 1
        self.last_path = path
        return path


def execute_with_checkpoints(
    spec: "RunSpec",
    *,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every_events: Optional[int] = None,
    restore_from: Optional[str] = None,
) -> RunResult:
    """Run ``spec`` to completion, checkpointing and/or resuming.

    ``restore_from`` resumes from that checkpoint file (raising
    :class:`CheckpointError` if it is damaged or does not match the
    spec); otherwise the run starts from scratch.  With a directory and
    interval, a :class:`CheckpointWriter` rides along.  With neither,
    this is exactly ``spec.execute()``.
    """
    if restore_from is not None:
        runner = restore_run(spec, read_checkpoint(restore_from))
    else:
        runner = build_runner(spec)
    if checkpoint_dir is not None and checkpoint_every_events:
        writer = CheckpointWriter(
            runner, checkpoint_dir, checkpoint_every_events, spec=spec
        )
        runner.engine.add_observer(writer)
    return runner.run(until=spec.resolved_scenario().horizon_s)
