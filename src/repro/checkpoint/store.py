"""On-disk checkpoint files: versioned, integrity-checked, atomic.

A checkpoint is a single JSON document::

    {"version": 1, "sha256": "<hex digest>", "state": {...}}

where the digest covers the *canonical* encoding of the state subtree
(sorted keys, no whitespace), so any torn write, truncation, or bit flip
fails :func:`read_checkpoint` loudly instead of resuming a simulation
from silently-corrupted state.

Writes are crash-safe: the document lands in a temp file that is fsynced,
atomically renamed over the target, and the directory entry fsynced — a
reader never observes a half-written checkpoint, and a crash mid-write
leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, Optional

from repro.checkpoint.errors import CheckpointError

#: Bumped whenever the snapshot state shape changes; a mismatch refuses
#: the restore rather than mis-reading old state into new code.
#: v2: runner records carry ``completion_time`` (lazy timers) and the
#: activity-indexed monitor state (active set, last tick, observability).
CHECKPOINT_SCHEMA_VERSION = 2

#: Checkpoint files are named by the event count at which they were taken,
#: zero-padded so lexicographic order is numeric order.
_CHECKPOINT_FILE_RE = re.compile(r"^ckpt-(\d{12})\.json$")


def checkpoint_path(directory: str, events_fired: int) -> str:
    """The canonical file path for a checkpoint taken at ``events_fired``."""
    return os.path.join(directory, f"ckpt-{events_fired:012d}.json")


def _canonical_state_json(state: Dict[str, Any]) -> str:
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def write_checkpoint(path: str, state: Dict[str, Any]) -> None:
    """Atomically write ``state`` (with version and integrity digest)."""
    canonical = _canonical_state_json(state)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    document = (
        f'{{"version": {CHECKPOINT_SCHEMA_VERSION}, '
        f'"sha256": "{digest}", "state": {canonical}}}'
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(document)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_checkpoint(path: str) -> Dict[str, Any]:
    """Load and verify a checkpoint; returns its state subtree.

    Raises:
        CheckpointError: unreadable file, malformed JSON, missing fields,
            schema-version mismatch, or integrity-digest mismatch.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise CheckpointError(
            f"checkpoint {path} is not a JSON object "
            f"(got {type(document).__name__})"
        )
    version = document.get("version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version {version!r}; "
            f"this build reads version {CHECKPOINT_SCHEMA_VERSION}"
        )
    if "sha256" not in document or "state" not in document:
        raise CheckpointError(
            f"checkpoint {path} is missing its sha256 or state field"
        )
    state = document["state"]
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint {path} state is not a JSON object"
        )
    digest = hashlib.sha256(
        _canonical_state_json(state).encode("utf-8")
    ).hexdigest()
    if digest != document["sha256"]:
        raise CheckpointError(
            f"checkpoint {path} failed its integrity check "
            f"(expected sha256 {document['sha256']}, computed {digest})"
        )
    return state


def latest_checkpoint(directory: str) -> Optional[str]:
    """The newest (highest event count) checkpoint in ``directory``.

    Returns None for a missing or empty directory; non-checkpoint files
    (including leftover ``.tmp`` files) are ignored.
    """
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    best: Optional[str] = None
    for name in names:
        if _CHECKPOINT_FILE_RE.match(name) and (best is None or name > best):
            best = name
    if best is None:
        return None
    return os.path.join(directory, best)
