"""The simulation driver.

:class:`SimulationRunner` executes a job trace under a scheduling policy on
a simulated cluster:

* arrivals and completions are discrete events;
* every running DNN training job carries (work_done, speed); *any* change
  of conditions on its nodes — a CPU job starting or finishing, a throttle,
  a core retune, a new co-located trainer — re-prices its speed from the
  performance model and reschedules its completion event.  This
  progress-based execution is what lets contention and adaptive allocation
  show up in end-to-end latencies;
* the runner implements :class:`~repro.schedulers.base.SchedulerContext`,
  the runtime-control surface CODA's allocator and eliminator act through.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro import profiling
from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.health.config import HealthConfig
from repro.health.tracker import NodeHealthTracker
from repro.metrics.collector import MetricsCollector
from repro.perfmodel.bandwidth import memory_bandwidth_demand
from repro.perfmodel.catalog import ModelProfile, get_model
from repro.perfmodel.contention import (
    BANDWIDTH_PRESSURE_THRESHOLD,
    ContentionState,
    effect_key,
)
from repro.perfmodel.pcie import pcie_peak_demand
from repro.perfmodel.speed import iteration_time
from repro.schedulers.base import (
    Decision,
    PreemptDecision,
    Scheduler,
    SchedulerContext,
    StartDecision,
)
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, EventPriority
from repro.experiments.auditlog import AuditLog
from repro.workload.job import CpuJob, GpuJob, Job, JobKind
from repro.workload.tracegen import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.invariants import InvariantAuditor
    from repro.faults.injector import FaultInjector

#: LLC footprint a training job's CPU-side workers occupy (MB per node).
GPU_JOB_LLC_MB = 2.0

#: Fraction of an ordinary (non-HEAT) CPU job's work that stalls on memory
#: bandwidth; the rest is compute and ignores throttling.
ORDINARY_CPU_BW_BOUND = 0.15

#: Default cluster-state sampling cadence (the paper samples utilization
#: continuously; five minutes keeps week-long runs cheap and smooth).
DEFAULT_SAMPLE_INTERVAL_S = 300.0


@dataclass
class _RunningGpu:
    job: GpuJob
    profile: ModelProfile
    cores_per_node: int
    work_done: float
    speed: float
    utilization: float
    last_update: float
    completion: EventHandle
    #: Authoritative completion time.  The armed heap event may lag behind
    #: (fire earlier) when repricing moved the completion later: the stale
    #: fire detects ``completion_time > now`` and re-arms (validate-on-pop,
    #: the ShareHeap idiom).  Invariant: armed time <= completion_time.
    completion_time: float = 0.0
    #: Contention-epoch fingerprint of the last full reprice — matching
    #: epochs prove nothing feeding ``iteration_time`` changed, so speed
    #: and utilization can be reused verbatim ([[cache]] contract in
    #: contracts.toml; bit-identical because iteration_time is pure).
    reprice_memo: Optional[Tuple[Any, ...]] = None
    #: (cores_per_node, contention effect key) of the last
    #: ``iteration_time`` call — the fallback memo when epochs moved but
    #: the values the speed model actually reads (grant ratio, post-knee
    #: bandwidth/LLC excess, PCIe ratio — see ``contention.effect_key``)
    #: landed unchanged ([[cache]] contract).
    state_memo: Optional[Tuple[Any, ...]] = None
    #: The job's allocation, interconnect, and participating Node objects,
    #: all fixed for the record's lifetime (a restarted job gets a fresh
    #: record); cached to keep per-reprice dict lookups off the hot path.
    allocation: Optional[Allocation] = None
    interconnect: Any = None
    nodes: Optional[List[Any]] = None


@dataclass
class _RunningCpu:
    job: CpuJob
    node_id: int
    cores: int
    work_done: float
    speed: float
    last_update: float
    completion: EventHandle
    #: Fault-injected slowdown (1.0 = healthy); multiplies the speed.
    straggle_factor: float = 1.0
    #: See _RunningGpu.completion_time.
    completion_time: float = 0.0
    #: (cores, straggle_factor, bandwidth epoch) of the last reprice —
    #: the three inputs the CPU speed model reads ([[cache]] contract).
    reprice_memo: Optional[Tuple[Any, ...]] = None
    #: The home Node object, fixed for the record's lifetime; pinned so
    #: repricing skips the per-call cluster lookup.
    node: Any = None


@dataclass
class RunResult:
    """What a completed run hands to the figures layer."""

    scheduler_name: str
    collector: MetricsCollector
    horizon_s: float
    finished_gpu_jobs: int = 0
    finished_cpu_jobs: int = 0
    preemptions: int = 0
    events_fired: int = 0
    #: Jobs killed and re-queued by infrastructure failures.
    restarts: int = 0
    #: Total node downtime over the horizon (still-open outages included).
    node_downtime_s: float = 0.0
    #: Quarantine windows entered by the node-health tracker.
    quarantines: int = 0
    #: Node-seconds spent quarantined through the horizon.
    quarantine_s: float = 0.0
    #: Jobs retired to the dead-job ledger (restart budget exhausted).
    dead_jobs: int = 0
    #: Eliminator actions suppressed by the flap cooldown (CODA only;
    #: zero for schedulers without an eliminator).
    flap_suppressions: int = 0
    #: Lazy completion timers that fired before their job's authoritative
    #: completion time and were re-armed (zero under
    #: ``REPRO_EAGER_RESCHEDULE=1``).  ``events_fired`` minus this count
    #: is comparable across the lazy and eager timer engines.
    stale_timer_fires: int = 0


def _env_auditor() -> Optional["InvariantAuditor"]:
    """A strict invariant auditor when ``REPRO_AUDIT`` is set.

    Lets CI (and any local run) execute the whole test suite with every
    simulation audited — ``REPRO_AUDIT=1 python -m pytest`` — without
    threading an argument through every call site.
    """
    if not os.environ.get("REPRO_AUDIT"):
        return None
    from repro.analysis.invariants import InvariantAuditor

    return InvariantAuditor(strict=True)


class SimulationRunner(SchedulerContext):
    """Drives one (trace, scheduler, cluster) simulation."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        trace: Optional[Trace] = None,
        *,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        engine: Optional[Engine] = None,
        collector: Optional[MetricsCollector] = None,
        audit: Optional["AuditLog"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        auditor: Optional["InvariantAuditor"] = None,
        health_config: Optional[HealthConfig] = None,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError(f"non-positive sample interval: {sample_interval_s}")
        self.cluster = cluster
        if health_config is not None:
            cluster.health = NodeHealthTracker(health_config)
        self.health = cluster.health
        self.scheduler = scheduler
        self.engine = engine or Engine()
        self.collector = collector or MetricsCollector()
        self.audit = audit
        self.fault_injector = fault_injector
        self.auditor = auditor if auditor is not None else _env_auditor()
        self._sample_interval_s = sample_interval_s
        self._running_gpu: Dict[str, _RunningGpu] = {}
        self._running_cpu: Dict[str, _RunningCpu] = {}
        self._stashed_progress: Dict[str, float] = {}
        self._pass_pending = False
        self._preemptions = 0
        self._sampling = False
        #: Per-job start counter distinguishing incarnations of a restarted
        #: CPU job, so straggler-heal timers (whose tags carry the
        #: incarnation) never touch a successor of the record they slowed.
        self._cpu_incarnation: Dict[str, int] = {}
        self._straggle_count = 0
        #: Escape hatch: re-price and cancel+reschedule completions on
        #: every node touch and tick every node, the pre-lazy reference
        #: behaviour.  Read once at construction (parity tests flip the
        #: env var per runner, never mid-run).
        self._eager_resched = bool(os.environ.get("REPRO_EAGER_RESCHEDULE"))
        self._stale_timer_fires = 0
        #: Nodes the eliminator must tick: hosts of CPU jobs or live
        #: throttles, plus telemetry-outage nodes until a successful
        #: observe clears them.  See the "Activity-indexed monitoring"
        #: section for the skip-soundness invariant.
        self._monitor_active: Set[int] = set()
        self._monitor_last_tick: Optional[float] = None
        #: When each node last became observable (up, unquarantined);
        #: +inf while it is not.  Missing means observable since t=0.
        self._observable_since: Dict[int, float] = {}
        active_profiler = profiling.active()
        if active_profiler is not None:
            self.engine.set_profiler(active_profiler)
        scheduler.attach(self)
        if fault_injector is not None:
            fault_injector.attach(self)
        if self.auditor is not None:
            self.auditor.attach(self)
        if trace is not None:
            self.load_trace(trace)

    # ------------------------------------------------------------------ #
    # Setup

    def load_trace(self, trace: Trace) -> None:
        """Schedule every trace job's arrival event."""
        for job in trace.jobs:
            self.submit_at(job.submit_time, job)

    def submit_at(self, when: float, job: Job) -> None:
        self.engine.schedule(
            when,
            lambda job=job: self._on_arrival(job),
            priority=EventPriority.ARRIVAL,
            tag=f"arrival:{job.job_id}",
        )

    def enable_sampling(self) -> None:
        """Start the periodic cluster-state sampler (idempotent)."""
        if self._sampling:
            return
        self._sampling = True
        self.engine.schedule(
            self.engine.now,
            self._on_sample,
            priority=EventPriority.MONITOR,
            tag="sample",
        )

    def run(self, until: float) -> RunResult:
        """Run the simulation to the ``until`` horizon (seconds)."""
        self.enable_sampling()
        self.engine.run(until=until)
        if self.auditor is not None:
            self.auditor.check_now()
        return RunResult(
            scheduler_name=self.scheduler.name,
            collector=self.collector,
            horizon_s=until,
            finished_gpu_jobs=len(self.collector.finished_records(JobKind.GPU)),
            finished_cpu_jobs=len(self.collector.finished_records(JobKind.CPU)),
            preemptions=self._preemptions,
            events_fired=self.engine.fired,
            restarts=self.collector.faults.restarts,
            node_downtime_s=self.collector.faults.downtime_through(
                self.engine.now
            ),
            quarantines=self.collector.faults.quarantines,
            quarantine_s=self.health.total_quarantine_s(self.engine.now),
            dead_jobs=len(self.scheduler.dead_jobs),
            flap_suppressions=getattr(
                getattr(self.scheduler, "eliminator", None),
                "flap_suppressions",
                0,
            ),
            stale_timer_fires=self._stale_timer_fires,
        )

    def _audit(self, event: str, job: Job, **detail: object) -> None:
        if self.audit is None:
            return
        self.audit.record(
            self.engine.now,
            event,
            job.job_id,
            job.tenant_id,
            job.kind.value,
            **detail,
        )

    # ------------------------------------------------------------------ #
    # SchedulerContext (the surface CODA acts through)

    @property
    def now(self) -> float:
        return self.engine.now

    def schedule_event(
        self, delay_s: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        return self.engine.schedule_in(
            delay_s, action, priority=EventPriority.MONITOR, tag=tag
        )

    def resize_gpu_job_cores(self, job_id: str, cpus_per_node: int) -> bool:
        record = self._running_gpu.get(job_id)
        if record is None:
            return False
        if cpus_per_node < 1:
            raise ValueError(f"{job_id}: need at least one core per node")
        allocation = self.cluster.allocation_of(job_id)
        for share in allocation.shares:
            node = self.cluster.node(share.node_id)
            if cpus_per_node - share.cpus > node.free_cpus:
                return False
        self.cluster.resize_cpus(
            job_id, {share.node_id: cpus_per_node for share in allocation.shares}
        )
        record.cores_per_node = cpus_per_node
        self.collector.job_resized(job_id, cpus_per_node)
        self._audit("resized", record.job, cores_per_node=cpus_per_node)
        demand = memory_bandwidth_demand(
            record.profile, record.job.setup, cpus_per_node
        )
        touched: Set[int] = set()
        for share in allocation.shares:
            self.cluster.node(share.node_id).bandwidth.update_demand(
                job_id, demand
            )
            touched.add(share.node_id)
        self._refresh_nodes(touched)
        return True

    def gpu_job_utilization(self, job_id: str) -> float:
        record = self._running_gpu.get(job_id)
        if record is None:
            raise KeyError(f"job {job_id} is not a running GPU job")
        return record.utilization

    def gpu_job_expected_utilization(self, job_id: str) -> float:
        record = self._running_gpu.get(job_id)
        if record is None:
            raise KeyError(f"job {job_id} is not a running GPU job")
        allocation = self.cluster.allocation_of(job_id)
        quiet = iteration_time(
            record.profile,
            record.job.setup,
            record.cores_per_node,
            interconnect=self.cluster.fabric.for_nodes(allocation.node_ids),
        )
        return quiet.utilization

    def throttle_cpu_job(self, job_id: str, node_id: int) -> bool:
        node = self.cluster.node(node_id)
        if not node.mba.supported:
            return False
        node.mba.throttle_down(job_id)
        self.collector.throttle_events += 1
        record = self._running_cpu.get(job_id)
        if record is not None:
            self._audit(
                "throttled",
                record.job,
                node_id=node_id,
                level=node.mba.throttle_level(job_id),
            )
        self._refresh_nodes({node_id})
        return True

    def release_cpu_throttle(self, job_id: str, node_id: int) -> None:
        node = self.cluster.node(node_id)
        node.mba.release(job_id)
        self._refresh_nodes({node_id})

    def halve_cpu_job_cores(self, job_id: str) -> None:
        record = self._running_cpu.get(job_id)
        if record is None:
            raise KeyError(f"job {job_id} is not a running CPU job")
        new_cores = max(1, record.cores // 2)
        if new_cores == record.cores:
            return
        node = self.cluster.node(record.node_id)
        self.cluster.resize_cpus(job_id, {record.node_id: new_cores})
        scale = new_cores / record.cores
        record.cores = new_cores
        usage = node.bandwidth.usage_of(job_id)
        node.bandwidth.update_demand(job_id, usage.demand * scale)
        self.collector.core_halving_events += 1
        self.scheduler.cpu_job_resized(job_id, new_cores, self.engine.now)
        self._audit("halved", record.job, cores=new_cores)
        self._refresh_nodes({record.node_id})
        self.request_schedule()

    def preempt_job(
        self, job_id: str, *, preserve_progress: bool, reason: str
    ) -> None:
        self._execute_preempt(
            PreemptDecision(
                job_id=job_id, reason=reason, preserve_progress=preserve_progress
            )
        )
        self.request_schedule()

    # ------------------------------------------------------------------ #
    # Activity-indexed monitoring (the eliminator's tick surface)
    #
    # The eliminator's per-node work is a no-op unless the node hosts CPU
    # jobs or live throttles, so its tick iterates an incrementally
    # maintained active set instead of the whole cluster.  Skip-soundness
    # invariant: a node outside the set was up, unquarantined,
    # telemetry-up and CPU-idle at every tick it was skipped for —
    # membership is granted *before* any of those can stop holding (a CPU
    # job starts, a telemetry outage begins) and only revoked by the
    # eliminator itself right after a successful observe found nothing to
    # do.  The only eager-tick state a skipped node would have gained is
    # its MBM sample timestamp, which :meth:`_monitor_backfill`
    # reconstructs whenever the invariant is about to stop holding.

    def monitor_active_node_ids(self) -> Sequence[int]:
        if self._eager_resched:
            return range(len(self.cluster.nodes))
        return sorted(self._monitor_active)

    def monitor_deactivate_node(self, node_id: int) -> None:
        if not self._eager_resched:
            self._monitor_active.discard(node_id)

    def monitor_note_tick(self, now: float) -> None:
        self._monitor_last_tick = now

    def _monitor_backfill(self, node_id: int) -> None:
        """Reconstruct the MBM sample stamp eager ticks would have left.

        While a node sits outside the active set it is provably
        telemetry-up at every skipped tick, so an eager monitor would
        have refreshed its sample time each tick; adopt the last tick
        time before the skip invariant stops holding.  ``_observable_since``
        is +inf while the node is down or quarantined, which vetoes the
        back-fill — eager ticks skip unobservable nodes too, leaving
        their stamp frozen.
        """
        if self._eager_resched or node_id in self._monitor_active:
            return
        last_tick = self._monitor_last_tick
        if last_tick is not None and last_tick >= self._observable_since.get(
            node_id, 0.0
        ):
            self.cluster.node(node_id).bandwidth.sync_sample_time(last_tick)

    def _monitor_activate(self, node_id: int) -> None:
        """Add a node to the active set (back-filling its sample stamp)."""
        if self._eager_resched or node_id in self._monitor_active:
            return
        self._monitor_backfill(node_id)
        self._monitor_active.add(node_id)

    def _monitor_node_unobservable(self, node_id: int) -> None:
        """The node crashed or entered quarantine: freeze its stamp where
        an eager monitor would have left it and veto back-fills until it
        is observable again."""
        self._monitor_backfill(node_id)
        self._observable_since[node_id] = float("inf")

    # ------------------------------------------------------------------ #
    # Scheduling passes

    def request_schedule(self) -> None:
        """Coalesce pass requests: at most one pass per simulation instant."""
        if self._pass_pending:
            return
        self._pass_pending = True
        self.engine.schedule(
            self.engine.now,
            self._run_pass,
            priority=EventPriority.SCHEDULE,
            tag="schedule-pass",
        )

    def _run_pass(self) -> None:
        self._pass_pending = False
        if self.scheduler.can_skip_pass(self.cluster):
            # Incremental fast path: nothing relevant changed since the
            # last pass, so schedule() would provably return zero
            # decisions.  The pass *event* still fired (event counts and
            # ordering stay byte-identical); only its cost is booked
            # under a distinct profiling category.
            self.engine.recategorize_current_event("schedule-skip")
            profiling.count("schedule-skips")
            return
        decisions = self.scheduler.schedule(self.cluster, self.engine.now)
        for decision in decisions:
            self._execute(decision)

    def _execute(self, decision: Decision) -> None:
        if isinstance(decision, StartDecision):
            self._start_job(decision.job, list(decision.placements))
        elif isinstance(decision, PreemptDecision):
            self._execute_preempt(decision)
        else:
            raise TypeError(f"unknown decision type: {type(decision).__name__}")

    # ------------------------------------------------------------------ #
    # Arrivals and starts

    def _on_arrival(self, job: Job) -> None:
        now = self.engine.now
        self.collector.job_submitted(job, now)
        self._audit("submitted", job)
        self.scheduler.submit(job, now)
        self.request_schedule()

    def _start_job(
        self, job: Job, placements: Sequence[Tuple[int, int, int]]
    ) -> None:
        allocation = self.cluster.allocate(
            job.job_id, [(n, c, g) for n, c, g in placements]
        )
        now = self.engine.now
        if isinstance(job, GpuJob):
            self._start_gpu_job(job, allocation, now)
        elif isinstance(job, CpuJob):
            self._start_cpu_job(job, allocation, now)
        else:
            raise TypeError(f"unknown job type: {type(job).__name__}")
        self.scheduler.job_started(job, placements, now)

    def _start_gpu_job(
        self, job: GpuJob, allocation: Allocation, now: float
    ) -> None:
        profile = get_model(job.model_name)
        cores = allocation.shares[0].cpus
        demand = memory_bandwidth_demand(profile, job.setup, cores)
        pcie = pcie_peak_demand(profile, job.setup)
        for share in allocation.shares:
            self.cluster.node(share.node_id).register_memory_traffic(
                job.job_id,
                demand,
                is_cpu_job=False,
                llc_mb=GPU_JOB_LLC_MB,
                pcie_gbps=pcie,
            )
        work_done = self._stashed_progress.pop(job.job_id, 0.0)
        record = _RunningGpu(
            job=job,
            profile=profile,
            cores_per_node=cores,
            work_done=work_done,
            speed=0.0,
            utilization=0.0,
            last_update=now,
            completion=None,  # type: ignore[arg-type]
        )
        self._running_gpu[job.job_id] = record
        self.collector.job_started(job.job_id, now, cores)
        self._audit(
            "started",
            job,
            cores_per_node=cores,
            nodes=list(allocation.node_ids),
            model=job.model_name,
        )
        self._reprice_gpu(record)
        self._refresh_nodes(set(allocation.node_ids))

    def _start_cpu_job(
        self, job: CpuJob, allocation: Allocation, now: float
    ) -> None:
        share = allocation.shares[0]
        node = self.cluster.node(share.node_id)
        node.register_memory_traffic(
            job.job_id,
            job.bw_demand_gbps,
            is_cpu_job=True,
            is_inference=job.is_inference,
            llc_mb=job.llc_mb,
        )
        record = _RunningCpu(
            job=job,
            node_id=share.node_id,
            cores=share.cpus,
            work_done=0.0,
            speed=0.0,
            last_update=now,
            completion=None,  # type: ignore[arg-type]
        )
        self._running_cpu[job.job_id] = record
        self._monitor_activate(share.node_id)
        self._cpu_incarnation[job.job_id] = (
            self._cpu_incarnation.get(job.job_id, 0) + 1
        )
        self.collector.job_started(job.job_id, now, share.cpus)
        self._audit("started", job, cores=share.cpus, nodes=[share.node_id])
        self._reprice_cpu(record)
        self._refresh_nodes({share.node_id})

    # ------------------------------------------------------------------ #
    # Progress-based execution

    def _gpu_contention(self, job_id: str) -> ContentionState:
        """Worst-case contention across the job's nodes: iterations are
        paced by the slowest participant."""
        allocation = self.cluster.allocation_of(job_id)
        grant, pressure, llc, pcie = 1.0, 0.0, 0.0, 1.0
        for share in allocation.shares:
            node = self.cluster.node(share.node_id)
            grant = min(grant, node.bandwidth.grant_ratio(job_id))
            pressure = max(pressure, node.bandwidth.pressure)
            llc = max(llc, node.llc_pressure)
            pcie = min(pcie, node.pcie.grant_ratio())
        grant = max(grant, 1e-6)
        return ContentionState(
            bw_grant_ratio=grant,
            node_bw_pressure=pressure,
            llc_pressure=llc,
            pcie_grant_ratio=pcie,
        )

    def _accrue(
        self, record: "Union[_RunningGpu, _RunningCpu]", now: float
    ) -> None:
        span = now - record.last_update
        if span > 0:
            record.work_done += record.speed * span
        record.last_update = now

    def _reprice_gpu(self, record: _RunningGpu) -> None:
        """Re-price a training job's speed and re-aim its completion.

        Two memo layers keep repeated touches cheap without changing a
        single computed value (``iteration_time`` is a pure function of
        the fingerprinted state, so reuse is bit-identical):

        * ``reprice_memo`` — the contention epochs of every node the job
          spans.  Matching epochs prove no grant, LLC occupancy or PCIe
          demand the job can see has changed, so speed and utilization
          are reused verbatim; within the same event instant the armed
          completion target is provably unchanged too and the call
          returns outright.
        * ``state_memo`` — epochs moved but the derived
          :class:`ContentionState` landed on the same value, so the
          ``iteration_time`` call (and the idempotent utilization
          re-writes) are skipped.
        """
        now = self.engine.now
        job_id = record.job.job_id
        allocation = record.allocation
        if allocation is None:
            # First reprice of this record (fresh start or checkpoint
            # restore): pin the allocation, its interconnect, and the
            # participating Node objects, all fixed for the record's
            # lifetime.
            allocation = record.allocation = self.cluster.allocation_of(job_id)
            record.interconnect = self.cluster.fabric.for_nodes(
                allocation.node_ids
            )
            record.nodes = [
                self.cluster.node(share.node_id)
                for share in allocation.shares
            ]
        nodes = record.nodes
        eager = self._eager_resched
        fingerprint: Optional[Tuple[Any, ...]] = None
        if not eager:
            parts: List[Any] = [record.cores_per_node]
            for node in nodes:
                parts.append(node.bandwidth.epoch)
                parts.append(node.contention_epoch)
            fingerprint = tuple(parts)
            if fingerprint == record.reprice_memo:
                if record.last_update == now and record.completion is not None:
                    return  # same instant, same epochs: armed target holds
                self._accrue(record, now)
                self._aim_gpu_completion(record, now)
                return
        self._accrue(record, now)
        # Worst-case contention across the job's nodes (iterations are
        # paced by the slowest participant), inlined over the pinned
        # Node list.
        grant, pressure, llc, pcie = 1.0, 0.0, 0.0, 1.0
        for node in nodes:
            bandwidth = node.bandwidth
            grant = min(grant, bandwidth.grant_ratio(job_id))
            pressure = max(pressure, bandwidth.pressure)
            llc = max(llc, node.llc_pressure)
            pcie = min(pcie, node.pcie.grant_ratio())
        contention = ContentionState(
            bw_grant_ratio=max(grant, 1e-6),
            node_bw_pressure=pressure,
            llc_pressure=llc,
            pcie_grant_ratio=pcie,
        )
        state_key = (record.cores_per_node,) + effect_key(contention)
        if eager or state_key != record.state_memo:
            breakdown = iteration_time(
                record.profile,
                record.job.setup,
                record.cores_per_node,
                contention,
                interconnect=record.interconnect,
            )
            record.speed = 1.0 / breakdown.total_s
            record.utilization = breakdown.utilization
            for node in nodes:
                node.set_gpu_utilization(job_id, record.utilization)
            record.state_memo = state_key
        record.reprice_memo = fingerprint
        self._aim_gpu_completion(record, now)

    def _aim_gpu_completion(self, record: _RunningGpu, now: float) -> None:
        job_id = record.job.job_id
        remaining = record.job.total_iterations - record.work_done
        target = now + max(0.0, remaining / record.speed)
        record.completion_time = target
        completion = record.completion
        if completion is not None:
            if not self._eager_resched and target >= completion.time:
                # Completion moved later (or held): leave the armed timer
                # alone.  It fires stale, detects that completion_time is
                # still ahead, and re-arms itself (validate-on-pop) —
                # cheaper than a cancel+push on every node touch.
                return
            completion.cancel()
        record.completion = self.engine.schedule(
            target,
            lambda job_id=job_id: self._on_gpu_complete(job_id),
            priority=EventPriority.COMPLETION,
            tag=f"gpu-done:{job_id}",
        )

    def _reprice_cpu(self, record: _RunningCpu) -> None:
        now = self.engine.now
        node = record.node
        if node is None:
            # First reprice of this record (fresh start or checkpoint
            # restore): pin the home node, fixed for its lifetime.
            node = record.node = self.cluster.node(record.node_id)
        eager = self._eager_resched
        fingerprint: Optional[Tuple[Any, ...]] = None
        if not eager:
            # Everything the speed model reads: core count, fault factor,
            # and the bandwidth grant (covered by the monitor epoch).
            fingerprint = (
                record.cores,
                record.straggle_factor,
                node.bandwidth.epoch,
            )
            if fingerprint == record.reprice_memo:
                if record.last_update == now and record.completion is not None:
                    return
                self._accrue(record, now)
                self._aim_cpu_completion(record, now)
                return
        self._accrue(record, now)
        core_factor = record.cores / record.job.cores
        # HEAT-like jobs are pure bandwidth streamers and slow in direct
        # proportion to their grant; ordinary CPU jobs are mostly
        # compute-bound and only a small fraction of their work stalls.
        grant = node.bandwidth.grant_ratio(record.job.job_id)
        if record.job.is_heat:
            bw_factor = grant
        else:
            bw_factor = (1.0 - ORDINARY_CPU_BW_BOUND) + ORDINARY_CPU_BW_BOUND * grant
        record.speed = max(
            1e-9, core_factor * bw_factor * record.straggle_factor
        )
        record.reprice_memo = fingerprint
        self._aim_cpu_completion(record, now)

    def _aim_cpu_completion(self, record: _RunningCpu, now: float) -> None:
        job_id = record.job.job_id
        remaining = record.job.duration_s - record.work_done
        target = now + max(0.0, remaining / record.speed)
        record.completion_time = target
        completion = record.completion
        if completion is not None:
            if not self._eager_resched and target >= completion.time:
                return  # later-moving completion: fire stale, re-arm then
            completion.cancel()
        record.completion = self.engine.schedule(
            target,
            lambda job_id=job_id: self._on_cpu_complete(job_id),
            priority=EventPriority.COMPLETION,
            tag=f"cpu-done:{job_id}",
        )

    def _refresh_nodes(self, node_ids: Set[int]) -> None:
        """Re-price every job touching the given nodes.

        Job ids land in lists (the ``seen`` set only guards against a
        multi-node gang appearing under several of its nodes; CPU jobs
        are single-node) and each list is sorted once — repricing keeps
        the sorted-job-id order the decision stream depends on without
        the build-a-set-then-``sorted()`` double sort this loop used to
        pay on every event.
        """
        gpu_ids: List[str] = []
        cpu_ids: List[str] = []
        seen: Set[str] = set()
        running_gpu = self._running_gpu
        running_cpu = self._running_cpu
        for node_id in sorted(node_ids):
            for job_id in self.cluster.node(node_id).jobs_here():
                if job_id in running_gpu:
                    if job_id not in seen:
                        seen.add(job_id)
                        gpu_ids.append(job_id)
                elif job_id in running_cpu:
                    cpu_ids.append(job_id)
        gpu_ids.sort()
        cpu_ids.sort()
        for job_id in gpu_ids:
            self._reprice_gpu(running_gpu[job_id])
        for job_id in cpu_ids:
            self._reprice_cpu(running_cpu[job_id])

    # ------------------------------------------------------------------ #
    # Completions and preemptions

    def _stale_completion_fire(self, record, tag_family: str, rearm) -> bool:
        """Validate-on-pop for lazy completion timers.

        Repricing that moves a completion *later* leaves the armed event
        in place (see ``_aim_*_completion``); when that event fires the
        record's authoritative ``completion_time`` is still ahead, so the
        fire is stale: re-arm at the authoritative time, count it, and
        book the (tiny) cost under the ``completion-stale`` profiler
        category so completion accounting stays honest.  Under the eager
        hatch armed time always equals ``completion_time`` and this never
        triggers.
        """
        job_id = record.job.job_id
        if record.completion_time <= self.engine.now:
            return False
        record.completion = self.engine.schedule(
            record.completion_time,
            rearm,
            priority=EventPriority.COMPLETION,
            tag=f"{tag_family}:{job_id}",
        )
        self._stale_timer_fires += 1
        self.engine.recategorize_current_event("completion-stale")
        profiling.count("completion-stale")
        return True

    def _on_gpu_complete(self, job_id: str) -> None:
        record = self._running_gpu[job_id]
        if self._stale_completion_fire(
            record,
            "gpu-done",
            lambda job_id=job_id: self._on_gpu_complete(job_id),
        ):
            return
        del self._running_gpu[job_id]
        now = self.engine.now
        allocation = self.cluster.release(job_id)
        self.collector.job_finished(job_id, now)
        self._audit(
            "finished",
            record.job,
            cores_per_node=record.cores_per_node,
            queueing_s=self.collector.records[job_id].queueing_time,
        )
        self.scheduler.job_finished(record.job, now)
        self._refresh_nodes(set(allocation.node_ids))
        self.request_schedule()

    def _on_cpu_complete(self, job_id: str) -> None:
        record = self._running_cpu[job_id]
        if self._stale_completion_fire(
            record,
            "cpu-done",
            lambda job_id=job_id: self._on_cpu_complete(job_id),
        ):
            return
        del self._running_cpu[job_id]
        now = self.engine.now
        self.cluster.release(job_id)
        self.collector.job_finished(job_id, now)
        self._audit(
            "finished",
            record.job,
            cores=record.cores,
            queueing_s=self.collector.records[job_id].queueing_time,
        )
        self.scheduler.job_finished(record.job, now)
        self._refresh_nodes({record.node_id})
        self.request_schedule()

    def _execute_preempt(self, decision: PreemptDecision) -> None:
        job_id = decision.job_id
        now = self.engine.now
        if job_id in self._running_gpu:
            gpu_record = self._running_gpu.pop(job_id)
            self._accrue(gpu_record, now)
            gpu_record.completion.cancel()
            if decision.preserve_progress:
                self._stashed_progress[job_id] = gpu_record.work_done
            allocation = self.cluster.release(job_id)
            touched = set(allocation.node_ids)
            job: Job = gpu_record.job
            preserve = decision.preserve_progress
        elif job_id in self._running_cpu:
            cpu_record = self._running_cpu.pop(job_id)
            cpu_record.completion.cancel()
            allocation = self.cluster.release(job_id)
            touched = set(allocation.node_ids)
            job = cpu_record.job
            preserve = False  # aborted CPU jobs restart from scratch
        else:
            raise RuntimeError(f"cannot preempt {job_id}: not running")
        self._preemptions += 1
        self.collector.job_preempted(job_id, now)
        self._audit(
            "preempted",
            job,
            reason=decision.reason,
            progress_preserved=preserve,
        )
        self.scheduler.job_preempted(job, now, preserve_progress=preserve)
        self._refresh_nodes(touched)

    # ------------------------------------------------------------------ #
    # Infrastructure failures (driven by a FaultInjector)

    def fail_node(self, node_id: int) -> None:
        """Crash a node: kill every resident job, then take the node out
        of the free pool until :meth:`recover_node`.

        Training jobs restart from their last checkpoint; CPU jobs restart
        from scratch.  Both re-enter their array head via the scheduler's
        ``job_failed`` hook.  A multi-node gang dies whole — iterations
        cannot proceed minus one participant — and its surviving nodes are
        freed immediately.
        """
        node = self.cluster.node(node_id)
        if not node.is_up:
            return
        for job_id in sorted(node.jobs_here()):
            self._execute_failure(job_id, reason=f"node {node_id} crashed")
        self._monitor_node_unobservable(node_id)
        node.mark_down()
        self.collector.faults.node_failures += 1
        self.collector.faults.node_down(node_id, self.engine.now)
        self._record_node_strike(node_id, kind="crash")
        self.request_schedule()

    def recover_node(self, node_id: int) -> None:
        """Return a crashed node to service; queued jobs may use it on the
        next scheduling pass."""
        node = self.cluster.node(node_id)
        if node.is_up:
            return
        now = self.engine.now
        node.mark_up()
        self.collector.faults.node_up(node_id, now)
        if node_id not in self.health.quarantined_nodes(now):
            # Observable again from this instant; a node still serving a
            # quarantine stays vetoed until _on_quarantine_end.
            self._observable_since[node_id] = now
        self.request_schedule()

    def fail_gpu(self, node_id: int, gpu_id: int) -> None:
        """Break a single GPU; its owner (if any) takes the failure path."""
        node = self.cluster.node(node_id)
        gpu = node.gpus[gpu_id]
        if gpu.failed:
            return
        owner = gpu.owner
        if owner is not None:
            self._execute_failure(
                owner, reason=f"gpu {node_id}:{gpu_id} failed"
            )
        node.fail_gpu(gpu_id)
        self.collector.faults.gpu_failures += 1
        self._record_node_strike(node_id, kind="gpu")
        self.request_schedule()

    def repair_gpu(self, node_id: int, gpu_id: int) -> None:
        self.cluster.node(node_id).repair_gpu(gpu_id)
        self.request_schedule()

    def begin_telemetry_outage(self, node_id: int, duration_s: float) -> None:
        """Blind a node's MBM for ``duration_s``; the eliminator's
        staleness window decides when that blindness becomes distrust."""
        self._monitor_activate(node_id)
        self.cluster.node(node_id).bandwidth.begin_outage(
            self.engine.now + duration_s
        )
        self.collector.faults.telemetry_dropouts += 1
        self._record_node_strike(node_id, kind="telemetry")

    def running_cpu_job_ids(self) -> List[str]:
        return list(self._running_cpu)

    def apply_cpu_straggler(
        self, job_id: str, *, factor: float, duration_s: float
    ) -> None:
        """Slow a running CPU job to ``factor`` of its speed for a while."""
        record = self._running_cpu.get(job_id)
        if record is None:
            return
        record.straggle_factor = factor
        self.collector.faults.stragglers += 1
        self._audit("straggler", record.job, factor=factor)
        self._reprice_cpu(record)
        # The tag carries the incarnation (for the heal check) and a
        # global straggle counter (for uniqueness when the same job is
        # straggled twice), so a checkpoint restore can rebuild this
        # closure from the live-event inventory alone.
        self._straggle_count += 1
        incarnation = self._cpu_incarnation[job_id]
        self.engine.schedule_in(
            duration_s,
            lambda job_id=job_id, incarnation=incarnation: self._end_straggler(
                job_id, incarnation
            ),
            priority=EventPriority.MONITOR,
            tag=f"straggler-end:{job_id}:{incarnation}:{self._straggle_count}",
        )

    def _end_straggler(self, job_id: str, incarnation: int) -> None:
        # Only heal the same incarnation: if the job finished or restarted
        # meanwhile, the stale timer must not touch the new record.
        record = self._running_cpu.get(job_id)
        if record is None or self._cpu_incarnation.get(job_id) != incarnation:
            return
        record.straggle_factor = 1.0
        self._reprice_cpu(record)

    def _record_node_strike(self, node_id: int, *, kind: str) -> None:
        """Charge one failure strike against a node's health record.

        When the strike tips the node into quarantine: evict any resident
        jobs with progress preserved (their software is fine; their
        neighbourhood is not), count the quarantine, and schedule a
        scheduling pass at readmission time so queued work re-discovers
        the node the moment it leaves quarantine.
        """
        now = self.engine.now
        if not self.health.record_failure(node_id, now, kind=kind):
            return
        self.collector.faults.quarantines += 1
        self._monitor_node_unobservable(node_id)
        node = self.cluster.node(node_id)
        if node.is_up:
            for job_id in sorted(node.jobs_here()):
                self._execute_preempt(
                    PreemptDecision(
                        job_id=job_id,
                        reason=f"node {node_id} quarantined",
                        preserve_progress=True,
                    )
                )
        self.engine.schedule(
            self.health.quarantine_until(node_id),
            lambda node_id=node_id: self._on_quarantine_end(node_id),
            priority=EventPriority.MONITOR,
            tag=f"quarantine-end:{node_id}",
        )
        self.request_schedule()

    def _on_quarantine_end(self, node_id: int) -> None:
        """A quarantine expired (the node is on probation now); let the
        scheduler re-discover its capacity.

        The health tracker's lazy QUARANTINED->PROBATION transition is a
        pure function of time, so no node mutator runs here — record the
        capacity return explicitly or the incremental pass gates would
        never see it."""
        self.cluster.note_capacity_freed(node_id)
        if self.cluster.node(node_id).is_up:
            # Observable again (a node that also crashed stays vetoed
            # until recover_node readmits it).
            self._observable_since[node_id] = self.engine.now
        self.request_schedule()

    def _execute_failure(self, job_id: str, *, reason: str) -> None:
        """Kill one running job because its hardware failed."""
        now = self.engine.now
        if job_id in self._running_gpu:
            gpu_record = self._running_gpu.pop(job_id)
            self._accrue(gpu_record, now)
            gpu_record.completion.cancel()
            checkpoint = gpu_record.job.checkpointed_iterations(
                gpu_record.work_done
            )
            self.collector.faults.lost_gpu_iterations += max(
                0.0, gpu_record.work_done - checkpoint
            )
            if checkpoint > 0:
                self._stashed_progress[job_id] = checkpoint
            else:
                self._stashed_progress.pop(job_id, None)
            allocation = self.cluster.release(job_id)
            touched = set(allocation.node_ids)
            job: Job = gpu_record.job
        elif job_id in self._running_cpu:
            cpu_record = self._running_cpu.pop(job_id)
            self._accrue(cpu_record, now)
            cpu_record.completion.cancel()
            self.collector.faults.lost_cpu_seconds += cpu_record.work_done
            allocation = self.cluster.release(job_id)
            touched = set(allocation.node_ids)
            job = cpu_record.job
        else:
            return  # already gone (e.g., completed at this same instant)
        self.collector.faults.restarts += 1
        self.collector.job_failed(job_id, now)
        self._audit("failed", job, reason=reason)
        self.scheduler.job_failed(job, now)
        self._refresh_nodes(touched)

    # ------------------------------------------------------------------ #
    # Sampling

    def _on_sample(self) -> None:
        pending = self.scheduler.pending_jobs()
        gpu_depth = sum(1 for job in pending if job.kind is JobKind.GPU)
        cpu_depth = len(pending) - gpu_depth
        total_gpus = self.cluster.total.gpus
        free_fraction = (
            (total_gpus - self.cluster.gpu_active_count()) / total_gpus
            if total_gpus
            else 0.0
        )
        hot_nodes = sum(
            1
            for node in self.cluster.nodes
            if node.used_gpus > 0
            and node.bandwidth.pressure >= BANDWIDTH_PRESSURE_THRESHOLD
        )
        self.collector.sample_cluster(
            self.engine.now,
            gpu_active_rate=self.cluster.gpu_active_rate(),
            gpu_utilization=self.cluster.mean_gpu_utilization(active_only=True),
            gpu_utilization_overall=self.cluster.mean_gpu_utilization(
                active_only=False
            ),
            cpu_active_rate=self.cluster.cpu_active_rate(),
            gpu_queue_depth=gpu_depth,
            cpu_queue_depth=cpu_depth,
            free_gpu_fraction=free_fraction,
            hot_nodes=hot_nodes,
        )
        self.engine.schedule_in(
            self._sample_interval_s,
            self._on_sample,
            priority=EventPriority.MONITOR,
            tag="sample",
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable runner-core state (running jobs, pass flags).

        Model profiles are re-derived from the catalog and completion
        handles are reconnected by :meth:`rearm`, so neither serializes.
        """
        return {
            "running_gpu": {
                job_id: [
                    r.cores_per_node,
                    r.work_done,
                    r.speed,
                    r.utilization,
                    r.last_update,
                    r.completion_time,
                ]
                for job_id, r in self._running_gpu.items()
            },
            "running_cpu": {
                job_id: [
                    r.node_id,
                    r.cores,
                    r.work_done,
                    r.speed,
                    r.last_update,
                    r.straggle_factor,
                    r.completion_time,
                ]
                for job_id, r in self._running_cpu.items()
            },
            "stashed_progress": dict(self._stashed_progress),
            "pass_pending": self._pass_pending,
            "preemptions": self._preemptions,
            "sampling": self._sampling,
            "cpu_incarnation": dict(self._cpu_incarnation),
            "straggle_count": self._straggle_count,
            "stale_timer_fires": self._stale_timer_fires,
            "monitor_active": sorted(self._monitor_active),
            "monitor_last_tick": self._monitor_last_tick,
            # +inf is not valid JSON; carry the unobservable veto as null.
            "observable_since": [
                [node_id, None if since == float("inf") else since]
                for node_id, since in sorted(self._observable_since.items())
            ],
        }

    def restore(self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]) -> None:
        self._running_gpu = {}
        for job_id, fields in state["running_gpu"].items():
            (
                cores,
                work_done,
                speed,
                utilization,
                last_update,
                completion_time,
            ) = fields
            job = jobs_by_id[job_id]
            assert isinstance(job, GpuJob)
            # Memos start cold: the first reprice recomputes everything
            # from restored cluster state, which is bit-identical because
            # iteration_time is pure.
            self._running_gpu[job_id] = _RunningGpu(
                job=job,
                profile=get_model(job.model_name),
                cores_per_node=int(cores),
                work_done=float(work_done),
                speed=float(speed),
                utilization=float(utilization),
                last_update=float(last_update),
                completion=None,  # type: ignore[arg-type]
                completion_time=float(completion_time),
            )
        self._running_cpu = {}
        for job_id, fields in state["running_cpu"].items():
            (
                node_id,
                cores,
                work_done,
                speed,
                last_update,
                straggle,
                completion_time,
            ) = fields
            job = jobs_by_id[job_id]
            assert isinstance(job, CpuJob)
            self._running_cpu[job_id] = _RunningCpu(
                job=job,
                node_id=int(node_id),
                cores=int(cores),
                work_done=float(work_done),
                speed=float(speed),
                last_update=float(last_update),
                completion=None,  # type: ignore[arg-type]
                straggle_factor=float(straggle),
                completion_time=float(completion_time),
            )
        self._stashed_progress = {
            job_id: float(progress)
            for job_id, progress in state["stashed_progress"].items()
        }
        self._pass_pending = bool(state["pass_pending"])
        self._preemptions = int(state["preemptions"])
        self._sampling = bool(state["sampling"])
        self._cpu_incarnation = {
            job_id: int(count)
            for job_id, count in state["cpu_incarnation"].items()
        }
        self._straggle_count = int(state["straggle_count"])
        self._stale_timer_fires = int(state["stale_timer_fires"])
        self._monitor_active = {int(n) for n in state["monitor_active"]}
        raw_tick = state["monitor_last_tick"]
        self._monitor_last_tick = None if raw_tick is None else float(raw_tick)
        self._observable_since = {
            int(n): float("inf") if since is None else float(since)
            for n, since in state["observable_since"]
        }

    def rearm(self, jobs_by_id: Dict[str, Job]) -> None:
        """Re-claim every runner-owned timer from the engine inventory.

        Runs inside an engine restore window, after :meth:`restore`;
        completion handles are wired back into their running records, and
        a final pass verifies no running job was left without one.
        """
        engine = self.engine
        for tag in engine.pending_rearm_tags():
            family = tag.partition(":")[0]
            if family == "arrival":
                job = jobs_by_id[tag.partition(":")[2]]
                engine.rearm(tag, lambda job=job: self._on_arrival(job))
            elif tag == "sample":
                engine.rearm(tag, self._on_sample)
            elif tag == "schedule-pass":
                engine.rearm(tag, self._run_pass)
            elif family == "gpu-done":
                job_id = tag.partition(":")[2]
                self._running_gpu[job_id].completion = engine.rearm(
                    tag, lambda job_id=job_id: self._on_gpu_complete(job_id)
                )
            elif family == "cpu-done":
                job_id = tag.partition(":")[2]
                self._running_cpu[job_id].completion = engine.rearm(
                    tag, lambda job_id=job_id: self._on_cpu_complete(job_id)
                )
            elif family == "straggler-end":
                _, job_id, incarnation, _count = tag.split(":")
                engine.rearm(
                    tag,
                    lambda job_id=job_id, incarnation=int(
                        incarnation
                    ): self._end_straggler(job_id, incarnation),
                )
            elif family == "quarantine-end":
                node_id = int(tag.partition(":")[2])
                engine.rearm(
                    tag,
                    lambda node_id=node_id: self._on_quarantine_end(node_id),
                )
        for job_id, gpu_record in self._running_gpu.items():
            if gpu_record.completion is None:
                raise RuntimeError(
                    f"restore left running GPU job {job_id} without a "
                    "completion event"
                )
        for job_id, cpu_record in self._running_cpu.items():
            if cpu_record.completion is None:
                raise RuntimeError(
                    f"restore left running CPU job {job_id} without a "
                    "completion event"
                )
