"""One entry point per paper figure/table.

Each function returns plain data (lists/dicts of rows) and the benchmark
suite renders them with :mod:`repro.metrics.report`.  Functions that need
the expensive three-policy cluster runs share them through
:func:`run_cached_comparison`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import Node
from repro.config import NodeConfig
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.core.tuning import TuningSession
from repro.experiments.runner import RunResult, SimulationRunner
from repro.experiments.scenarios import (
    Scenario,
    paper_scale_scenario,
    run_comparison,
)
from repro.metrics.stats import (
    cdf_points,
    fraction_at_most,
    fraction_exceeding,
    mean,
    percentile,
)
from repro.perfmodel.bandwidth import memory_bandwidth_demand
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.contention import ContentionState
from repro.perfmodel.pcie import pcie_grant_ratio, pcie_peak_demand
from repro.perfmodel.speed import iteration_time, training_speed
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import optimal_cores, utilization_curve
from repro.workload.heat import HEAT_GBPS_PER_THREAD, HEAT_LLC_MB_PER_THREAD
from repro.workload.job import JobKind
from repro.workload.tracegen import TraceConfig, generate_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel import SimPool

#: The configurations Figs. 3/5/6 sweep.
CHARACTERIZATION_SETUPS = ("1N1G", "1N2G", "1N4G", "2N4G")


# ---------------------------------------------------------------------- #
# Shared cluster runs (Figs. 1, 2, 10-14, fragmentation, ablation)


def _figure_pool() -> "SimPool":
    """The executor the expensive cluster figures share.

    Honours ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``, so
    a figure regeneration sweep fans out and re-uses prior runs without
    any figure function knowing.  Built per call — the disk cache, not
    the pool object, carries state worth keeping.
    """
    from repro.parallel import SimPool, default_cache, default_jobs

    return SimPool(jobs=default_jobs(), cache=default_cache())


@lru_cache(maxsize=4)
def run_cached_comparison(
    duration_days: float = 1.0, seed: int = 3
) -> Dict[str, RunResult]:
    """FIFO/DRF/CODA on the identical paper-scale trace, memoized."""
    scenario = paper_scale_scenario(duration_days=duration_days, seed=seed)
    return run_comparison(scenario, executor=_figure_pool().map)


# ---------------------------------------------------------------------- #
# Fig. 1 — weekly CPU/GPU active & utilization trend


def fig1_cluster_trend(
    duration_days: float = 2.0, seed: int = 3
) -> Dict[str, List[Tuple[float, float]]]:
    """The Fig. 1 series under the status-quo FIFO policy."""
    from repro.parallel import RunSpec

    scenario = paper_scale_scenario(duration_days=duration_days, seed=seed)
    spec = RunSpec(scenario=scenario, scheduler="fifo")
    result = _figure_pool().map([spec])[0]
    collector = result.collector
    return {
        "gpu_active_rate": collector.gpu_active_rate.points,
        "gpu_utilization": collector.gpu_utilization.points,
        "cpu_active_rate": collector.cpu_active_rate.points,
    }


# ---------------------------------------------------------------------- #
# Fig. 2 — trace characteristics


def fig2_job_characteristics(
    duration_days: float = 2.0, seed: int = 3
) -> Dict[str, object]:
    """Job-type breakdown, queueing CDF under FIFO, requested-core split."""
    results = run_cached_comparison(seed=seed)
    fifo = results["fifo"]
    trace = generate_trace(
        paper_scale_scenario(duration_days=duration_days, seed=seed).trace_config
    )
    gpu_jobs = trace.gpu_jobs
    per_gpu_requests = [
        job.requested_cpus / job.setup.gpus_per_node for job in gpu_jobs
    ]
    # Fig. 2a: job-type breakdown per tenant group.
    from repro.workload.tenants import paper_tenants

    kind_of = {t.tenant_id: t.kind for t in paper_tenants()}
    group_counts: Dict[str, Dict[str, int]] = {}
    for job in trace.jobs:
        group = kind_of[job.tenant_id].value
        bucket = group_counts.setdefault(group, {"gpu": 0, "cpu": 0})
        bucket[job.kind.value] += 1
    gq = fifo.collector.queueing_times(
        JobKind.GPU, include_unstarted_until=fifo.horizon_s
    )
    cq = fifo.collector.queueing_times(
        JobKind.CPU, include_unstarted_until=fifo.horizon_s
    )
    return {
        "group_breakdown": group_counts,
        "gpu_job_fraction": len(gpu_jobs) / len(trace.jobs),
        "cpu_job_fraction": len(trace.cpu_jobs) / len(trace.jobs),
        "requested_1_2": mean([1.0 if r <= 2 else 0.0 for r in per_gpu_requests]),
        "requested_over_10": mean(
            [1.0 if r > 10 else 0.0 for r in per_gpu_requests]
        ),
        "gpu_wait_over_3min": fraction_exceeding(gq, 180.0),
        "gpu_wait_over_10min": fraction_exceeding(gq, 600.0),
        "cpu_within_10s": fraction_at_most(cq, 10.0),
        "gpu_queue_cdf": cdf_points(gq),
        "cpu_queue_cdf": cdf_points(cq),
    }


# ---------------------------------------------------------------------- #
# Fig. 3 — utilization/speed vs core count


def fig3_core_sweep(
    setups: Sequence[str] = ("1N1G", "1N4G"), max_cores: int = 16
) -> Dict[str, Dict[str, List[Tuple[int, float, float]]]]:
    """(cores, speed, utilization) series per model per configuration."""
    sweep: Dict[str, Dict[str, List[Tuple[int, float, float]]]] = {}
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        sweep[name] = {}
        for label in setups:
            setup = TrainSetup.parse(label)
            rows = [
                (cores, training_speed(profile, setup, cores), util)
                for cores, util in utilization_curve(
                    profile, setup, max_cores=max_cores
                )
            ]
            sweep[name][label] = rows
    return sweep


# ---------------------------------------------------------------------- #
# Fig. 5 — optimal core count per model / config / batch size


def fig5_optimal_cores() -> List[Tuple[str, str, str, int]]:
    """(model, config, batch-kind, optimal cores) rows."""
    rows: List[Tuple[str, str, str, int]] = []
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        for label in CHARACTERIZATION_SETUPS:
            for batch_kind, batch in (
                ("default", profile.default_batch),
                ("max", profile.max_batch),
            ):
                setup = TrainSetup.parse(label, batch=batch)
                rows.append(
                    (name, label, batch_kind, optimal_cores(profile, setup))
                )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 6 — memory-bandwidth demand


def fig6_bandwidth_demand() -> List[Tuple[str, str, str, float]]:
    """(model, config, batch-kind, GB/s at the optimal allocation) rows."""
    rows: List[Tuple[str, str, str, float]] = []
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        for label in CHARACTERIZATION_SETUPS:
            for batch_kind, batch in (
                ("default", profile.default_batch),
                ("max", profile.max_batch),
            ):
                setup = TrainSetup.parse(label, batch=batch)
                best = optimal_cores(profile, setup)
                rows.append(
                    (
                        name,
                        label,
                        batch_kind,
                        memory_bandwidth_demand(profile, setup, best),
                    )
                )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 7 — normalized 1N1G performance under HEAT pressure


def fig7_contention(
    heat_threads: Sequence[int] = (0, 4, 8, 12, 16),
    node_config: Optional[NodeConfig] = None,
) -> List[Tuple[str, int, float, float]]:
    """(model, heat threads, node pressure, normalized performance) rows.

    Reproduces the Sec. IV-C2 experiment: one 1N1G training job at its
    optimal allocation co-located with a HEAT instance of growing thread
    count; performance normalized to the quiet node.
    """
    node_config = node_config or NodeConfig()
    rows: List[Tuple[str, int, float, float]] = []
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        quiet_speed = training_speed(profile, setup, best)
        for threads in heat_threads:
            node = Node(node_id=0, config=node_config)
            node.allocate("trainer", best, 1)
            node.register_memory_traffic(
                "trainer",
                memory_bandwidth_demand(profile, setup, best),
                is_cpu_job=False,
            )
            if threads > 0:
                node.allocate("heat", min(threads, node.free_cpus), 0)
                node.register_memory_traffic(
                    "heat",
                    HEAT_GBPS_PER_THREAD * threads,
                    is_cpu_job=True,
                    llc_mb=HEAT_LLC_MB_PER_THREAD * threads,
                )
            state = ContentionState(
                bw_grant_ratio=max(node.bandwidth.grant_ratio("trainer"), 1e-6),
                node_bw_pressure=node.bandwidth.pressure,
                llc_pressure=node.llc_pressure,
            )
            speed = training_speed(profile, setup, best, state)
            rows.append(
                (name, threads, node.bandwidth.pressure, speed / quiet_speed)
            )
    return rows


# ---------------------------------------------------------------------- #
# Sec. IV-C3 — PCIe co-location


def pcie_colocation(
    node_config: Optional[NodeConfig] = None,
) -> List[Tuple[str, str, str, float, float]]:
    """(model A, model B, configs, PCIe grant ratio, A's normalized perf)."""
    node_config = node_config or NodeConfig()
    pairs = [
        ("alexnet", "resnet50", "1N2G"),
        ("alexnet", "alexnet", "1N1G"),
        ("resnet50", "transformer", "1N2G"),
        ("transformer", "deepspeech", "1N2G"),
        ("vgg16", "wavenet", "1N2G"),
    ]
    rows: List[Tuple[str, str, str, float, float]] = []
    for left_name, right_name, label in pairs:
        left, right = get_model(left_name), get_model(right_name)
        setup = TrainSetup.parse(label)
        demands = [
            pcie_peak_demand(left, setup),
            pcie_peak_demand(right, setup),
        ]
        ratio = pcie_grant_ratio(demands, node_config.pcie_gbps)
        best = optimal_cores(left, setup)
        quiet = training_speed(left, setup, best)
        contended = training_speed(
            left, setup, best, ContentionState(pcie_grant_ratio=ratio)
        )
        rows.append((left_name, right_name, label, ratio, contended / quiet))
    return rows


# ---------------------------------------------------------------------- #
# Table II — profiling overhead of the adaptive allocator


@dataclass(frozen=True)
class ProfilingOverheadRow:
    model: str
    n_start: int
    optimal: int
    profiling_steps: int
    training_iterations: int


#: Tenant history entries the Table-II experiment assumes: the owner ran
#: each model before, so N_start is at (or one below) the optimum — that is
#: the regime in which the paper reports 3-4 profiling steps.
TABLE2_HISTORY_OFFSET = {
    "alexnet": -1,
    "vgg16": -1,
    "inception3": 0,
    "resnet50": 0,
    "bat": -1,
    "transformer": 0,
    "wavenet": 0,
    "deepspeech": 0,
}


def table2_profiling_overhead(
    profiling_step_s: float = 90.0,
) -> List[ProfilingOverheadRow]:
    """Drive the tuning state machine against the performance model."""
    rows: List[ProfilingOverheadRow] = []
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        n_start = max(1, best + TABLE2_HISTORY_OFFSET[name])
        session = TuningSession(n_start=n_start, min_cores=1, max_cores=28)
        iterations = 0.0
        cores = session.next_cores
        while cores is not None:
            breakdown = iteration_time(profile, setup, cores)
            iterations += profiling_step_s / breakdown.total_s
            cores = session.record(cores, breakdown.utilization)
        rows.append(
            ProfilingOverheadRow(
                model=name,
                n_start=n_start,
                optimal=best,
                profiling_steps=session.steps_taken,
                training_iterations=round(iterations),
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 10 — active rate & utilization per policy


def fig10_utilization(
    seed: int = 3,
) -> List[Tuple[str, float, float, Optional[float]]]:
    """(policy, gpu utilization, mean active rate, busy-period active rate).

    The busy-period rate conditions on samples with a non-empty GPU queue
    (Fig. 10 reports active rates "when the jobs queue up").  A policy
    that never queued a GPU job — CODA routinely, on lighter seeds — has
    no such samples; ``None`` marks that (strongest possible) outcome.
    """
    results = run_cached_comparison(seed=seed)
    rows: List[Tuple[str, float, float, Optional[float]]] = []
    for name in ("fifo", "drf", "coda"):
        collector = results[name].collector
        paired = zip(
            collector.gpu_active_rate.points, collector.gpu_queue_depth.points
        )
        busy = [rate for (_, rate), (_, depth) in paired if depth > 0]
        rows.append(
            (
                name,
                collector.gpu_utilization.mean(),
                collector.gpu_active_rate.mean(),
                mean(busy) if busy else None,
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 11 — queueing-time CDFs


def fig11_queueing(seed: int = 3) -> Dict[str, Dict[str, object]]:
    results = run_cached_comparison(seed=seed)
    summary: Dict[str, Dict[str, object]] = {}
    for name, result in results.items():
        collector = result.collector
        gq = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        cq = collector.queueing_times(
            JobKind.CPU, include_unstarted_until=result.horizon_s
        )
        summary[name] = {
            "gpu_cdf": cdf_points(gq),
            "cpu_cdf": cdf_points(cq),
            "gpu_over_10min": fraction_exceeding(gq, 600.0),
            "gpu_over_1h": fraction_exceeding(gq, 3600.0),
            "gpu_no_queue": fraction_at_most(gq, 1.0),
            "cpu_within_10s": fraction_at_most(cq, 10.0),
            "cpu_within_3min": fraction_at_most(cq, 180.0),
        }
    return summary


# ---------------------------------------------------------------------- #
# Fig. 12 — per-user 99 %-ile queueing time


def fig12_per_user_tail(seed: int = 3) -> List[Tuple[int, float, float, float]]:
    """(user id, FIFO p99, DRF p99, CODA p99) in seconds."""
    results = run_cached_comparison(seed=seed)
    by_policy = {
        name: result.collector.queueing_times_by_tenant(
            include_unstarted_until=result.horizon_s
        )
        for name, result in results.items()
    }
    users = sorted(
        set().union(*[set(tails) for tails in by_policy.values()])
    )
    rows: List[Tuple[int, float, float, float]] = []
    for user in users:
        tail = []
        for policy in ("fifo", "drf", "coda"):
            delays = by_policy[policy].get(user, [])
            tail.append(percentile(delays, 99.0) if delays else 0.0)
        rows.append((user, tail[0], tail[1], tail[2]))
    return rows


# ---------------------------------------------------------------------- #
# Fig. 13 — end-to-end latency of representative GPU jobs


def fig13_end_to_end(
    seed: int = 3, max_jobs: int = 12
) -> List[Tuple[str, float, float, float, float]]:
    """(job, FIFO queue, FIFO processing, CODA queue, CODA processing)."""
    results = run_cached_comparison(seed=seed)
    fifo = results["fifo"].collector
    coda = results["coda"].collector
    common = [
        job_id
        for job_id, record in sorted(fifo.records.items())
        if record.kind is JobKind.GPU
        and record.finish_time is not None
        and coda.records.get(job_id) is not None
        and coda.records[job_id].finish_time is not None
    ]
    step = max(1, len(common) // max_jobs)
    rows: List[Tuple[str, float, float, float, float]] = []
    for job_id in common[::step][:max_jobs]:
        fifo_rec, coda_rec = fifo.records[job_id], coda.records[job_id]
        label = job_id
        if fifo_rec.model is not None:
            label = f"{fifo_rec.model}/{fifo_rec.setup_label}"
        rows.append(
            (
                label,
                fifo_rec.queueing_time or 0.0,
                fifo_rec.processing_time or 0.0,
                coda_rec.queueing_time or 0.0,
                coda_rec.processing_time or 0.0,
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# Fig. 14 — core-count adjustment histogram


def fig14_tuning_histogram(seed: int = 3) -> Dict[str, float]:
    """Fractions of GPU jobs by (tuned - requested) core adjustment."""
    results = run_cached_comparison(seed=seed)
    coda = results["coda"].collector
    adjustments = [
        record.core_adjustment
        for record in coda.started_records(JobKind.GPU)
        if record.core_adjustment is not None
    ]
    total = len(adjustments)
    if total == 0:
        raise RuntimeError("no tuned GPU jobs recorded")
    return {
        "more_1_5": sum(1 for a in adjustments if 1 <= a <= 5) / total,
        "more_over_5": sum(1 for a in adjustments if a > 5) / total,
        "fewer_1_20": sum(1 for a in adjustments if -20 <= a <= -1) / total,
        "unchanged": sum(1 for a in adjustments if a == 0) / total,
        "count": float(total),
    }


# ---------------------------------------------------------------------- #
# Sec. VI-C — fragmentation


def fragmentation_summary(seed: int = 3) -> List[Tuple[str, float, float, float]]:
    """(policy, contended-period frag, average frag, contended fraction)."""
    results = run_cached_comparison(seed=seed)
    rows: List[Tuple[str, float, float, float]] = []
    for name in ("fifo", "drf", "coda"):
        tracker = results[name].collector.fragmentation
        contended = tracker.fragmentation_rate()
        share = tracker.contended_fraction()
        rows.append((name, contended, contended * share, share))
    return rows


# ---------------------------------------------------------------------- #
# Design-choice ablations (DESIGN.md Sec. 6)


def reservation_sweep(
    reservations: Sequence[int] = (8, 12, 16, 20),
    *,
    duration_days: float = 0.5,
    seed: int = 3,
) -> List[Tuple[int, float, float, float]]:
    """Sweep the GPU array's per-node CPU reservation.

    Returns (reserved cores, gpu utilization, gpu no-queue fraction,
    cpu within-3-min fraction) — the trade the reservation buys: more
    reserved cores protect training starts, fewer serve CPU jobs faster.
    """
    from repro.metrics.stats import fraction_at_most
    from repro.parallel import RunSpec

    scenario = paper_scale_scenario(duration_days=duration_days, seed=seed)
    specs = [
        RunSpec(
            scenario=scenario,
            scheduler="coda",
            coda_config=CodaConfig(reserved_cores=reserved),
        )
        for reserved in reservations
    ]
    results = _figure_pool().map(specs)
    rows: List[Tuple[int, float, float, float]] = []
    for reserved, result in zip(reservations, results):
        collector = result.collector
        gpu_queue = collector.queueing_times(
            JobKind.GPU, include_unstarted_until=result.horizon_s
        )
        cpu_queue = collector.queueing_times(
            JobKind.CPU, include_unstarted_until=result.horizon_s
        )
        rows.append(
            (
                reserved,
                collector.gpu_utilization.mean(),
                fraction_at_most(gpu_queue, 1.0),
                fraction_at_most(cpu_queue, 180.0),
            )
        )
    return rows


def epsilon_sweep(
    epsilons: Sequence[float] = (0.002, 0.01, 0.05, 0.15),
) -> List[Tuple[float, str, int, int, float]]:
    """Sweep the tuning-improvement threshold against the perf model.

    Returns (epsilon, model, settled cores, profiling steps, settled
    utilization / peak utilization).  Small epsilons chase sub-noise
    gains (more steps); large ones settle early and under-allocate.
    """
    from repro.perfmodel.utilization import gpu_utilization

    rows: List[Tuple[float, str, int, int, float]] = []
    for epsilon in epsilons:
        for name in ALL_MODEL_NAMES:
            profile = get_model(name)
            setup = TrainSetup(1, 1)
            best = optimal_cores(profile, setup)
            session = TuningSession(
                n_start=max(1, best - 1), min_cores=1, max_cores=28,
                epsilon=epsilon,
            )
            cores = session.next_cores
            while cores is not None:
                cores = session.record(
                    cores, gpu_utilization(profile, setup, cores)
                )
            peak = gpu_utilization(profile, setup, best)
            settled = gpu_utilization(profile, setup, session.best_cores)
            rows.append(
                (
                    epsilon,
                    name,
                    session.best_cores,
                    session.steps_taken,
                    settled / peak,
                )
            )
    return rows


def threshold_sweep(
    thresholds: Sequence[float] = (0.55, 0.75, 0.95),
) -> List[Tuple[float, float, float]]:
    """Sweep the eliminator's bandwidth threshold on the microbenchmark.

    Returns (threshold, trainer slowdown vs quiet with eliminator, HEAT
    throttle cost = heat level chosen).  Lower thresholds protect
    trainers harder but throttle CPU jobs that were not hurting anyone.
    """
    from repro.cluster.cluster import Cluster
    from repro.config import ClusterConfig
    from repro.workload.heat import heat_job
    from repro.workload.job import GpuJob

    profile = get_model("bat")
    setup = TrainSetup(1, 1)
    best = optimal_cores(profile, setup)
    iterations = 300
    quiet = iterations * iteration_time(profile, setup, best).total_s
    rows: List[Tuple[float, float, float]] = []
    for threshold in thresholds:
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(
                eliminator=EliminatorConfig(bandwidth_threshold=threshold)
            )
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(
            0.0,
            GpuJob(
                job_id="trainer",
                tenant_id=1,
                submit_time=0.0,
                model_name="bat",
                setup=setup,
                requested_cpus=best,
                total_iterations=iterations,
            ),
        )
        runner.submit_at(
            1.0, heat_job("heat", 1.0, threads=12, duration_s=1e6, tenant_id=18)
        )
        # Sample the throttle mid-flight: once the trainer finishes, the
        # eliminator's relax phase lifts it again.
        runner.engine.run(until=600.0)
        node = cluster.nodes[0]
        level = node.mba.throttle_level("heat") if node.holds("heat") else 1.0
        runner.engine.run(until=48 * 3600.0)
        record = runner.collector.records["trainer"]
        rows.append(
            (threshold, (record.processing_time or 0.0) / quiet, level)
        )
    return rows


# ---------------------------------------------------------------------- #
# Sec. VI-E — eliminator ablation


def eliminator_microbenchmark(
    *, model_name: str = "bat", heat_threads: int = 12
) -> Dict[str, float]:
    """The controlled Sec. VI-E experiment: one contention-sensitive
    trainer co-located with a HEAT instance, with and without the
    eliminator.  Deterministic — no trace, no scheduling noise."""
    from repro.cluster.cluster import Cluster
    from repro.config import ClusterConfig
    from repro.workload.heat import heat_job
    from repro.workload.job import GpuJob

    outcomes: Dict[str, float] = {}
    profile = get_model(model_name)
    setup = TrainSetup(1, 1)
    best = optimal_cores(profile, setup)
    iterations = 400
    for label, enabled in (("with_eliminator", True), ("without_eliminator", False)):
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(eliminator=EliminatorConfig(enabled=enabled))
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(
            0.0,
            GpuJob(
                job_id="trainer",
                tenant_id=1,
                submit_time=0.0,
                model_name=model_name,
                setup=setup,
                requested_cpus=best,
                total_iterations=iterations,
            ),
        )
        runner.submit_at(
            1.0,
            heat_job("heat", 1.0, threads=heat_threads, duration_s=1e6, tenant_id=18),
        )
        runner.engine.run(until=48 * 3600.0)
        record = runner.collector.records["trainer"]
        if record.processing_time is None:
            raise RuntimeError(f"trainer did not finish ({label})")
        outcomes[label] = record.processing_time
    quiet = iterations * iteration_time(profile, setup, best).total_s
    outcomes["quiet_node"] = quiet
    return outcomes


def eliminator_ablation(
    *,
    heat_fraction: float = 0.03,
    duration_days: float = 1.0,
    seed: int = 11,
) -> Dict[str, Dict[str, float]]:
    """CODA with vs without the contention eliminator under elevated
    bandwidth-heavy CPU-job incidence (the paper reports 0.5 % and notes
    the gap widens with more).

    The robust cluster-level indicator is *hot-node exposure*: how many
    node-samples sit past the bandwidth threshold with trainers aboard.
    Aggregate utilization moves little here because the adaptive allocator
    partially compensates contention with extra cores (see EXPERIMENTS.md).
    """
    trace_config = TraceConfig(
        duration_days=duration_days,
        gpu_jobs_per_day=1250.0,
        cpu_jobs_per_day=3750.0,
        heat_fraction=heat_fraction,
        seed=seed,
    )
    from repro.parallel import RunSpec

    base = paper_scale_scenario(duration_days=duration_days, seed=seed)
    scenario = Scenario(
        cluster_config=base.cluster_config,
        trace_config=trace_config,
        drain_s=base.drain_s,
    )
    variants = (("with_eliminator", True), ("without_eliminator", False))
    specs = [
        RunSpec(
            scenario=scenario,
            scheduler="coda",
            coda_config=CodaConfig(eliminator=EliminatorConfig(enabled=enabled)),
        )
        for _, enabled in variants
    ]
    results = _figure_pool().map(specs)
    outcomes: Dict[str, Dict[str, float]] = {}
    for (label, _), result in zip(variants, results):
        collector = result.collector
        depths = collector.gpu_queue_depth.values()
        cpu_depths = collector.cpu_queue_depth.values()
        outcomes[label] = {
            "gpu_utilization": collector.gpu_utilization.mean(),
            "mean_gpu_queue_depth": mean(depths),
            "mean_cpu_queue_depth": mean(cpu_depths),
            "hot_node_samples": float(sum(collector.hot_nodes.values())),
            "throttle_actions": float(collector.throttle_events),
            "core_halvings": float(collector.core_halving_events),
            "finished_gpu_jobs": float(result.finished_gpu_jobs),
        }
    return outcomes
