"""Experiment harness.

:mod:`repro.experiments.runner` drives a trace through a scheduler on a
simulated cluster; :mod:`repro.experiments.scenarios` holds canonical
configurations; :mod:`repro.experiments.figures` exposes one entry point
per paper figure/table, which the benchmark suite and the examples call.
"""

from repro.experiments.auditlog import AuditLog, AuditRecord
from repro.experiments.runner import RunResult, SimulationRunner
from repro.experiments.scenarios import (
    paper_scale_scenario,
    run_comparison,
    run_mtbf_sweep,
    run_scenario,
    small_scenario,
)

__all__ = [
    "AuditLog",
    "AuditRecord",
    "RunResult",
    "SimulationRunner",
    "paper_scale_scenario",
    "run_comparison",
    "run_mtbf_sweep",
    "run_scenario",
    "small_scenario",
]
