"""Canonical experiment scenarios.

Two scales:

* **paper scale** — the Sec. III-A testbed (80 nodes / 400 GPUs) with the
  trace rates of Sec. VI-A, shortened from one month to a configurable
  number of days so the cluster-level figures regenerate in minutes;
* **small scale** — a few nodes and hours, for tests and the quickstart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.analysis.invariants import InvariantAuditor
from repro.cluster.cluster import Cluster
from repro.config import (
    ClusterConfig,
    NodeConfig,
    paper_cluster,
    small_cluster,
)
from repro.core.coda import CodaConfig, CodaScheduler
from repro.experiments.runner import RunResult, SimulationRunner
from repro.faults import FaultConfig, FaultInjector
from repro.health.config import HealthConfig
from repro.schedulers.base import Scheduler
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.workload.tracegen import Trace, TraceConfig, generate_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.spec import RunSpec

#: An executor maps a batch of independent run specs to their results,
#: aligned by index.  The default is in-process serial execution;
#: :meth:`repro.parallel.SimPool.map` plugs in process fan-out and the
#: content-addressed result cache without the drivers knowing.
Executor = Callable[[Sequence["RunSpec"]], List[RunResult]]


@dataclass(frozen=True)
class Scenario:
    """A reusable (cluster, trace) experiment setting."""

    cluster_config: ClusterConfig
    trace_config: TraceConfig
    #: Extra simulated time after the last arrival so in-flight jobs drain.
    drain_s: float = 0.0
    #: Optional infrastructure-failure model; None = perfectly reliable
    #: hardware (the seed reproduction's original assumption).
    fault_config: Optional[FaultConfig] = None

    @property
    def horizon_s(self) -> float:
        return self.trace_config.duration_s + self.drain_s

    def build_cluster(self) -> Cluster:
        return Cluster(self.cluster_config)

    def build_trace(self) -> Trace:
        return generate_trace(self.trace_config)

    def build_fault_injector(self) -> Optional[FaultInjector]:
        if self.fault_config is None or not self.fault_config.any_channel_active:
            return None
        return FaultInjector(self.fault_config)

    def with_faults(self, fault_config: FaultConfig) -> "Scenario":
        """The same workload on the same cluster, but hardware breaks."""
        return replace(self, fault_config=fault_config)


#: Calibrated arrival rates for the evaluation scenario.  The paper's raw
#: counts (833 GPU / 2,500 CPU jobs per day) under-load our simulator
#: relative to the occupancy its own Fig. 1 shows (GPU active rate
#: consistently above 80 %, CPU active rate peaking at 100 %); these rates
#: keep the published 3:1 CPU:GPU job ratio while reproducing that
#: occupancy regime.  See EXPERIMENTS.md.
CALIBRATED_GPU_JOBS_PER_DAY = 1250.0
CALIBRATED_CPU_JOBS_PER_DAY = 3750.0


def paper_scale_scenario(
    *,
    duration_days: float = 2.0,
    seed: int = 0,
    drain_hours: float = 6.0,
    calibrated_load: bool = True,
) -> Scenario:
    """The 80-node / 400-GPU cluster under the Sec. VI-A trace.

    ``calibrated_load=False`` uses the paper's raw per-day job counts
    instead of the occupancy-calibrated rates.
    """
    if calibrated_load:
        trace_config = TraceConfig(
            duration_days=duration_days,
            gpu_jobs_per_day=CALIBRATED_GPU_JOBS_PER_DAY,
            cpu_jobs_per_day=CALIBRATED_CPU_JOBS_PER_DAY,
            seed=seed,
        )
    else:
        trace_config = TraceConfig(duration_days=duration_days, seed=seed)
    return Scenario(
        cluster_config=paper_cluster(),
        trace_config=trace_config,
        drain_s=drain_hours * 3600.0,
    )


def week_scale_scenario(
    *,
    duration_days: float = 7.0,
    seed: int = 0,
    drain_hours: float = 6.0,
) -> Scenario:
    """A 200-node / 1,000-GPU cluster under proportionally scaled load.

    2.5x the paper testbed, keeping its 3:1 node-shape mix (150 4-GPU +
    50 8-GPU servers) and the calibrated occupancy regime.  This is the
    scale-stress setting for week-long replays: per-event costs that are
    invisible at 80 nodes (full-cluster monitor ticks, reschedule storms)
    dominate here.
    """
    scale = 200.0 / 80.0
    return Scenario(
        cluster_config=ClusterConfig(
            node_groups=(
                (150, NodeConfig(gpus=4)),
                (50, NodeConfig(gpus=8)),
            )
        ),
        trace_config=TraceConfig(
            duration_days=duration_days,
            gpu_jobs_per_day=CALIBRATED_GPU_JOBS_PER_DAY * scale,
            cpu_jobs_per_day=CALIBRATED_CPU_JOBS_PER_DAY * scale,
            seed=seed,
        ),
        drain_s=drain_hours * 3600.0,
    )


def small_scenario(
    *, duration_days: float = 0.25, seed: int = 0, nodes: int = 6
) -> Scenario:
    """A laptop-scale setting with proportionally scaled job rates."""
    scale = nodes / 80.0
    return Scenario(
        cluster_config=small_cluster(nodes=nodes),
        trace_config=TraceConfig(
            duration_days=duration_days,
            gpu_jobs_per_day=(25000.0 / 30.0) * scale,
            cpu_jobs_per_day=(75000.0 / 30.0) * scale,
            seed=seed,
        ),
        drain_s=2 * 3600.0,
    )


def default_schedulers(
    coda_config: Optional[CodaConfig] = None,
) -> Dict[str, Callable[[], Scheduler]]:
    """Factories for the three policies the evaluation compares."""
    return {
        "fifo": FifoScheduler,
        "drf": DrfScheduler,
        "coda": lambda: CodaScheduler(coda_config),
    }


def run_scenario(
    scenario: Scenario,
    scheduler: Scheduler,
    *,
    sample_interval_s: float = 300.0,
    auditor: Optional[InvariantAuditor] = None,
    health_config: Optional[HealthConfig] = None,
) -> RunResult:
    """Execute one (scenario, policy) run to its horizon.

    ``auditor`` (an :class:`~repro.analysis.invariants.InvariantAuditor`)
    rides along as an engine observer; because it fires no events, the
    result is byte-identical with or without it.  ``health_config``
    replaces the cluster's default node-health tracker — only meaningful
    under fault injection, since without failures no node ever collects a
    strike.
    """
    runner = SimulationRunner(
        scenario.build_cluster(),
        scheduler,
        scenario.build_trace(),
        sample_interval_s=sample_interval_s,
        fault_injector=scenario.build_fault_injector(),
        auditor=auditor,
        health_config=health_config,
    )
    return runner.run(until=scenario.horizon_s)


def run_comparison(
    scenario: Scenario,
    *,
    coda_config: Optional[CodaConfig] = None,
    sample_interval_s: float = 300.0,
    executor: Optional[Executor] = None,
) -> Dict[str, RunResult]:
    """Run FIFO, DRF, and CODA on identical traces (the Fig. 10-13 setup).

    The three runs are independent; ``executor`` decides how they execute.
    ``None`` keeps the historical serial loop; pass
    :meth:`repro.parallel.SimPool.map` for process fan-out and caching.
    Results are keyed by policy regardless of completion order.
    """
    from repro.parallel import RunSpec, serial_map

    specs = [
        RunSpec(
            scenario=scenario,
            scheduler=name,
            coda_config=coda_config,
            sample_interval_s=sample_interval_s,
        )
        for name in ("fifo", "drf", "coda")
    ]
    run = executor if executor is not None else serial_map
    return {
        spec.scheduler: result for spec, result in zip(specs, run(specs))
    }


def grid_specs(
    scenario: Scenario,
    schedulers: Sequence[str] = ("fifo", "drf", "coda"),
    seeds: Sequence[int] = (0,),
    *,
    coda_config: Optional[CodaConfig] = None,
    sample_interval_s: float = 300.0,
) -> List["RunSpec"]:
    """The policy x seed grid over one scenario, as run specs.

    The unit of work the sweep service consumes: each cell replays the
    identical workload shape under one policy and one trace seed, so
    cells are independent and can execute (and fail, and retry) in any
    order.  Specs are emitted policy-major to match the grid's report
    ordering.
    """
    from repro.parallel import RunSpec

    return [
        RunSpec(
            scenario=scenario,
            scheduler=name,
            coda_config=coda_config,
            sample_interval_s=sample_interval_s,
        ).with_seed(seed)
        for name in schedulers
        for seed in seeds
    ]


def mtbf_sweep_points(
    scenario: Scenario,
    mtbf_hours: Sequence[float],
    *,
    fault_seed: int = 0,
    node_mttr_s: float = 1800.0,
) -> Dict[float, Scenario]:
    """One scenario per sweep point: the identical workload under a
    harsher (smaller MTBF) or gentler failure schedule.  0 or ``inf``
    hours disables faults — the control point."""
    points: Dict[float, Scenario] = {}
    for hours in mtbf_hours:
        if hours <= 0 or hours == float("inf"):
            points[hours] = replace(scenario, fault_config=None)
        else:
            points[hours] = scenario.with_faults(
                FaultConfig(
                    seed=fault_seed,
                    node_mtbf_s=hours * 3600.0,
                    node_mttr_s=node_mttr_s,
                )
            )
    return points


def run_mtbf_sweep(
    scenario: Scenario,
    mtbf_hours: Sequence[float],
    *,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
    scheduler: str = "coda",
    coda_config: Optional[CodaConfig] = None,
    fault_seed: int = 0,
    node_mttr_s: float = 1800.0,
    sample_interval_s: float = 300.0,
    executor: Optional[Executor] = None,
) -> Dict[float, RunResult]:
    """Sweep the per-node crash MTBF over the same workload.

    Every point replays the identical trace under a different failure
    schedule, isolating how much goodput the recovery path gives back.
    The fault seed is held fixed so schedules at different MTBFs differ
    only in rate, not in which RNG streams exist.

    Points are independent and route through ``executor`` like
    :func:`run_comparison`.  ``scheduler_factory`` remains as an escape
    hatch for custom scheduler objects; such factories cannot cross a
    process boundary, so they force the in-process serial path.
    """
    points = mtbf_sweep_points(
        scenario, mtbf_hours, fault_seed=fault_seed, node_mttr_s=node_mttr_s
    )
    if scheduler_factory is not None:
        if executor is not None:
            raise ValueError(
                "scheduler_factory runs in-process; pass a scheduler name "
                "(and coda_config) to use an executor"
            )
        return {
            hours: run_scenario(
                point,
                scheduler_factory(),
                sample_interval_s=sample_interval_s,
            )
            for hours, point in points.items()
        }
    from repro.parallel import RunSpec, serial_map

    specs = [
        RunSpec(
            scenario=point,
            scheduler=scheduler,
            coda_config=coda_config,
            sample_interval_s=sample_interval_s,
        )
        for point in points.values()
    ]
    run = executor if executor is not None else serial_map
    return dict(zip(points.keys(), run(specs)))
