"""Structured audit log of scheduling activity.

Sec. V-A step 5: "When J completes, its resource usage, scheduling
information, and owner information are recorded in a log for future use."
The :class:`AuditLog` captures that — and every other lifecycle event — as
structured records that can be asserted on in tests, written to JSONL for
offline analysis, or replayed to debug a scheduling decision.

Attach one to a runner::

    log = AuditLog()
    runner = SimulationRunner(cluster, scheduler, trace, audit=log)
    ...
    log.save("audit.jsonl")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union


@dataclass(frozen=True)
class AuditRecord:
    """One scheduling event."""

    time: float
    event: str  # submitted | started | resized | throttled | halved |
    #             preempted | finished
    job_id: str
    tenant_id: int
    kind: str  # "gpu" | "cpu"
    detail: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "time": self.time,
                "event": self.event,
                "job_id": self.job_id,
                "tenant_id": self.tenant_id,
                "kind": self.kind,
                **self.detail,
            },
            sort_keys=True,
        )


class AuditLog:
    """An append-only, queryable log of lifecycle events."""

    #: Events the log understands; anything else is a programming error.
    KNOWN_EVENTS = frozenset(
        {
            "submitted",
            "started",
            "resized",
            "throttled",
            "halved",
            "preempted",
            "finished",
        }
    )

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []

    def record(
        self,
        time: float,
        event: str,
        job_id: str,
        tenant_id: int,
        kind: str,
        **detail: object,
    ) -> None:
        if event not in self.KNOWN_EVENTS:
            raise ValueError(f"unknown audit event: {event!r}")
        self._records.append(
            AuditRecord(
                time=time,
                event=event,
                job_id=job_id,
                tenant_id=tenant_id,
                kind=kind,
                detail=dict(detail),
            )
        )

    # ------------------------------------------------------------------ #
    # Queries

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def of_job(self, job_id: str) -> List[AuditRecord]:
        return [r for r in self._records if r.job_id == job_id]

    def of_event(self, event: str) -> List[AuditRecord]:
        if event not in self.KNOWN_EVENTS:
            raise ValueError(f"unknown audit event: {event!r}")
        return [r for r in self._records if r.event == event]

    def of_tenant(self, tenant_id: int) -> List[AuditRecord]:
        return [r for r in self._records if r.tenant_id == tenant_id]

    def timeline(self, job_id: str) -> List[str]:
        """The ordered event names of one job — handy in assertions."""
        return [r.event for r in self.of_job(job_id)]

    def last(self, job_id: str) -> Optional[AuditRecord]:
        history = self.of_job(job_id)
        return history[-1] if history else None

    # ------------------------------------------------------------------ #
    # Persistence

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(record.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "AuditLog":
        log = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                payload = json.loads(line)
                log.record(
                    payload.pop("time"),
                    payload.pop("event"),
                    payload.pop("job_id"),
                    payload.pop("tenant_id"),
                    payload.pop("kind"),
                    **payload,
                )
        return log
