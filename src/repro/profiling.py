"""Lightweight wall-clock profiling for the simulator's hot paths.

The benchmark harness (``benchmarks/bench_speed.py``) and the CLI's
``--profile`` flag need per-subsystem *time shares* — how much of a run's
wall time went to scheduling passes, repricing, the eliminator, metrics
sampling, and so on.  This module provides the minimal machinery:

* :class:`Profiler` — named section timers (context managers) plus named
  counters, accumulated in plain dicts;
* a module-global *active* profiler that instrumented call sites consult.
  When no profiler is active (the default), :func:`section` hands back a
  shared no-op context manager and :func:`count` returns immediately, so
  an uninstrumented run pays one ``None`` check per call site and nothing
  else.

The profiler reads the *host* clock — that is the whole point — so it is
the one simulator module exempt from the codalint CL001 wall-clock rule.
Profiling never feeds back into simulation decisions: enabling it cannot
change a run's outputs, only measure them.

Example (doctest uses counters only, so it is deterministic)::

    >>> profiler = Profiler()
    >>> profiler.count("events")
    >>> profiler.count("events", 2)
    >>> profiler.counters["events"]
    3
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Dict, List, Optional, Tuple, Type

#: The host clock, bound once at import.  Timed regions fire hundreds of
#: thousands of times per run, and ``time.perf_counter`` is an attribute
#: lookup on every call; binding the function object here removes it.  The
#: engine imports this binding rather than ``time`` directly, keeping all
#: wall-clock reads routed through the one CL001-exempt module.
perf_counter = time.perf_counter


class _NullSection:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """One timed ``with`` block; accumulates into its profiler on exit."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Section":
        self._t0 = perf_counter()  # codalint: disable=CL001
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        elapsed = perf_counter() - self._t0  # codalint: disable=CL001
        self._profiler.add_time(self._name, elapsed)

    def rename(self, name: str) -> None:
        """Re-attribute this section before it closes — used by the engine
        when an action turns out to be a fast-path variant of its tag
        category (e.g. a skipped scheduling pass)."""
        self._name = name


class Profiler:
    """Accumulates named wall-clock timers and counters.

    One instance per measured run.  Sections may nest (an inner section's
    time is *also* counted in the outer one); the engine-level wiring in
    :meth:`repro.sim.engine.Engine.set_profiler` keys sections by event
    tag category, which are disjoint by construction.
    """

    def __init__(self) -> None:
        self.timers: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Recording

    def section(self, name: str) -> _Section:
        """A context manager that adds its elapsed wall time to ``name``."""
        return _Section(self, name)

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------ #
    # Reading

    def total_timed_s(self) -> float:
        return sum(self.timers.values())

    def time_shares(
        self, total_s: Optional[float] = None
    ) -> List[Tuple[str, float, float]]:
        """``(name, seconds, share)`` rows, largest first.

        ``total_s`` (e.g. the run's full wall time) is the denominator;
        when omitted, the sum of all timed sections is used.  With an
        explicit total the shares need not add to 1 — the remainder is
        un-instrumented time (the event loop itself, mostly).
        """
        denominator = total_s if total_s is not None else self.total_timed_s()
        rows = [
            (name, seconds, seconds / denominator if denominator > 0 else 0.0)
            for name, seconds in self.timers.items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready copy of every timer and counter."""
        return {
            "timers_s": dict(self.timers),
            "counters": {name: float(n) for name, n in self.counters.items()},
        }


#: The module-global active profiler; ``None`` means profiling is off.
_active: Optional[Profiler] = None


def enable() -> Profiler:
    """Install (and return) a fresh active profiler."""
    global _active
    _active = Profiler()
    return _active


def disable() -> None:
    """Deactivate profiling; instrumented call sites go back to no-ops."""
    global _active
    _active = None


def active() -> Optional[Profiler]:
    """The active profiler, or ``None`` when profiling is off."""
    return _active


def section(name: str) -> object:
    """Context manager timing ``name`` on the active profiler (no-op when
    profiling is off)."""
    profiler = _active
    if profiler is None:
        return _NULL_SECTION
    return profiler.section(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active profiler (no-op when profiling is off)."""
    profiler = _active
    if profiler is not None:
        profiler.count(name, n)
