"""Memory-bandwidth demand (Fig. 6).

The demand is what the job's data-preparation traffic puts on the node's
memory system at its current allocation.  Calibration rules from
Sec. IV-C1:

* CV demand anti-correlates with model complexity (same ordering as the
  core demand);
* NLP demand is tiny — in-memory datasets, one-hot-sized inputs;
* Wavenet's demand grows with batch (audio re-cut), DeepSpeech's does not;
* demand grows linearly with the number of local GPUs;
* a larger batch raises demand "slightly" for CV models.

Demand also shrinks when the job runs with fewer cores than optimal: the
prep stage stretches, so the same bytes spread over a longer window.
"""

from __future__ import annotations

import math

from repro.perfmodel.catalog import ModelProfile
from repro.perfmodel.stages import TrainSetup


def memory_bandwidth_demand(
    profile: ModelProfile,
    setup: TrainSetup,
    cores_per_node: int,
) -> float:
    """Per-node memory-bandwidth demand in GB/s.

    Anchored at ``profile.bw_demand_gbps`` for 1N1G / default batch /
    optimal cores, then scaled by batch (per-model sensitivity), by local
    GPU count (linear, Sec. IV-C1), and by the core allocation's effect on
    the prep duty cycle.
    """
    if cores_per_node < 1:
        raise ValueError(
            f"{profile.name}: need at least one core, got {cores_per_node}"
        )
    batch = setup.batch if setup.batch is not None else profile.default_batch
    doublings = math.log2(batch / profile.default_batch)
    batch_factor = max(0.1, 1.0 + profile.bw_batch_sensitivity * doublings)

    # Duty-cycle factor: with fewer cores than the model can use, the prep
    # window stretches but moves the same bytes, so average pressure on the
    # memory bus stays near the anchor; with *more* cores prep compresses
    # and the anchor is already its peak.  We model the mild dilution of
    # running far under the optimum.
    reference = profile.optimal_cores_1g * setup.gpus_per_node
    cap = profile.prep_parallelism_cap
    if cap is not None:
        reference = min(reference, cap * setup.gpus_per_node)
    duty = min(1.0, cores_per_node / reference) ** 0.5

    demand = (
        profile.bw_demand_gbps * setup.gpus_per_node * batch_factor * duty
    )
    return demand
