"""GPU utilization and the optimal-core search.

Sec. V-B rests on two characterization findings: a job's GPU utilization and
training speed move together and peak at the same core count, and the
relationship between cores and utilization is monotone up to that peak with
a gentle decline after it.  Both fall out of the iteration model, so the
"optimal core number" here is simply the speed argmax.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cluster.interconnect import Interconnect
from repro.perfmodel.catalog import ModelProfile
from repro.perfmodel.contention import UNCONTENDED, ContentionState
from repro.perfmodel.speed import iteration_time, training_speed
from repro.perfmodel.stages import TrainSetup

#: Search ceiling: a job never benefits from more cores than a whole node.
DEFAULT_MAX_CORES = 28


def gpu_utilization(
    profile: ModelProfile,
    setup: TrainSetup,
    cores_per_node: int,
    contention: ContentionState = UNCONTENDED,
    interconnect: Optional[Interconnect] = None,
) -> float:
    """GPU busy fraction in [0, 1] for the given allocation."""
    kwargs = {} if interconnect is None else {"interconnect": interconnect}
    return iteration_time(
        profile, setup, cores_per_node, contention, **kwargs
    ).utilization


def utilization_curve(
    profile: ModelProfile,
    setup: TrainSetup,
    max_cores: int = DEFAULT_MAX_CORES,
    contention: ContentionState = UNCONTENDED,
) -> List[Tuple[int, float]]:
    """The Fig. 3 series: (cores, utilization) for 1..max_cores."""
    return [
        (cores, gpu_utilization(profile, setup, cores, contention))
        for cores in range(1, max_cores + 1)
    ]


def optimal_cores(
    profile: ModelProfile,
    setup: TrainSetup,
    max_cores: int = DEFAULT_MAX_CORES,
    contention: ContentionState = UNCONTENDED,
) -> int:
    """The core count that maximizes training speed (ties -> fewest cores).

    This is ground truth the adaptive allocator is measured against; the
    allocator itself only ever sees utilization samples.
    """
    if max_cores < 1:
        raise ValueError(f"max_cores must be at least 1: {max_cores}")
    best_cores, best_speed = 1, 0.0
    for cores in range(1, max_cores + 1):
        speed = training_speed(profile, setup, cores, contention)
        if speed > best_speed * (1.0 + 1e-12):
            best_cores, best_speed = cores, speed
    return best_cores
