"""Training-configuration and iteration-breakdown types.

The paper writes training configurations as ``aNbG`` — ``a`` servers and
``b`` GPUs total (Sec. IV-B).  :class:`TrainSetup` is that notation plus the
batch size; :class:`IterationBreakdown` is one priced iteration of the Fig. 4
collaborative process, stage by stage.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TrainSetup:
    """One training configuration: nodes, GPUs per node, batch size.

    ``batch=None`` means the model's default batch size.
    """

    num_nodes: int = 1
    gpus_per_node: int = 1
    batch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"need at least one node: {self}")
        if self.gpus_per_node < 1:
            raise ValueError(f"need at least one GPU per node: {self}")
        if self.batch is not None and self.batch < 1:
            raise ValueError(f"batch must be positive: {self}")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    @property
    def label(self) -> str:
        """The paper's aNbG notation (b = *total* GPUs)."""
        return f"{self.num_nodes}N{self.total_gpus}G"

    @classmethod
    def parse(cls, label: str, batch: Optional[int] = None) -> "TrainSetup":
        """Parse an ``aNbG`` label, e.g. ``"1N4G"`` or ``"2N8G"``.

        ``b`` is the total GPU count and must divide evenly across nodes.
        """
        match = re.fullmatch(r"(\d+)N(\d+)G", label.strip(), re.IGNORECASE)
        if not match:
            raise ValueError(f"not an aNbG configuration label: {label!r}")
        nodes, total_gpus = int(match.group(1)), int(match.group(2))
        if nodes < 1 or total_gpus < 1:
            raise ValueError(f"degenerate configuration: {label!r}")
        if total_gpus % nodes != 0:
            raise ValueError(
                f"{label!r}: {total_gpus} GPUs do not divide across {nodes} nodes"
            )
        return cls(
            num_nodes=nodes, gpus_per_node=total_gpus // nodes, batch=batch
        )


@dataclass(frozen=True)
class IterationBreakdown:
    """One priced training iteration, per the Fig. 4 stages.

    All times in seconds.  ``prep_s`` covers stages 1+2 (read + pre-process,
    already contention-adjusted); ``gpu_s`` is stage 4; ``sync_s`` covers
    stage 5 plus multi-node gradient synchronization; ``pcie_penalty_s`` is
    the *unhidden* share of stage 3 under PCIe contention (zero on a quiet
    node); ``overhead_s`` is the per-core allocation overhead.
    """

    prep_s: float
    gpu_s: float
    sync_s: float
    pcie_penalty_s: float
    overhead_s: float
    pipelined: bool

    @property
    def total_s(self) -> float:
        """Iteration wall time: prep hides under the GPU path when the
        model's input pipeline is overlapped, and serializes when not."""
        gpu_path = self.gpu_s + self.sync_s
        if self.pipelined:
            body = max(self.prep_s, gpu_path)
        else:
            body = self.prep_s + gpu_path
        return body + self.pcie_penalty_s + self.overhead_s

    @property
    def utilization(self) -> float:
        """GPU busy fraction: compute time over iteration wall time."""
        return self.gpu_s / self.total_s

    @property
    def prep_bound(self) -> bool:
        """True when the CPU side is the bottleneck (starved GPU)."""
        return self.pipelined and self.prep_s > self.gpu_s + self.sync_s
