"""The Table-I model catalog with calibrated constants.

Each :class:`ModelProfile` carries the constants that make the analytic
pipeline of :mod:`repro.perfmodel.speed` reproduce the paper's
measurements.  Calibration anchors (see DESIGN.md Sec. 4):

* ``iter_time_s`` — per-iteration time at the optimal core count, 1N1G,
  default batch, derived from Table II (profiling steps x 90 s / reported
  iteration counts).
* ``optimal_cores_1g`` — the Fig. 5 optimum for 1N1G at default batch.
  Sec. IV-B: simpler CV nets need more cores (AlexNet > VGG16 >
  InceptionV3 ~ ResNet-50); Transformer is the one model already optimal at
  2 cores in 1N1G; Wavenet's audio re-cut makes it hungrier than
  DeepSpeech.
* bandwidth / PCIe demands from Fig. 6 and Sec. IV-C3.
* contention sensitivities reproducing Fig. 7 (CV insensitive except
  AlexNet; NLP >= 50 % drops; DeepSpeech > Wavenet).

The prep *work* (CPU-seconds per iteration) is derived, not stored: for a
model whose optimum is ``k`` cores, the prep work is sized so that ``k``
cores just hide it under the GPU path while ``k - 1`` cannot — which is
exactly what "optimal core count" means in the paper's pipeline model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: How far below the GPU path the prep path sits at the optimal core count.
#: 0.3 "virtual cores" of headroom: w_prep = gpu_path * (k_opt - 0.3).
PREP_HEADROOM = 0.3

#: Seconds of per-allocated-core overhead added to every iteration
#: (scheduling/affinity interference).  This is what makes GPU utilization
#: decline gently past the optimum in Fig. 3.
CORE_OVERHEAD_S = 0.004


class Domain(enum.Enum):
    """The paper's three model categories (Tbl. I)."""

    CV = "CV"
    NLP = "NLP"
    SPEECH = "SPEECH"


@dataclass(frozen=True)
class ModelProfile:
    """Calibrated description of one Table-I model.

    Attributes:
        name: canonical lower-case model name.
        domain: CV / NLP / SPEECH category.
        arch: architecture family, informational (Tbl. I "Type").
        dataset: dataset name, informational (Tbl. I "Dataset").
        default_batch: the paper's default batch size.
        max_batch: the paper's "maximum BS" configuration.
        iter_time_s: iteration time at the 1N1G optimum (Table II anchor).
        optimal_cores_1g: Fig. 5 optimum for 1N1G at default batch.
        pipelined: True when data prep overlaps GPU compute (CV and Speech
            pipelines); False for the NLP models whose inter-iteration
            vector preparation serializes with the GPU (Sec. IV-A/IV-B1).
        in_memory_dataset: NLP models read the whole dataset into memory
            and skip the disk-read stage (Sec. IV-A).
        prep_parallelism_cap: max useful prep workers per GPU (None =
            unbounded).  NLP prep stops scaling at this count, which is
            what pins their optimum.
        weight_mb: model size, drives multi-node gradient sync traffic.
        bw_demand_gbps: per-GPU memory-bandwidth demand at the optimum and
            default batch (Fig. 6).
        bw_batch_sensitivity: fractional bandwidth-demand growth when the
            batch doubles (Wavenet grows, DeepSpeech does not; CV grows
            slightly).
        pcie_gbps: average per-GPU host-to-device demand (Sec. IV-C3).
        pcie_peak_gbps: peak H2D demand, used for co-location arbitration.
        contention_sensitivity: latency/bus sensitivity coefficient fed to
            :func:`repro.perfmodel.contention.cpu_work_slowdown`.
        bw_bound_fraction: fraction of prep work that is bandwidth-bound.
        llc_sensitivity: LLC-pressure coefficient; zero for every paper
            model (Fig. 7 finds no LLC sensitivity).
        prep_batch_exponent: exponent of prep work in batch size.  1.0 keeps
            the optimum batch-independent (all models but AlexNet); above
            1.0 the optimum shifts with batch (AlexNet in Fig. 5).
        multinode_overhead: fractional iteration-time inflation in
            multi-node configurations (25-30 %, Sec. IV-B2).
    """

    name: str
    domain: Domain
    arch: str
    dataset: str
    default_batch: int
    max_batch: int
    iter_time_s: float
    optimal_cores_1g: int
    pipelined: bool
    in_memory_dataset: bool
    prep_parallelism_cap: Optional[int]
    weight_mb: float
    bw_demand_gbps: float
    bw_batch_sensitivity: float
    pcie_gbps: float
    pcie_peak_gbps: float
    contention_sensitivity: float
    bw_bound_fraction: float
    llc_sensitivity: float
    prep_batch_exponent: float
    multinode_overhead: float

    def __post_init__(self) -> None:
        if self.iter_time_s <= 0:
            raise ValueError(f"{self.name}: iteration time must be positive")
        if self.optimal_cores_1g < 1:
            raise ValueError(f"{self.name}: optimum must be at least one core")
        if self.default_batch < 1 or self.max_batch < self.default_batch:
            raise ValueError(f"{self.name}: invalid batch range")
        if not 0.0 <= self.bw_bound_fraction <= 1.0:
            raise ValueError(f"{self.name}: bw_bound_fraction out of [0, 1]")
        if self.prep_batch_exponent < 1.0:
            raise ValueError(f"{self.name}: prep_batch_exponent below 1.0")

    # ------------------------------------------------------------------ #
    # Derived timing anchors

    @property
    def gpu_time_s(self) -> float:
        """GPU compute per iteration at default batch.

        At the optimum the iteration equals the GPU path plus per-core
        overhead (pipelined), or prep + GPU path (serial NLP prep, where
        the prep contributes ``PREP_HEADROOM``-adjusted share, see
        :meth:`prep_cpu_seconds`).
        """
        overhead = CORE_OVERHEAD_S * self.optimal_cores_1g
        if self.pipelined:
            return self.iter_time_s - overhead
        # Serial prep: iter = prep(k_opt) + gpu + overhead, with prep at the
        # cap contributing NLP_SERIAL_PREP_SHARE of the iteration.
        return self.iter_time_s * (1.0 - NLP_SERIAL_PREP_SHARE) - overhead

    def gpu_time_at(self, batch: int) -> float:
        """GPU compute scales linearly with batch size."""
        self._check_batch(batch)
        return self.gpu_time_s * (batch / self.default_batch)

    def prep_cpu_seconds(self, batch: int) -> float:
        """CPU-seconds of data preparation per iteration, per GPU.

        Sized from the calibration anchors so that the Fig. 5 optimum is
        exactly ``optimal_cores_1g``:

        * pipelined models: ``k_opt`` cores just hide prep under the GPU
          path, ``k_opt - 1`` cannot;
        * serial-prep NLP models: prep at the parallelism cap contributes
          ``NLP_SERIAL_PREP_SHARE`` of the anchored iteration time.
        """
        self._check_batch(batch)
        batch_factor = (batch / self.default_batch) ** self.prep_batch_exponent
        if self.pipelined:
            base = self.gpu_time_s * (self.optimal_cores_1g - PREP_HEADROOM)
        else:
            cap = self.prep_parallelism_cap or self.optimal_cores_1g
            base = self.iter_time_s * NLP_SERIAL_PREP_SHARE * cap
        return base * batch_factor

    @property
    def weight_bytes(self) -> float:
        return self.weight_mb * 1e6

    def _check_batch(self, batch: int) -> None:
        if batch < 1:
            raise ValueError(f"{self.name}: batch must be positive, got {batch}")


#: Fraction of the (anchored) iteration an NLP model spends in serial
#: inter-iteration preparation at its optimum.  Large enough that bandwidth
#: contention on that prep produces the >= 50 % drops of Fig. 7.
NLP_SERIAL_PREP_SHARE = 0.32


def _profiles() -> Tuple[ModelProfile, ...]:
    return (
        ModelProfile(
            name="alexnet",
            domain=Domain.CV,
            arch="CNN",
            dataset="ImageNet",
            default_batch=256,
            max_batch=512,
            iter_time_s=1.385,  # Table II: 4 steps, ~260 iterations
            optimal_cores_1g=8,  # simplest CV net needs the most cores
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=240.0,
            bw_demand_gbps=12.0,  # Fig. 6: highest CV demand
            bw_batch_sensitivity=0.15,
            pcie_gbps=8.0,  # Sec. IV-C3: avg 8, peak 12
            pcie_peak_gbps=12.0,
            contention_sensitivity=0.9,  # the only bandwidth-sensitive CV net
            bw_bound_fraction=0.7,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.25,  # AlexNet's optimum shifts with batch
            multinode_overhead=0.28,
        ),
        ModelProfile(
            name="vgg16",
            domain=Domain.CV,
            arch="CNN",
            dataset="ImageNet",
            default_batch=64,
            max_batch=128,
            iter_time_s=5.143,  # Table II: 4 steps, ~70 iterations
            optimal_cores_1g=5,
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=528.0,
            bw_demand_gbps=6.0,
            bw_batch_sensitivity=0.1,
            pcie_gbps=4.0,
            pcie_peak_gbps=6.0,
            contention_sensitivity=0.08,
            bw_bound_fraction=0.5,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.27,
        ),
        ModelProfile(
            name="inception3",
            domain=Domain.CV,
            arch="CNN",
            dataset="ImageNet",
            default_batch=64,
            max_batch=128,
            iter_time_s=1.5,  # Table II: 3 steps, ~180 iterations
            optimal_cores_1g=4,
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=95.0,
            bw_demand_gbps=4.5,
            bw_batch_sensitivity=0.1,
            pcie_gbps=3.0,
            pcie_peak_gbps=4.5,
            contention_sensitivity=0.07,
            bw_bound_fraction=0.5,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.26,
        ),
        ModelProfile(
            name="resnet50",
            domain=Domain.CV,
            arch="CNN",
            dataset="ImageNet",
            default_batch=64,
            max_batch=128,
            iter_time_s=1.8,  # Table II: 3 steps, ~150 iterations
            optimal_cores_1g=3,  # most complex CV net needs the fewest cores
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=100.0,
            bw_demand_gbps=3.5,
            bw_batch_sensitivity=0.1,
            pcie_gbps=8.0,  # Sec. IV-C3 names ResNet-50 a PCIe heavy hitter
            pcie_peak_gbps=12.0,
            contention_sensitivity=0.1,
            bw_bound_fraction=0.5,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.25,
        ),
        ModelProfile(
            name="bat",
            domain=Domain.NLP,
            arch="RNN",
            dataset="SQUAD",
            default_batch=60,
            max_batch=120,
            iter_time_s=10.286,  # Table II: 4 steps, ~35 iterations
            optimal_cores_1g=5,
            pipelined=False,  # serial inter-iteration vector preparation
            in_memory_dataset=True,
            prep_parallelism_cap=5,
            weight_mb=40.0,
            bw_demand_gbps=0.8,  # Fig. 6: NLP demand is tiny
            bw_batch_sensitivity=0.0,
            pcie_gbps=0.3,
            pcie_peak_gbps=0.6,
            contention_sensitivity=4.0,  # Fig. 7: >= 50 % drop
            bw_bound_fraction=0.2,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.30,
        ),
        ModelProfile(
            name="transformer",
            domain=Domain.NLP,
            arch="Attention",
            dataset="WMT16",
            default_batch=4096,
            max_batch=8192,
            iter_time_s=1.038,  # Table II: 3 steps, ~260 iterations
            optimal_cores_1g=2,  # the one model already optimal at 2 cores
            pipelined=False,
            in_memory_dataset=True,
            prep_parallelism_cap=2,
            weight_mb=250.0,
            bw_demand_gbps=0.5,
            bw_batch_sensitivity=0.0,
            pcie_gbps=0.3,
            pcie_peak_gbps=0.5,
            contention_sensitivity=4.4,
            bw_bound_fraction=0.2,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.30,
        ),
        ModelProfile(
            name="wavenet",
            domain=Domain.SPEECH,
            arch="CNN",
            dataset="VCTK",
            default_batch=16,
            max_batch=32,
            iter_time_s=9.643,  # Table II: 3 steps, ~28 iterations
            optimal_cores_1g=6,  # audio re-cut makes it hungrier
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=20.0,
            bw_demand_gbps=8.0,
            bw_batch_sensitivity=0.5,  # re-cut traffic grows with batch
            pcie_gbps=0.8,
            pcie_peak_gbps=1.0,
            contention_sensitivity=0.55,
            bw_bound_fraction=0.5,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.28,
        ),
        ModelProfile(
            name="deepspeech",
            domain=Domain.SPEECH,
            arch="RNN",
            dataset="CommonVoice",
            default_batch=32,
            max_batch=64,
            iter_time_s=6.0,  # Table II: 3 steps, ~45 iterations
            optimal_cores_1g=4,
            pipelined=True,
            in_memory_dataset=False,
            prep_parallelism_cap=None,
            weight_mb=150.0,
            bw_demand_gbps=5.0,
            bw_batch_sensitivity=0.0,  # flat in batch (Fig. 6)
            pcie_gbps=0.6,
            pcie_peak_gbps=0.9,
            contention_sensitivity=1.6,  # more sensitive than Wavenet
            bw_bound_fraction=0.5,
            llc_sensitivity=0.0,
            prep_batch_exponent=1.0,
            multinode_overhead=0.29,
        ),
    )


_CATALOG: Dict[str, ModelProfile] = {
    profile.name: profile for profile in _profiles()
}

ALL_MODEL_NAMES: Tuple[str, ...] = tuple(_CATALOG)

#: Aliases the paper uses interchangeably.
_ALIASES = {
    "bi-att-flow": "bat",
    "inceptionv3": "inception3",
    "resnet-50": "resnet50",
}


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by (case-insensitive) name or paper alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    profile = _CATALOG.get(key)
    if profile is None:
        raise KeyError(
            f"unknown model {name!r}; known models: {', '.join(ALL_MODEL_NAMES)}"
        )
    return profile


def models_in_domain(domain: Domain) -> List[ModelProfile]:
    """All catalog models in the given category, in catalog order."""
    return [p for p in _CATALOG.values() if p.domain is domain]
