"""PCIe demand and co-location effects (Sec. IV-C3).

The paper's findings, all of which this module reproduces:

* no model consumes more than half of a PCIe 3.0 x16 slot (16 GB/s), so two
  co-located 1N1G jobs never contend;
* AlexNet and ResNet-50 peak at 12 GB/s (average 8 GB/s); NLP and speech
  models stay under 1 GB/s;
* co-locating a heavy CV model in a 1N2G configuration costs the neighbours
  5-10 %.

Arbitration uses *peak* demands (contention happens at the bursts), while
the resulting slowdown is scaled by the *average* H2D share — see
:func:`repro.perfmodel.speed.iteration_time`.
"""

from __future__ import annotations

from typing import Iterable

from repro.perfmodel.catalog import ModelProfile
from repro.perfmodel.stages import TrainSetup


def pcie_demand(profile: ModelProfile, setup: TrainSetup) -> float:
    """Average per-node host-to-device demand in GB/s."""
    return profile.pcie_gbps * setup.gpus_per_node


def pcie_peak_demand(profile: ModelProfile, setup: TrainSetup) -> float:
    """Peak per-node H2D demand in GB/s (what co-location arbitrates on)."""
    return profile.pcie_peak_gbps * setup.gpus_per_node


def pcie_grant_ratio(
    peak_demands_gbps: Iterable[float], capacity_gbps: float
) -> float:
    """Fraction of peak PCIe demand a node can serve, in (0, 1].

    Proportional degradation: once summed peaks exceed the host fabric,
    everyone's bursts stretch by the same ratio.
    """
    if capacity_gbps <= 0:
        raise ValueError(f"PCIe capacity must be positive: {capacity_gbps}")
    total = sum(peak_demands_gbps)
    if total <= capacity_gbps:
        return 1.0
    return capacity_gbps / total
