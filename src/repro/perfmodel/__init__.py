"""DNN-training performance model.

This package replaces the paper's real training runs.  It is an analytic
model of the CPU-GPU collaborative process of Fig. 4 — read, pre-process,
host-to-device transfer, GPU compute, weight update/synchronization — whose
constants are calibrated to the paper's measurements:

* per-iteration times from Table II (profiling steps x 90 s / iterations),
* optimal CPU core counts and their scaling rules from Fig. 5 / Sec. IV-B,
* memory-bandwidth demand from Fig. 6,
* contention sensitivity from Fig. 7,
* PCIe behaviour from Sec. IV-C3.

Everything the schedulers observe (training speed, GPU utilization,
bandwidth demand) comes out of these functions, so reproducing their shapes
is what makes the end-to-end cluster results reproduce.
"""

from repro.perfmodel.catalog import (
    ALL_MODEL_NAMES,
    Domain,
    ModelProfile,
    get_model,
    models_in_domain,
)
from repro.perfmodel.contention import UNCONTENDED, ContentionState
from repro.perfmodel.speed import TrainSetup, iteration_time, training_speed
from repro.perfmodel.utilization import gpu_utilization, optimal_cores
from repro.perfmodel.bandwidth import memory_bandwidth_demand
from repro.perfmodel.pcie import pcie_demand, pcie_peak_demand

__all__ = [
    "ALL_MODEL_NAMES",
    "ContentionState",
    "Domain",
    "ModelProfile",
    "TrainSetup",
    "UNCONTENDED",
    "get_model",
    "gpu_utilization",
    "iteration_time",
    "memory_bandwidth_demand",
    "models_in_domain",
    "optimal_cores",
    "pcie_demand",
    "pcie_peak_demand",
    "training_speed",
]
