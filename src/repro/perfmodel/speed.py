"""Iteration timing: the composition of the Fig. 4 pipeline.

:func:`iteration_time` prices one training iteration of a model under a
given training setup, per-node core count, and contention state.  All the
characterization figures (3, 5, 6, 7) and the runtime job-progress engine
are built on this single function.
"""

from __future__ import annotations

from repro.cluster.interconnect import Interconnect
from repro.perfmodel.catalog import CORE_OVERHEAD_S, ModelProfile
from repro.perfmodel.contention import (
    UNCONTENDED,
    ContentionState,
    cpu_work_slowdown,
)
from repro.perfmodel.stages import IterationBreakdown, TrainSetup

#: Per-slot PCIe 3.0 x16 bandwidth (Sec. IV-C3: "16GB/s").
PCIE_SLOT_GBPS = 16.0

#: Damping on the unhidden H2D share under PCIe contention; calibrated so a
#: CV heavy hitter co-located in 1N2G costs 5-10 % (Sec. IV-C3).
PCIE_PENALTY_SCALE = 0.3

#: In multi-node training the network-paced input pipeline keeps at most
#: this many prep workers busy per node (Sec. IV-B2: "the CPU requirements
#: of all models are no more than two cores").
MULTINODE_CORE_CAP = 2

_DEFAULT_INTERCONNECT = Interconnect()


def iteration_time(
    profile: ModelProfile,
    setup: TrainSetup,
    cores_per_node: int,
    contention: ContentionState = UNCONTENDED,
    interconnect: Interconnect = _DEFAULT_INTERCONNECT,
) -> IterationBreakdown:
    """Price one training iteration.

    Args:
        profile: the model being trained.
        setup: the aNbG configuration and batch size.
        cores_per_node: CPU cores allocated on each participating node.
        contention: shared-resource conditions (quiet node by default).
        interconnect: cluster network, for multi-node gradient sync.

    Returns:
        The stage-by-stage breakdown; ``.total_s`` is the iteration wall
        time and ``.utilization`` the GPU busy fraction.
    """
    if cores_per_node < 1:
        raise ValueError(
            f"{profile.name}: a training job needs at least one core, "
            f"got {cores_per_node}"
        )
    batch = setup.batch if setup.batch is not None else profile.default_batch
    batch_scale = batch / profile.default_batch
    gpu_s = profile.gpu_time_at(batch)
    anchor_iter_s = profile.iter_time_s * batch_scale

    # Stage 5 + multi-node gradient synchronization.  The physical
    # push/pull transfer is a floor; the calibrated term implements the
    # paper's measured 25-30 % degradation versus the single-node optimum
    # (Sec. IV-B2), which includes effects (stragglers, incast) the
    # physical model omits.
    if setup.num_nodes > 1:
        physical = interconnect.sync_time(profile.weight_bytes, setup.num_nodes)
        overhead_frac = profile.multinode_overhead
        calibrated = (1.0 / (1.0 - overhead_frac) - 1.0) * anchor_iter_s
        sync_s = max(physical, calibrated)
    else:
        sync_s = 0.0
    gpu_path = gpu_s + sync_s

    # Stages 1+2: data preparation work on this node's cores.
    prep_work = profile.prep_cpu_seconds(batch) * setup.gpus_per_node
    parallelism_cap = profile.prep_parallelism_cap
    if parallelism_cap is not None:
        parallelism_cap *= setup.gpus_per_node
    if setup.num_nodes > 1:
        # The network-paced input pipeline stalls every iteration on the
        # gradient sync, so at most MULTINODE_CORE_CAP workers' worth of
        # prep is live per window (Sec. IV-B2: all models need <= 2 cores).
        # The per-window work is bounded by what the single-node optimum
        # streams in one iteration.
        single_node_opt = (
            profile.optimal_cores_1g
            if profile.prep_parallelism_cap is None
            else min(profile.optimal_cores_1g, profile.prep_parallelism_cap)
        )
        prep_time_at_opt = profile.prep_cpu_seconds(batch) / single_node_opt
        cap = MULTINODE_CORE_CAP
        parallelism_cap = (
            cap if parallelism_cap is None else min(parallelism_cap, cap)
        )
        prep_work = min(prep_work, cap * prep_time_at_opt)
    effective_cores = cores_per_node
    if parallelism_cap is not None:
        effective_cores = min(effective_cores, parallelism_cap)
    slowdown = cpu_work_slowdown(
        contention,
        bw_bound_fraction=profile.bw_bound_fraction,
        contention_sensitivity=profile.contention_sensitivity,
        llc_sensitivity=profile.llc_sensitivity,
    )
    prep_s = prep_work / effective_cores * slowdown

    # Stage 3: H2D transfer is hidden by prefetch on a quiet node; under
    # PCIe contention the unhidden excess delays the iteration.
    overhead_s = CORE_OVERHEAD_S * cores_per_node
    pcie_penalty_s = 0.0
    if contention.pcie_grant_ratio < 1.0:
        base = max(prep_s, gpu_path) if profile.pipelined else prep_s + gpu_path
        h2d_fraction = profile.pcie_gbps / PCIE_SLOT_GBPS
        stretch = 1.0 / contention.pcie_grant_ratio - 1.0
        pcie_penalty_s = base * h2d_fraction * stretch * PCIE_PENALTY_SCALE

    return IterationBreakdown(
        prep_s=prep_s,
        gpu_s=gpu_s,
        sync_s=sync_s,
        pcie_penalty_s=pcie_penalty_s,
        overhead_s=overhead_s,
        pipelined=profile.pipelined,
    )


def training_speed(
    profile: ModelProfile,
    setup: TrainSetup,
    cores_per_node: int,
    contention: ContentionState = UNCONTENDED,
    interconnect: Interconnect = _DEFAULT_INTERCONNECT,
) -> float:
    """Training speed in iterations per second (the paper's Fig. 3 y-axis,
    up to the samples/iteration constant)."""
    breakdown = iteration_time(
        profile, setup, cores_per_node, contention, interconnect
    )
    return 1.0 / breakdown.total_s
