"""Shared-resource contention state and its effect on CPU-side work.

The contention a DNN training job experiences on a node is summarized by
four numbers, all produced by :mod:`repro.cluster`:

* ``bw_grant_ratio`` — the job's granted/demanded memory bandwidth (from the
  node's max-min arbitration).  Below 1.0 the job's bandwidth-bound prep
  work stretches directly.
* ``node_bw_pressure`` — total node bandwidth over capacity.  Past the
  threshold (75 %, Sec. V-D) the memory system's queueing delays inflate
  every memory access; the paper attributes the NLP models' >=50 % drops to
  this "bus" effect rather than to their (tiny) own bandwidth demand.
* ``llc_pressure`` — total LLC footprint over capacity.  The paper finds
  *no* model LLC-sensitive (Fig. 7), so the default sensitivity is zero,
  but the term is modeled so the finding is an experiment, not an axiom.
* ``pcie_grant_ratio`` — granted/demanded PCIe throughput, used by
  :mod:`repro.perfmodel.pcie`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Node bandwidth fraction beyond which latency effects kick in (Sec. V-D).
BANDWIDTH_PRESSURE_THRESHOLD = 0.75


@dataclass(frozen=True)
class ContentionState:
    """Snapshot of the shared-resource conditions a job sees on a node."""

    bw_grant_ratio: float = 1.0
    node_bw_pressure: float = 0.0
    llc_pressure: float = 0.0
    pcie_grant_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.bw_grant_ratio <= 1.0:
            raise ValueError(f"bw_grant_ratio out of (0, 1]: {self.bw_grant_ratio}")
        if not 0.0 < self.pcie_grant_ratio <= 1.0:
            raise ValueError(
                f"pcie_grant_ratio out of (0, 1]: {self.pcie_grant_ratio}"
            )
        if self.node_bw_pressure < 0 or self.llc_pressure < 0:
            raise ValueError(f"pressures must be non-negative: {self}")


#: The quiet-node baseline every characterization figure is normalized to.
UNCONTENDED = ContentionState()


def bandwidth_excess(state: ContentionState) -> float:
    """How far past the pressure threshold the node is, normalized to [0, ~].

    0.0 at or below the 75 % threshold, 1.0 at full capacity, and beyond 1.0
    when demand exceeds what the memory system can serve.
    """
    threshold = BANDWIDTH_PRESSURE_THRESHOLD
    if state.node_bw_pressure <= threshold:
        return 0.0
    return (state.node_bw_pressure - threshold) / (1.0 - threshold)


def effect_key(state: ContentionState) -> tuple:
    """Collapse a contention snapshot to the values the speed model reads.

    :func:`repro.perfmodel.speed.iteration_time` consumes contention only
    through :func:`cpu_work_slowdown` and the PCIe penalty branch, i.e.
    through exactly four derived quantities: the grant ratio, the
    *post-threshold* bandwidth excess, the *post-capacity* LLC excess, and
    the PCIe grant ratio.  Two snapshots with equal keys therefore price
    to bit-identical breakdowns even when their raw pressures differ —
    which is the common case: below the 75 % knee every co-resident
    arrival/resize wobbles ``node_bw_pressure`` without moving the key.
    Repricing memos keyed on this tuple stay byte-identical while hitting
    far more often than ones keyed on the raw snapshot.
    """
    return (
        state.bw_grant_ratio,
        bandwidth_excess(state),
        max(0.0, state.llc_pressure - 1.0),
        state.pcie_grant_ratio,
    )


def cpu_work_slowdown(
    state: ContentionState,
    *,
    bw_bound_fraction: float,
    contention_sensitivity: float,
    llc_sensitivity: float = 0.0,
) -> float:
    """Multiplier (>= 1) on the job's CPU-side work under contention.

    Composes three effects:

    1. the bandwidth-bound fraction ``beta`` of the prep work stretches by
       the inverse of the job's grant ratio (pure throughput starvation);
    2. the whole prep stretches by ``1 + sens * excess`` once the node is
       past the pressure threshold (latency/bus contention);
    3. an LLC term of the same form, zero-sensitivity by default.
    """
    if not 0.0 <= bw_bound_fraction <= 1.0:
        raise ValueError(f"bw_bound_fraction out of [0, 1]: {bw_bound_fraction}")
    if contention_sensitivity < 0 or llc_sensitivity < 0:
        raise ValueError("sensitivities must be non-negative")
    starvation = (1.0 - bw_bound_fraction) + bw_bound_fraction / state.bw_grant_ratio
    latency = 1.0 + contention_sensitivity * bandwidth_excess(state)
    llc_excess = max(0.0, state.llc_pressure - 1.0)
    llc = 1.0 + llc_sensitivity * llc_excess
    return starvation * latency * llc
