"""Supervision knobs for fault-tolerant sweep execution.

:class:`SupervisorConfig` is the single tuning surface of the worker
supervisor (:mod:`repro.sweep.supervisor`): how long a run may take, how
staleness is detected, how many times a failing spec is retried, and how
retry delays back off.

Backoff delays are **deterministic**: the jitter term is drawn from a
:class:`random.Random` seeded via :func:`repro.sim.rng.derive_seed` from
``(seed, spec label, failure count)``, so two invocations of the same
sweep produce the identical retry schedule — a property the progress
ledger's tests rely on, and codalint CL002 would reject anything less.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class SupervisorConfig:
    """How the sweep supervisor babysits its worker processes.

    ``max_retries`` bounds *retries*, not attempts: a spec runs at most
    ``max_retries + 1`` times before it is quarantined as poison.
    ``run_timeout_s``/``heartbeat_timeout_s`` default to ``None`` (off)
    because the right ceiling depends entirely on the scenario size.
    """

    #: Retries granted after the first failed attempt; beyond this the
    #: spec is quarantined so one poison cell cannot sink the grid.
    max_retries: int = 2
    #: Wall-clock ceiling per attempt; the worker is killed past it.
    run_timeout_s: Optional[float] = None
    #: Cadence of worker liveness heartbeats over the result pipe.
    heartbeat_interval_s: float = 0.5
    #: Silence window after which a worker is presumed hung and killed
    #: (catches frozen processes that a run timeout alone would let
    #: linger until the full ceiling).  ``None`` disables the check.
    heartbeat_timeout_s: Optional[float] = None
    #: First retry delay; doubles per subsequent failure.
    backoff_base_s: float = 0.5
    #: Ceiling on the exponential term.
    backoff_cap_s: float = 30.0
    #: Fractional jitter added on top of the exponential term.
    backoff_jitter: float = 0.1
    #: Root seed of the deterministic jitter stream.
    seed: int = 0
    #: Upper bound on one supervision-loop wait (keeps the loop
    #: responsive to deadlines without busy-polling).
    poll_interval_s: float = 0.2
    #: Consecutive worker *spawn* failures (not run failures) tolerated
    #: before the supervisor degrades to in-process serial execution.
    spawn_failure_limit: int = 3
    #: Root directory of per-cell checkpoint directories
    #: (``<dir>/<sanitized label>/ckpt-*.json``).  ``None`` disables
    #: checkpoint-aware execution entirely: attempts run the exact
    #: pre-checkpoint ``spec.execute()`` path.
    checkpoint_dir: Optional[str] = None
    #: Fired-event cadence of the periodic checkpoint writer.  ``None``
    #: with ``checkpoint_dir`` set still *restores* from an existing
    #: checkpoint but writes no new ones.
    checkpoint_every_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError(
                f"run_timeout_s must be positive: {self.run_timeout_s}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive: "
                f"{self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s is not None and (
            self.heartbeat_timeout_s <= self.heartbeat_interval_s
        ):
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s: "
                f"{self.heartbeat_timeout_s} <= {self.heartbeat_interval_s}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0: {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_cap_s ({self.backoff_cap_s}) below backoff_base_s "
                f"({self.backoff_base_s})"
            )
        if self.backoff_jitter < 0:
            raise ValueError(
                f"backoff_jitter must be >= 0: {self.backoff_jitter}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive: {self.poll_interval_s}"
            )
        if self.spawn_failure_limit < 1:
            raise ValueError(
                f"spawn_failure_limit must be >= 1: {self.spawn_failure_limit}"
            )
        if self.checkpoint_every_events is not None and (
            self.checkpoint_every_events < 1
        ):
            raise ValueError(
                "checkpoint_every_events must be >= 1 event: "
                f"{self.checkpoint_every_events}"
            )

    def backoff_s(self, label: str, failures: int) -> float:
        """Delay before the retry that follows failure number ``failures``.

        Exponential in the failure count, capped, with seeded jitter —
        the same ``(seed, label, failures)`` triple always yields the
        same delay.
        """
        if failures <= 0 or self.backoff_base_s <= 0:
            return 0.0
        base = min(
            self.backoff_cap_s, self.backoff_base_s * (2.0 ** (failures - 1))
        )
        jitter = random.Random(
            derive_seed(self.seed, f"backoff:{label}:{failures}")
        ).random()
        return base * (1.0 + self.backoff_jitter * jitter)
