"""The worker supervisor: crash-, hang-, and poison-tolerant fan-out.

:func:`run_supervised` executes a batch of independent
:class:`~repro.parallel.RunSpec` runs with one dedicated ``spawn``
process per attempt, supervised over a one-way pipe:

* the worker streams ``("hb", seq)`` heartbeats from a daemon thread and
  exactly one terminal message — ``("ok", payload)`` or
  ``("error", reason)``;
* the supervisor detects **crashes** (the process exits without a
  terminal message), **overruns** (wall clock past
  ``run_timeout_s`` — the worker is killed), and **hangs** (no heartbeat
  within ``heartbeat_timeout_s`` — ditto);
* every failure is retried with deterministic exponential backoff +
  seeded jitter, at most ``max_retries`` times; past that the spec is
  **quarantined** and the rest of the grid keeps going;
* repeated worker *spawn* failures (or ``jobs=1``) degrade gracefully to
  in-process serial execution — retries and quarantine still apply, but
  timeouts cannot be enforced without a process boundary;
* with :attr:`SupervisorConfig.checkpoint_dir` set, attempts are
  **checkpoint-aware**: each run periodically snapshots itself (see
  :mod:`repro.checkpoint`), a retry resumes from the cell's newest
  checkpoint instead of replaying from scratch, and a damaged checkpoint
  falls back to a from-scratch attempt rather than sinking the retry.

Results are plain serialized payloads (the exact JSON round trip the
cache uses), so a supervised run is byte-identical to a serial one —
and, because restore is byte-identical, to a checkpointed-and-resumed
one.

Test-only chaos hooks (inert unless the ``REPRO_TEST_*`` environment
variables are set) let the failure paths be exercised end-to-end: see
:func:`_maybe_inject_failure`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    build_runner,
    latest_checkpoint,
    read_checkpoint,
    restore_run,
)
from repro.metrics.serialize import run_result_to_dict
from repro.parallel.spec import RunSpec
from repro.sweep.config import SupervisorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import SimulationRunner

#: Terminal outcome statuses.
OUTCOME_OK = "ok"
OUTCOME_QUARANTINED = "quarantined"

#: Chaos-injection environment variables (test/CI only; unset = inert).
#: ``REPRO_TEST_CRASH_SPEC`` — comma-separated spec labels whose worker
#: process dies on startup, per ``REPRO_TEST_CRASH_MODE`` (``exit`` |
#: ``kill`` | ``stop`` | ``hang`` | ``midrun``); ``midrun`` SIGKILLs the
#: worker *mid-simulation*, after ``REPRO_TEST_CRASH_EVENT`` fired
#: events (checkpoint-aware attempts only — the kill lands after that
#: event's checkpoint, if due, is already durable);
#: ``REPRO_TEST_RAISE_SPEC`` — labels whose attempt raises in-process
#: (works on the serial path too); ``REPRO_TEST_CRASH_ONCE_DIR`` — a
#: marker directory making either injection fire once per label instead
#: of every attempt.
CRASH_SPEC_ENV = "REPRO_TEST_CRASH_SPEC"
CRASH_MODE_ENV = "REPRO_TEST_CRASH_MODE"
CRASH_EVENT_ENV = "REPRO_TEST_CRASH_EVENT"
CRASH_ONCE_DIR_ENV = "REPRO_TEST_CRASH_ONCE_DIR"
RAISE_SPEC_ENV = "REPRO_TEST_RAISE_SPEC"

#: Exit code of a chaos-injected worker death.
_CHAOS_EXIT_CODE = 13

#: Grace period when reaping a killed or finished worker process.
_REAP_TIMEOUT_S = 5.0


def _wall_now() -> float:
    """Wall-clock seconds for supervising real worker processes.

    The supervisor times actual host processes, so the host clock is the
    only correct source here; simulation code keeps reading the engine
    Clock (that is what codalint CL001 polices).
    """
    return time.monotonic()  # codalint: disable=CL001


@dataclass
class RunOutcome:
    """Per-spec verdict of a supervised batch, aligned by index."""

    index: int
    label: str
    #: "" while in flight; ``OUTCOME_OK`` or ``OUTCOME_QUARANTINED`` at
    #: the end of the batch.
    status: str = ""
    #: Attempts actually executed (1 on the clean path).
    attempts: int = 0
    #: Serialized result payload (``None`` when quarantined).
    payload: Optional[Dict[str, Any]] = None
    #: One reason per failed attempt, in order.
    failures: List[str] = field(default_factory=list)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def last_failure(self) -> str:
        return self.failures[-1] if self.failures else ""


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision transition, streamed to the caller's sink.

    ``kind`` is one of ``attempt`` (a run started), ``ok``, ``failure``,
    ``retry`` (a failure that will be retried), ``quarantine``,
    ``degrade`` (the whole batch fell back to serial; ``index`` is -1),
    ``restored`` (a checkpoint-aware attempt resumed from the checkpoint
    named in ``reason``), or ``checkpoint-fallback`` (the cell's newest
    checkpoint was unusable and the attempt started from scratch;
    ``reason`` says why).
    """

    kind: str
    index: int = -1
    label: str = ""
    attempt: int = 0
    reason: str = ""
    #: On ``ok`` events, the serialized run result.  Streamed so callers
    #: can persist each result the moment it exists — a supervisor batch
    #: can outlive the caller's process by hours, and a result held only
    #: in memory until the batch returns is a result a crash loses.
    payload: Optional[Dict[str, Any]] = None


EventSink = Callable[[SupervisorEvent], None]

#: In-attempt notices (``restored`` / ``checkpoint-fallback``) flow
#: through this callback: over the pipe from a worker, directly to the
#: event sink on the serial path.
Notify = Callable[[str, str], None]


def _no_event(event: SupervisorEvent) -> None:
    return None


class SupervisorInterrupted(Exception):
    """SIGINT/SIGTERM arrived mid-batch.

    Raised by :func:`run_supervised` after in-flight workers are reaped;
    ``outcomes`` holds the partial verdicts — unsettled cells keep an
    empty status, which the sweep service journals as ``interrupted``.
    """

    def __init__(self, outcomes: List[RunOutcome]) -> None:
        super().__init__("supervised batch interrupted")
        self.outcomes = outcomes


def cell_checkpoint_dir(root: str, label: str) -> str:
    """Where one cell keeps its checkpoints under the sweep's root."""
    return os.path.join(root, label.replace(":", "_").replace("/", "_"))


# ---------------------------------------------------------------------- #
# Chaos injection (test-only, env-gated)


def _labels_from_env(name: str) -> List[str]:
    return [
        part.strip()
        for part in os.environ.get(name, "").split(",")
        if part.strip()
    ]


def _chaos_armed(env_name: str, label: str) -> bool:
    """Whether the env-gated injection should fire for ``label`` now.

    With ``REPRO_TEST_CRASH_ONCE_DIR`` set, each label fires once: the
    marker file is created *before* dying, so the retry sails through —
    the transient-crash shape real fleets exhibit.  Without the marker
    directory the injection fires on every attempt (a poison spec).
    """
    if label not in _labels_from_env(env_name):
        return False
    once_dir = os.environ.get(CRASH_ONCE_DIR_ENV)
    if not once_dir:
        return True
    marker = Path(once_dir) / (
        env_name.lower() + "-" + label.replace(":", "_")
    )
    if marker.exists():
        return False
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()
    return True


def _maybe_inject_failure(label: str) -> None:
    """Process-level chaos: die the way real workers die (worker only)."""
    if os.environ.get(CRASH_MODE_ENV) == "midrun":
        # Fires inside the attempt, after N simulation events — see
        # _arm_midrun_chaos.  Consuming the once-marker here would
        # disarm it before the run even starts.
        return
    if not _chaos_armed(CRASH_SPEC_ENV, label):
        return
    mode = os.environ.get(CRASH_MODE_ENV, "exit")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "stop":
        # Freeze every thread (heartbeats included); only the
        # supervisor's liveness check can reap us now.
        os.kill(os.getpid(), signal.SIGSTOP)
        return
    elif mode == "hang":
        # Heartbeats keep flowing while the "run" never finishes — the
        # shape only a run timeout catches.
        time.sleep(3600.0)
        return
    os._exit(_CHAOS_EXIT_CODE)


def _arm_midrun_chaos(label: str, runner: "SimulationRunner") -> None:
    """Mid-simulation chaos: SIGKILL the worker after N fired events.

    Registered *after* the cell's :class:`CheckpointWriter`, so when the
    kill event is also a checkpoint event the snapshot is durable before
    the process dies — the exact torn-mid-run shape the restore gate in
    CI replays.
    """
    if os.environ.get(CRASH_MODE_ENV) != "midrun":
        return
    if not _chaos_armed(CRASH_SPEC_ENV, label):
        return
    target = int(os.environ.get(CRASH_EVENT_ENV, "500"))
    engine = runner.engine

    def die_midrun(event: object) -> None:
        if engine.fired >= target:
            os.kill(os.getpid(), signal.SIGKILL)

    engine.add_observer(die_midrun)


def _execute_attempt(
    spec: RunSpec,
    config: SupervisorConfig,
    notify: Optional[Notify] = None,
) -> Dict[str, Any]:
    """One attempt at a spec, with the in-process raise hook applied.

    Without :attr:`SupervisorConfig.checkpoint_dir` this is exactly
    ``spec.execute()`` — the zero-cost-when-off path.  With it, the
    attempt resumes from the cell's newest checkpoint when one exists
    (reporting ``restored`` via ``notify``), falls back to a
    from-scratch run when that checkpoint is damaged or stale
    (``checkpoint-fallback``), and checkpoints periodically when
    :attr:`SupervisorConfig.checkpoint_every_events` is set.
    """
    label = spec.label()
    if _chaos_armed(RAISE_SPEC_ENV, label):
        raise RuntimeError(f"injected failure for {label}")
    if config.checkpoint_dir is None:
        return run_result_to_dict(spec.execute())
    cell_dir = cell_checkpoint_dir(config.checkpoint_dir, label)
    runner: Optional["SimulationRunner"] = None
    resume_path = latest_checkpoint(cell_dir)
    if resume_path is not None:
        try:
            runner = restore_run(spec, read_checkpoint(resume_path))
        except CheckpointError as error:
            if notify is not None:
                notify(
                    "checkpoint-fallback",
                    f"unusable checkpoint "
                    f"{os.path.basename(resume_path)} ({error}); "
                    "starting from scratch",
                )
            runner = None
        else:
            if notify is not None:
                notify("restored", resume_path)
    if runner is None:
        runner = build_runner(spec)
    if config.checkpoint_every_events is not None:
        runner.engine.add_observer(
            CheckpointWriter(
                runner, cell_dir, config.checkpoint_every_events, spec=spec
            )
        )
    _arm_midrun_chaos(label, runner)
    return run_result_to_dict(
        runner.run(until=spec.resolved_scenario().horizon_s)
    )


# ---------------------------------------------------------------------- #
# The worker side


def _supervised_worker(
    spec: RunSpec, conn: Connection, config: SupervisorConfig
) -> None:
    """Process entry point: run one spec, streaming heartbeats.

    Module-level so the ``spawn`` context can import it.  All pipe
    writes share a lock because the heartbeat thread and the main thread
    both send.  Checkpoint notices (``restored`` and
    ``checkpoint-fallback``) travel the same pipe as non-terminal
    messages.
    """
    label = spec.label()
    lock = threading.Lock()
    stop = threading.Event()

    def send(message: Tuple[str, Any]) -> None:
        with lock:
            try:
                conn.send(message)
            except (OSError, ValueError):
                # The supervisor is gone (killed us, or died itself);
                # nothing useful is left to report to.
                pass

    send(("hb", 0))  # startup heartbeat: spawn + imports succeeded

    def beat() -> None:
        sequence = 1
        while not stop.wait(config.heartbeat_interval_s):
            send(("hb", sequence))
            sequence += 1

    threading.Thread(target=beat, daemon=True, name="sweep-heartbeat").start()
    _maybe_inject_failure(label)
    try:
        payload = _execute_attempt(
            spec, config, lambda kind, detail: send((kind, detail))
        )
    except Exception as error:  # codalint: disable=CL004
        # The process boundary is exactly where arbitrary spec failures
        # must be marshalled (not propagated): the supervisor decides
        # whether this attempt is retried or the spec quarantined.
        send(("error", f"{type(error).__name__}: {error}"))
    else:
        send(("ok", payload))
    finally:
        stop.set()
        conn.close()


# ---------------------------------------------------------------------- #
# The supervisor side


@dataclass
class _ActiveRun:
    index: int
    process: "multiprocessing.process.BaseProcess"
    conn: Connection
    deadline: Optional[float]
    last_heartbeat: float
    #: Checkpoint notices drained off the pipe, pending emission.
    notices: List[Tuple[str, str]] = field(default_factory=list)


def _launch(
    context: "multiprocessing.context.SpawnContext",
    spec: RunSpec,
    config: SupervisorConfig,
) -> Tuple["multiprocessing.process.BaseProcess", Connection]:
    """Start one worker; returns (process, supervisor's receive end).

    Separated out so tests can monkeypatch it to simulate spawn-level
    infrastructure failures.
    """
    recv_conn, send_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_supervised_worker,
        args=(spec, send_conn, config),
        daemon=True,
    )
    process.start()
    # Drop the parent's copy of the send end so a dead worker reads as
    # EOF instead of a pipe that never closes.
    send_conn.close()
    return process, recv_conn


def _reap(process: "multiprocessing.process.BaseProcess") -> None:
    """Kill (if needed) and join a worker, never hanging the supervisor."""
    if process.is_alive():
        process.kill()
    process.join(timeout=_REAP_TIMEOUT_S)


def _pump(active: _ActiveRun, now: float) -> Optional[Tuple[str, Any]]:
    """Drain buffered messages; return the terminal one, if any.

    Heartbeats refresh ``last_heartbeat`` and are swallowed; checkpoint
    notices are queued on ``active.notices`` for the collect loop to
    emit.  ``eof`` means the worker closed (or died on) the pipe without
    a terminal message — a crash.
    """
    try:
        while active.conn.poll():
            kind, detail = active.conn.recv()
            if kind == "hb":
                active.last_heartbeat = now
            elif kind in ("restored", "checkpoint-fallback"):
                active.notices.append((str(kind), str(detail)))
            else:
                return (str(kind), detail)
    except (EOFError, OSError):
        return ("eof", None)
    return None


def run_supervised(
    specs: Sequence[RunSpec],
    *,
    jobs: int,
    config: Optional[SupervisorConfig] = None,
    on_event: Optional[EventSink] = None,
) -> List[RunOutcome]:
    """Execute ``specs`` under supervision; outcomes align by index.

    Never raises on run failures: every spec ends ``ok`` or
    ``quarantined`` and the batch always completes.  ``jobs <= 1`` takes
    the in-process serial path directly (no spawn overhead, no timeout
    enforcement); repeated spawn failures degrade to it mid-batch.

    A SIGINT/SIGTERM (``KeyboardInterrupt``) does raise — as
    :class:`SupervisorInterrupted`, after in-flight workers are reaped,
    carrying the partial outcomes so the caller can journal and flush
    what already settled.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    config = config if config is not None else SupervisorConfig()
    emit = on_event if on_event is not None else _no_event
    outcomes = [
        RunOutcome(index=index, label=spec.label())
        for index, spec in enumerate(specs)
    ]
    try:
        if jobs > 1 and len(specs) > 1:
            degraded = _run_spawned(specs, outcomes, jobs, config, emit)
            if degraded is not None:
                emit(SupervisorEvent(kind="degrade", reason=degraded))
                _run_serial(specs, outcomes, config, emit)
        else:
            _run_serial(specs, outcomes, config, emit)
    except KeyboardInterrupt:
        raise SupervisorInterrupted(outcomes) from None
    return outcomes


def _run_serial(
    specs: Sequence[RunSpec],
    outcomes: List[RunOutcome],
    config: SupervisorConfig,
    emit: EventSink,
) -> None:
    """In-process fallback: retries and quarantine, no preemption."""
    for outcome in outcomes:
        if outcome.status:
            continue  # already settled by the spawn path
        spec = specs[outcome.index]

        def notify(kind: str, detail: str, outcome: RunOutcome = outcome) -> None:
            emit(
                SupervisorEvent(
                    kind=kind,
                    index=outcome.index,
                    label=outcome.label,
                    attempt=outcome.attempts,
                    reason=detail,
                )
            )

        while True:
            outcome.attempts += 1
            emit(
                SupervisorEvent(
                    kind="attempt",
                    index=outcome.index,
                    label=outcome.label,
                    attempt=outcome.attempts,
                )
            )
            try:
                payload = _execute_attempt(spec, config, notify)
            except Exception as error:  # codalint: disable=CL004
                # Serial supervision must survive arbitrary spec
                # failures to retry or quarantine them, same as the
                # process boundary does.
                reason = f"{type(error).__name__}: {error}"
                if not _note_failure(outcome, config, emit, reason):
                    break
                delay = config.backoff_s(outcome.label, len(outcome.failures))
                if delay > 0:
                    time.sleep(delay)
            else:
                _note_success(outcome, payload, emit)
                break


def _note_success(
    outcome: RunOutcome, payload: Dict[str, Any], emit: EventSink
) -> None:
    outcome.status = OUTCOME_OK
    outcome.payload = payload
    emit(
        SupervisorEvent(
            kind="ok",
            index=outcome.index,
            label=outcome.label,
            attempt=outcome.attempts,
            payload=payload,
        )
    )


def _note_failure(
    outcome: RunOutcome,
    config: SupervisorConfig,
    emit: EventSink,
    reason: str,
) -> bool:
    """Record one failed attempt; True when a retry is still allowed."""
    outcome.failures.append(reason)
    emit(
        SupervisorEvent(
            kind="failure",
            index=outcome.index,
            label=outcome.label,
            attempt=outcome.attempts,
            reason=reason,
        )
    )
    if outcome.attempts > config.max_retries:
        outcome.status = OUTCOME_QUARANTINED
        emit(
            SupervisorEvent(
                kind="quarantine",
                index=outcome.index,
                label=outcome.label,
                attempt=outcome.attempts,
                reason=reason,
            )
        )
        return False
    emit(
        SupervisorEvent(
            kind="retry",
            index=outcome.index,
            label=outcome.label,
            attempt=outcome.attempts,
            reason=reason,
        )
    )
    return True


def _run_spawned(
    specs: Sequence[RunSpec],
    outcomes: List[RunOutcome],
    jobs: int,
    config: SupervisorConfig,
    emit: EventSink,
) -> Optional[str]:
    """The spawn-pool supervision loop.

    Returns ``None`` when every outcome settled, or a degradation reason
    — in which case still-unsettled outcomes are left for the serial
    fallback (any in-flight workers are reaped and their aborted
    attempts un-charged).
    """
    context = multiprocessing.get_context("spawn")
    #: (not-before wall time, index) of runs awaiting (re)launch.
    pending: List[Tuple[float, int]] = [
        (0.0, index) for index in range(len(specs))
    ]
    active: Dict[int, _ActiveRun] = {}

    def fail(index: int, reason: str, now: float) -> None:
        outcome = outcomes[index]
        if _note_failure(outcome, config, emit, reason):
            delay = config.backoff_s(outcome.label, len(outcome.failures))
            pending.append((now + delay, index))

    def drain_notices(act: _ActiveRun) -> None:
        while act.notices:
            kind, detail = act.notices.pop(0)
            emit(
                SupervisorEvent(
                    kind=kind,
                    index=act.index,
                    label=outcomes[act.index].label,
                    attempt=outcomes[act.index].attempts,
                    reason=detail,
                )
            )

    try:
        return _spawned_loop(
            specs, outcomes, jobs, config, emit,
            context, pending, active, fail, drain_notices,
        )
    except KeyboardInterrupt:
        # Graceful shutdown: reap in-flight workers before the interrupt
        # propagates; their unfinished attempts stay journalled as
        # attempts, and the caller flushes whatever already settled.
        for act in list(active.values()):
            _reap(act.process)
            act.conn.close()
        active.clear()
        raise


def _spawned_loop(
    specs: Sequence[RunSpec],
    outcomes: List[RunOutcome],
    jobs: int,
    config: SupervisorConfig,
    emit: EventSink,
    context: "multiprocessing.context.SpawnContext",
    pending: List[Tuple[float, int]],
    active: Dict[int, _ActiveRun],
    fail: Callable[[int, str, float], None],
    drain_notices: Callable[[_ActiveRun], None],
) -> Optional[str]:
    spawn_failures = 0
    while pending or active:
        now = _wall_now()
        # -- launch ------------------------------------------------------
        pending.sort()
        while pending and len(active) < jobs and pending[0][0] <= now:
            _, index = pending.pop(0)
            outcome = outcomes[index]
            outcome.attempts += 1
            try:
                process, conn = _launch(context, specs[index], config)
            except OSError as error:
                # Infrastructure, not the spec: un-charge the attempt.
                outcome.attempts -= 1
                spawn_failures += 1
                if spawn_failures >= config.spawn_failure_limit:
                    for act in list(active.values()):
                        _reap(act.process)
                        act.conn.close()
                        outcomes[act.index].attempts -= 1
                    active.clear()
                    return (
                        f"{spawn_failures} consecutive worker spawn "
                        f"failures (last: {error}); falling back to "
                        "in-process serial execution"
                    )
                pending.append((now + config.poll_interval_s, index))
                break  # re-sort and cool off before the next launch try
            spawn_failures = 0
            emit(
                SupervisorEvent(
                    kind="attempt",
                    index=index,
                    label=outcome.label,
                    attempt=outcome.attempts,
                )
            )
            deadline = (
                now + config.run_timeout_s
                if config.run_timeout_s is not None
                else None
            )
            active[index] = _ActiveRun(
                index=index,
                process=process,
                conn=conn,
                deadline=deadline,
                last_heartbeat=now,
            )

        # -- wait --------------------------------------------------------
        timeout = _wait_timeout_s(active, pending, config, now)
        if active:
            connection_wait(
                [act.conn for act in active.values()], timeout=timeout
            )
        elif pending:
            time.sleep(timeout)

        # -- collect -----------------------------------------------------
        now = _wall_now()
        for index in sorted(active):
            act = active[index]
            terminal = _pump(act, now)
            if terminal is None and not act.process.is_alive():
                # Exited between polls; drain any message that raced out.
                terminal = _pump(act, now)
                if terminal is None:
                    terminal = ("eof", None)
            # Emit checkpoint notices before the terminal verdict so a
            # ``restored`` line always precedes its attempt's ``ok``.
            drain_notices(act)
            if terminal is not None:
                kind, detail = terminal
                _reap(act.process)
                act.conn.close()
                del active[index]
                if kind == "ok":
                    _note_success(outcomes[index], detail, emit)
                elif kind == "error":
                    fail(index, str(detail), now)
                else:
                    code = act.process.exitcode
                    fail(index, f"worker crashed (exit code {code})", now)
                continue
            expired = (
                act.deadline is not None and now >= act.deadline
            )
            silent = (
                config.heartbeat_timeout_s is not None
                and now - act.last_heartbeat >= config.heartbeat_timeout_s
            )
            if expired or silent:
                _reap(act.process)
                act.conn.close()
                del active[index]
                if expired:
                    reason = (
                        "run exceeded timeout "
                        f"({config.run_timeout_s:g}s); worker killed"
                    )
                else:
                    reason = (
                        "no heartbeat for "
                        f"{config.heartbeat_timeout_s:g}s; worker presumed "
                        "hung and killed"
                    )
                fail(index, reason, now)
    return None


def _wait_timeout_s(
    active: Dict[int, _ActiveRun],
    pending: List[Tuple[float, int]],
    config: SupervisorConfig,
    now: float,
) -> float:
    """How long the loop may block before the next deadline matters."""
    horizon = now + config.poll_interval_s
    for act in active.values():
        if act.deadline is not None:
            horizon = min(horizon, act.deadline)
        if config.heartbeat_timeout_s is not None:
            horizon = min(
                horizon, act.last_heartbeat + config.heartbeat_timeout_s
            )
    if pending:
        horizon = min(horizon, min(ready for ready, _ in pending))
    return max(0.01, horizon - now)
