"""Fault-tolerant, resumable sweep execution.

Layers, bottom to top:

- :mod:`repro.sweep.config` — :class:`SupervisorConfig`, the single
  tuning surface (retries, timeouts, deterministic backoff);
- :mod:`repro.sweep.ledger` — the crash-safe append-only JSONL journal;
- :mod:`repro.sweep.supervisor` — per-run worker processes with
  heartbeat liveness, kill-on-timeout, retry, and poison quarantine;
- :mod:`repro.sweep.report` — markdown partial-results reports;
- :mod:`repro.sweep.service` — :func:`run_sweep`, tying cache-aware
  skip, supervised execution, journalling, and reporting together.

``repro.parallel`` deliberately does not import this package at module
scope (only lazily, from inside :class:`~repro.parallel.SimPool`), so
the import direction stays ``sweep -> parallel``.
"""

from repro.sweep.config import SupervisorConfig
from repro.sweep.ledger import (
    ALL_STATUSES,
    COMPLETE_STATUSES,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    STATUS_RUNNING,
    LedgerEntry,
    LedgerError,
    LedgerState,
    SweepLedger,
)
from repro.sweep.supervisor import (
    OUTCOME_OK,
    OUTCOME_QUARANTINED,
    RunOutcome,
    SupervisorEvent,
    SupervisorInterrupted,
    cell_checkpoint_dir,
    run_supervised,
)
from repro.sweep.report import render_sweep_report
from repro.sweep.service import (
    CHECKPOINTS_DIR_NAME,
    FORCE_SPAWN_ENV,
    LEDGER_NAME,
    MANIFEST_NAME,
    REPORT_NAME,
    CellOutcome,
    SweepInterrupted,
    SweepResult,
    effective_jobs,
    run_sweep,
)

__all__ = [
    "ALL_STATUSES",
    "COMPLETE_STATUSES",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_INTERRUPTED",
    "STATUS_OK",
    "STATUS_PENDING",
    "STATUS_QUARANTINED",
    "STATUS_RUNNING",
    "OUTCOME_OK",
    "OUTCOME_QUARANTINED",
    "CHECKPOINTS_DIR_NAME",
    "FORCE_SPAWN_ENV",
    "LEDGER_NAME",
    "MANIFEST_NAME",
    "REPORT_NAME",
    "CellOutcome",
    "LedgerEntry",
    "LedgerError",
    "LedgerState",
    "RunOutcome",
    "SupervisorConfig",
    "SupervisorEvent",
    "SupervisorInterrupted",
    "SweepInterrupted",
    "SweepLedger",
    "SweepResult",
    "cell_checkpoint_dir",
    "effective_jobs",
    "render_sweep_report",
    "run_supervised",
    "run_sweep",
]
