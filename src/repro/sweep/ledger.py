"""The crash-safe sweep progress ledger.

An append-only JSONL journal: one line per state transition of one grid
cell, identified by its content-addressed cache key.  Appends are
flushed and fsynced line-by-line, so the only damage a crash (or a
concurrent reader) can observe is a **truncated final line** — and
:meth:`SweepLedger.replay` tolerates exactly that, dropping unparseable
trailing lines while refusing garbage in the middle of the file (which
would mean real corruption, not a crash).

The journal is *monotonic per key*: later lines supersede earlier ones
(``replay`` keeps the last entry per key), so re-running a sweep simply
appends the new transitions after the old — no rewrite, no lock, and a
reader at any instant sees a consistent prefix.

Entries carry a sequence number instead of a wall-clock timestamp:
ledgers replay byte-identically across hosts, and simulation-adjacent
code never reads the host clock (codalint CL001).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Type, Union

#: Cell statuses journalled by the sweep service, in lifecycle order.
STATUS_PENDING = "pending"
STATUS_RUNNING = "running"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_QUARANTINED = "quarantined"
STATUS_CACHED = "cached"
#: A SIGINT/SIGTERM stopped the sweep while this cell was unfinished;
#: deliberately *not* a complete status, so a resume re-runs the cell.
STATUS_INTERRUPTED = "interrupted"

ALL_STATUSES = (
    STATUS_PENDING,
    STATUS_RUNNING,
    STATUS_OK,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    STATUS_CACHED,
    STATUS_INTERRUPTED,
)

#: Statuses that mean "this cell's result exists and is reusable".
COMPLETE_STATUSES = (STATUS_OK, STATUS_CACHED)

#: Failure details are excerpted to keep the journal line-sized.
_DETAIL_LIMIT = 500


class LedgerError(ValueError):
    """The ledger file is damaged beyond the tolerated truncated tail."""


@dataclass(frozen=True)
class LedgerEntry:
    """One journalled transition of one grid cell."""

    seq: int
    key: str
    label: str
    status: str
    attempt: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in ALL_STATUSES:
            raise ValueError(f"unknown ledger status: {self.status!r}")

    def to_json(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "key": self.key,
                "label": self.label,
                "status": self.status,
                "attempt": self.attempt,
                "detail": self.detail,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_line(cls, line: str) -> "LedgerEntry":
        data = json.loads(line)
        return cls(
            seq=int(data["seq"]),
            key=str(data["key"]),
            label=str(data["label"]),
            status=str(data["status"]),
            attempt=int(data.get("attempt", 0)),
            detail=str(data.get("detail", "")),
        )


@dataclass
class LedgerState:
    """What a replayed journal says about the sweep so far."""

    entries: List[LedgerEntry]
    #: Last entry per key — the cell's current state.
    last: Dict[str, LedgerEntry]
    #: Unparseable trailing lines dropped (crash-truncated tail).
    dropped_tail: int = 0

    def complete_keys(self) -> List[str]:
        return [
            key
            for key, entry in self.last.items()
            if entry.status in COMPLETE_STATUSES
        ]


class SweepLedger:
    """Append-side handle on one sweep's journal file."""

    def __init__(self, path: Union[str, Path], *, next_seq: int = 0) -> None:
        self.path = Path(path)
        self._next_seq = next_seq
        self._handle: Optional[TextIO] = None

    # ------------------------------------------------------------------ #
    # Writing

    def append(
        self,
        key: str,
        label: str,
        status: str,
        *,
        attempt: int = 0,
        detail: str = "",
    ) -> LedgerEntry:
        """Journal one transition; the line is durable on return."""
        entry = LedgerEntry(
            seq=self._next_seq,
            key=key,
            label=label,
            status=status,
            attempt=attempt,
            detail=detail[:_DETAIL_LIMIT],
        )
        self._next_seq += 1
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(entry.to_json() + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        return entry

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reading

    @staticmethod
    def replay(path: Union[str, Path]) -> LedgerState:
        """Reconstruct the sweep state, tolerating a truncated tail.

        A line that fails to parse is accepted only if every following
        non-blank line also fails — the signature of a crash mid-append.
        A parseable line *after* garbage means the file was edited or
        corrupted, and resuming from it would silently skip work:
        :class:`LedgerError` is raised instead.
        """
        file_path = Path(path)
        entries: List[LedgerEntry] = []
        dropped = 0
        if file_path.exists():
            lines = file_path.read_text(encoding="utf-8").splitlines()
            bad_at: Optional[int] = None
            for lineno, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    parsed = LedgerEntry.from_line(line)
                except (ValueError, KeyError, TypeError):
                    if bad_at is None:
                        bad_at = lineno
                    dropped += 1
                    continue
                if bad_at is not None:
                    raise LedgerError(
                        f"{file_path}: line {bad_at + 1} is corrupt but "
                        f"line {lineno + 1} still parses; refusing to "
                        "resume from a damaged ledger"
                    )
                entries.append(parsed)
        last: Dict[str, LedgerEntry] = {}
        for entry in entries:
            last[entry.key] = entry
        return LedgerState(entries=entries, last=last, dropped_tail=dropped)

    @classmethod
    def resume(cls: Type["SweepLedger"], path: Union[str, Path]) -> "SweepLedger":
        """An append handle continuing an existing journal's sequence."""
        state = cls.replay(path)
        next_seq = (
            state.entries[-1].seq + 1 if state.entries else 0
        )
        return cls(path, next_seq=next_seq)
