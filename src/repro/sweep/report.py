"""Markdown sweep reports.

Every sweep invocation — including one that ends with quarantined cells
or ran degraded — writes a partial-results report next to its ledger:
per-cell status, attempt/retry counts, and failure excerpts.  The report
is regenerated whole on each invocation (a resume overwrites it with the
now-fuller picture); the ledger remains the durable record.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.parallel.cache import CacheStats
from repro.sweep.ledger import STATUS_OK, STATUS_QUARANTINED
from repro.sweep.supervisor import RunOutcome

#: Failure excerpts are clipped so one stack trace cannot eat the table.
_EXCERPT_LIMIT = 100


def _excerpt(text: str) -> str:
    flat = " ".join(text.split())
    if len(flat) <= _EXCERPT_LIMIT:
        return flat
    return flat[: _EXCERPT_LIMIT - 1] + "…"


def _cell(text: str) -> str:
    return text.replace("|", "\\|") if text else "—"


def render_sweep_report(
    outcomes: Sequence[RunOutcome],
    *,
    title: str = "Sweep report",
    executed: int = 0,
    reused_labels: Sequence[str] = (),
    degraded_reason: Optional[str] = None,
    cache_stats: Optional[CacheStats] = None,
) -> str:
    """The markdown summary of one sweep invocation."""
    reused = len(reused_labels)
    total = len(outcomes) + reused
    ok = sum(1 for outcome in outcomes if outcome.status == STATUS_OK)
    quarantined = [
        outcome
        for outcome in outcomes
        if outcome.status == STATUS_QUARANTINED
    ]
    retries = sum(outcome.retries for outcome in outcomes)
    lines: List[str] = [
        f"# {title}",
        "",
        f"- grid cells: **{total}**",
        f"- reused from ledger + cache: **{reused}**",
        f"- executed this invocation: **{executed}** "
        f"({ok} ok, {len(quarantined)} quarantined)",
        f"- retries spent: **{retries}**",
    ]
    if cache_stats is not None:
        # Store retries/failures are surfaced even at zero: a sweep that
        # silently lost memoizations is indistinguishable from a healthy
        # one unless the report says the counters were actually clean.
        lines.append(f"- cache: {cache_stats.render()}")
    if degraded_reason:
        lines.append(f"- **degraded mode:** {degraded_reason}")
    lines += [
        "",
        "| cell | status | attempts | retries | last failure |",
        "|---|---|---:|---:|---|",
    ]
    for label in reused_labels:
        lines.append(f"| `{label}` | cached | 0 | 0 | — |")
    for outcome in outcomes:
        lines.append(
            f"| `{outcome.label}` "
            f"| {outcome.status or 'pending'} "
            f"| {outcome.attempts} "
            f"| {outcome.retries} "
            f"| {_cell(_excerpt(outcome.last_failure))} |"
        )
    if quarantined:
        lines += ["", "## Quarantined cells", ""]
        for outcome in quarantined:
            lines.append(f"### `{outcome.label}`")
            lines.append("")
            for number, reason in enumerate(outcome.failures, start=1):
                lines.append(f"{number}. {_excerpt(reason)}")
            lines.append("")
    lines.append("")
    return "\n".join(lines)
