"""The resumable sweep service.

:func:`run_sweep` is the orchestration layer the CLI's ``sweep``
subcommand (and any thousand-run grid script) drives:

1. every :class:`~repro.parallel.RunSpec` is fingerprinted to its
   content-addressed cache key;
2. cells whose result is already in the :class:`~repro.parallel.ResultCache`
   are **skipped** (journalled as ``cached``) — this is what makes
   ``--resume`` a no-op on a fully-warm sweep, and it composes with the
   ledger: a ``running``/``failed`` tail entry from a crashed invocation
   simply re-runs;
3. the remainder executes under the worker supervisor
   (:func:`repro.sweep.supervisor.run_supervised`), with every
   transition journalled to the crash-safe ledger as it happens; with
   ``SupervisorConfig.checkpoint_every_events`` set, each cell
   checkpoints periodically under ``<out>/checkpoints/<label>/`` and a
   retry resumes from the newest snapshot (journalled as a ``running``
   entry with a ``restored_from=...`` detail);
4. a markdown report — per-cell status, retries, failure excerpts,
   cache counters — is written even when cells were quarantined or
   execution degraded to serial: a partial sweep always leaves a usable
   record.  A SIGINT/SIGTERM gets the same treatment: unfinished cells
   are journalled ``interrupted``, settled results are already in the
   cache, the report is flushed, and :class:`SweepInterrupted` carries
   the partial result out (the CLI exits 130).

Degradation: a single-CPU host (or an explicit ``jobs=1``) runs
in-process serial with a logged reason instead of paying spawn overhead;
repeated worker spawn failures degrade mid-batch the same way.  Set
``REPRO_SWEEP_FORCE_SPAWN=1`` to keep the process pool even on one CPU
(CI chaos tests need the process boundary to inject crashes into).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.runner import RunResult
from repro.metrics.serialize import run_result_from_dict
from repro.parallel.cache import ResultCache
from repro.parallel.pool import FORCE_SPAWN_ENV as _FORCE_SPAWN_ENV
from repro.parallel.pool import clamp_jobs
from repro.parallel.spec import RunSpec
from repro.sweep.config import SupervisorConfig
from repro.sweep.ledger import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    STATUS_OK,
    STATUS_PENDING,
    STATUS_QUARANTINED,
    STATUS_RUNNING,
    SweepLedger,
)
from repro.sweep.report import render_sweep_report
from repro.sweep.supervisor import (
    OUTCOME_OK,
    RunOutcome,
    SupervisorEvent,
    SupervisorInterrupted,
    run_supervised,
)

#: Files a sweep directory contains.
LEDGER_NAME = "ledger.jsonl"
REPORT_NAME = "report.md"
MANIFEST_NAME = "manifest.json"
#: Per-cell checkpoint directories live under this subdirectory when
#: checkpointing is enabled and no explicit directory was configured.
CHECKPOINTS_DIR_NAME = "checkpoints"

#: Escape hatch: keep the spawn pool even on a single-CPU host.
#: (Defined in repro.parallel.pool so every jobs-clamping path shares
#: one rule; re-exported here for backward compatibility.)
FORCE_SPAWN_ENV = _FORCE_SPAWN_ENV

Logger = Callable[[str], None]


def _silent(message: str) -> None:
    return None


class SweepInterrupted(RuntimeError):
    """The sweep stopped on SIGINT/SIGTERM with its partial state flushed.

    By the time this is raised the ledger has journalled ``interrupted``
    for every unfinished cell, every settled result has reached the
    cache, and the markdown report covers the partial grid — so
    ``--resume`` picks up exactly where the interrupt landed.
    ``result`` is the partial :class:`SweepResult`.
    """

    def __init__(self, result: "SweepResult") -> None:
        super().__init__("sweep interrupted")
        self.result = result


@dataclass
class CellOutcome:
    """Final state of one grid cell after a sweep invocation."""

    label: str
    key: str
    #: ``ok`` (freshly executed), ``cached`` (reused), ``quarantined``,
    #: or ``interrupted`` (a signal stopped the sweep first).
    status: str
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    result: Optional[RunResult] = None


@dataclass
class SweepResult:
    """What one :func:`run_sweep` invocation did, cell by cell."""

    outcomes: List[CellOutcome]
    #: Fresh simulations executed by this invocation.
    executed: int
    #: Cells reused from the ledger + result cache.
    reused: int
    quarantined: int
    retries: int
    degraded_reason: Optional[str]
    report_path: Path
    #: Cells left unfinished by a SIGINT/SIGTERM (see
    #: :class:`SweepInterrupted`); they re-run on resume.
    interrupted: int = 0

    @property
    def ok(self) -> bool:
        return self.quarantined == 0 and self.interrupted == 0

    def results_by_label(self) -> Dict[str, RunResult]:
        return {
            outcome.label: outcome.result
            for outcome in self.outcomes
            if outcome.result is not None
        }


def effective_jobs(requested: int) -> int:
    """The worker count a sweep actually uses on this host.

    A single-CPU host collapses to in-process serial — spawn overhead
    buys nothing there — unless ``REPRO_SWEEP_FORCE_SPAWN`` insists on
    the process boundary (CI chaos injection does).  Thin alias for
    :func:`repro.parallel.pool.clamp_jobs`, the one home of that rule.
    """
    return clamp_jobs(requested)


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    out_dir: Union[str, Path],
    jobs: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
    cache: Optional[ResultCache] = None,
    resume: bool = False,
    title: str = "Sweep report",
    log: Logger = _silent,
) -> SweepResult:
    """Run (or resume) a sweep grid; see the module docstring.

    ``cache=None`` disables result reuse entirely — the ledger still
    journals progress, but a resume must re-execute every cell because
    there is nowhere to reload results from (``log`` says so).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs}")
    config = supervisor if supervisor is not None else SupervisorConfig()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if (
        config.checkpoint_every_events is not None
        and config.checkpoint_dir is None
    ):
        # Checkpoints belong next to the ledger they make resumable.
        config = replace(
            config, checkpoint_dir=str(out / CHECKPOINTS_DIR_NAME)
        )
    ledger_path = out / LEDGER_NAME

    if resume:
        state = SweepLedger.replay(ledger_path)
        if state.dropped_tail:
            log(
                f"ledger: dropped {state.dropped_tail} truncated trailing "
                "line(s) left by an interrupted invocation"
            )
        if cache is None and state.entries:
            log(
                "ledger: caching is disabled, so completed cells cannot "
                "be reloaded and will re-run"
            )

    jobs_used = effective_jobs(jobs)
    degraded_reason: Optional[str] = None
    if jobs_used != jobs:
        degraded_reason = (
            f"host has {os.cpu_count() or 1} CPU(s); running in-process "
            f"serial instead of {jobs} worker processes"
        )
        log(f"degraded: {degraded_reason}")

    keys = [
        cache.key_for(spec) if cache is not None else spec.canonical_json()
        for spec in specs
    ]
    labels = [spec.label() for spec in specs]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep grid contains duplicate run specs")

    outcomes: List[Optional[CellOutcome]] = [None] * len(specs)
    pending_indices: List[int] = []
    was_interrupted = False
    with SweepLedger.resume(ledger_path) as ledger:
        for index, spec in enumerate(specs):
            hit = cache.load(keys[index]) if cache is not None else None
            if hit is not None:
                ledger.append(keys[index], labels[index], STATUS_CACHED)
                outcomes[index] = CellOutcome(
                    label=labels[index],
                    key=keys[index],
                    status=STATUS_CACHED,
                    result=hit,
                )
            else:
                ledger.append(keys[index], labels[index], STATUS_PENDING)
                pending_indices.append(index)

        run_outcomes: List[RunOutcome] = []
        if pending_indices:
            log(
                f"executing {len(pending_indices)} of {len(specs)} "
                f"cell(s) with jobs={jobs_used} "
                f"(retries={config.max_retries}, "
                f"timeout={config.run_timeout_s or 'off'})"
            )

            def journal(event: SupervisorEvent) -> None:
                nonlocal degraded_reason
                if event.kind == "degrade":
                    degraded_reason = event.reason
                    log(f"degraded: {event.reason}")
                    return
                index = pending_indices[event.index]
                if event.kind == "attempt":
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_RUNNING,
                        attempt=event.attempt,
                    )
                elif event.kind == "failure":
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_FAILED,
                        attempt=event.attempt,
                        detail=event.reason,
                    )
                    log(
                        f"{labels[index]}: attempt {event.attempt} failed "
                        f"({event.reason})"
                    )
                elif event.kind == "ok":
                    # Persist the result *before* journalling ``ok``:
                    # a batch can die hours after this cell finished,
                    # and an ``ok`` line whose result never reached the
                    # cache would make the resume re-run settled work.
                    if cache is not None and event.payload is not None:
                        cache.store(keys[index], event.payload)
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_OK,
                        attempt=event.attempt,
                    )
                elif event.kind == "quarantine":
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_QUARANTINED,
                        attempt=event.attempt,
                        detail=event.reason,
                    )
                    log(
                        f"{labels[index]}: quarantined after "
                        f"{event.attempt} attempt(s)"
                    )
                elif event.kind == "restored":
                    # The checkpoint-aware retry resumed mid-simulation;
                    # journal which snapshot so the ledger tells the
                    # whole recovery story.
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_RUNNING,
                        attempt=event.attempt,
                        detail=f"restored_from={event.reason}",
                    )
                    log(
                        f"{labels[index]}: attempt {event.attempt} "
                        f"resumed from checkpoint {event.reason}"
                    )
                elif event.kind == "checkpoint-fallback":
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_RUNNING,
                        attempt=event.attempt,
                        detail=event.reason,
                    )
                    log(f"{labels[index]}: {event.reason}")

            try:
                run_outcomes = run_supervised(
                    [specs[index] for index in pending_indices],
                    jobs=jobs_used,
                    config=config,
                    on_event=journal,
                )
            except SupervisorInterrupted as stop:
                was_interrupted = True
                run_outcomes = stop.outcomes
                log(
                    "interrupted: flushing partial results, ledger, "
                    "and report"
                )
            for sub_index, run_outcome in enumerate(run_outcomes):
                index = pending_indices[sub_index]
                if run_outcome.status == OUTCOME_OK:
                    status = STATUS_OK
                elif run_outcome.status:
                    status = STATUS_QUARANTINED
                else:
                    # Unsettled when the signal landed: journal it so
                    # the ledger's tail explains the missing result, and
                    # mark the run outcome for the report table.
                    status = STATUS_INTERRUPTED
                    run_outcome.status = STATUS_INTERRUPTED
                    ledger.append(
                        keys[index],
                        labels[index],
                        STATUS_INTERRUPTED,
                        attempt=run_outcome.attempts,
                        detail="sweep interrupted by signal",
                    )
                cell = CellOutcome(
                    label=labels[index],
                    key=keys[index],
                    status=status,
                    attempts=run_outcome.attempts,
                    failures=list(run_outcome.failures),
                )
                if run_outcome.payload is not None:
                    cell.result = run_result_from_dict(run_outcome.payload)
                outcomes[index] = cell

    final = [outcome for outcome in outcomes if outcome is not None]
    executed = sum(1 for cell in final if cell.status == STATUS_OK)
    reused = sum(1 for cell in final if cell.status == STATUS_CACHED)
    quarantined = sum(
        1 for cell in final if cell.status == STATUS_QUARANTINED
    )
    interrupted = sum(
        1 for cell in final if cell.status == STATUS_INTERRUPTED
    )
    retries = sum(max(0, cell.attempts - 1) for cell in final)
    report_path = out / REPORT_NAME
    report_path.write_text(
        render_sweep_report(
            run_outcomes,
            title=title,
            executed=executed,
            reused_labels=[
                cell.label for cell in final if cell.status == STATUS_CACHED
            ],
            degraded_reason=degraded_reason,
            cache_stats=cache.stats if cache is not None else None,
        ),
        encoding="utf-8",
    )
    result = SweepResult(
        outcomes=final,
        executed=executed,
        reused=reused,
        quarantined=quarantined,
        retries=retries,
        degraded_reason=degraded_reason,
        report_path=report_path,
        interrupted=interrupted,
    )
    if was_interrupted:
        raise SweepInterrupted(result)
    return result
