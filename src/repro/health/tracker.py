"""The per-node health state machine.

States and transitions::

    HEALTHY --strike--> SUSPECT --threshold--> QUARANTINED
       ^                   |                        |
       |   window expires  |                 window elapses
       +-------------------+                        v
       +----clean probation------------------- PROBATION
                                                    |
                                             any strike: back to
                                             QUARANTINED (longer)

Strikes come from the failure events the runner already observes (node
crashes, GPU failures, MBM telemetry dropouts), weighted per
:class:`~repro.health.config.HealthConfig` and summed over a sliding
window.  Crossing the threshold quarantines the node for a window that
doubles with every consecutive quarantine (exponential-backoff
readmission); a completed probation resets the backoff.

Determinism contract: quarantine entry is *eager* (decided inside
:meth:`record_failure`, which only the runner's failure paths call), while
QUARANTINED → PROBATION → HEALTHY transitions are *lazy* and anchored to
deadlines fixed at entry time — so querying a node's state never changes
what any later query returns.  An observer (the invariant auditor) may
read states freely without perturbing the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.health.config import HealthConfig


class NodeHealthState(Enum):
    """Where a node stands in the quarantine life cycle."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass(frozen=True)
class QuarantineSpan:
    """One quarantine window of one node (end fixed at entry time)."""

    node_id: int
    start: float
    end: float

    @property
    def duration_s(self) -> float:
        return self.end - self.start


@dataclass
class _NodeRecord:
    state: NodeHealthState = NodeHealthState.HEALTHY
    #: Recent (time, weight) strikes inside the failure window.
    strikes: Deque[Tuple[float, float]] = field(default_factory=deque)
    #: Consecutive quarantines without a clean probation in between.
    backoff_level: int = 0
    quarantine_until: float = float("-inf")
    probation_until: float = float("-inf")


class NodeHealthTracker:
    """Tracks every node's health state from observed failure events."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config or HealthConfig()
        self._records: Dict[int, _NodeRecord] = {}
        #: All quarantine windows ever entered (for metrics).
        self.spans: List[QuarantineSpan] = []
        self.quarantines_started: int = 0
        #: Bumped on every strike intake; cache keys and snapshot memos
        #: (see :mod:`repro.schedulers.placement`) key on it.  Lazy
        #: deadline transitions do NOT bump it: they are pure functions of
        #: (records, now), so a (now, version) key stays sound.
        self.version: int = 0
        self._scan_key: Optional[Tuple[float, int]] = None
        self._scan_result: Tuple[List[int], List[int]] = ([], [])
        #: Cached ``sorted(self._records)``; records are only added, so a
        #: length match in :meth:`_scan` proves it is current.
        self._sorted_ids: List[int] = []

    # ------------------------------------------------------------------ #
    # Strike intake (runner failure paths only)

    def record_failure(self, node_id: int, now: float, *, kind: str) -> bool:
        """Register one failure on ``node_id``; True when this strike
        pushes the node into QUARANTINED (the caller must then evict any
        residents and arm a readmission wake-up at
        :meth:`quarantine_until`)."""
        if not self.config.enabled:
            return False
        self.version += 1
        record = self._records.setdefault(node_id, _NodeRecord())
        self._advance(record, now)
        if record.state is NodeHealthState.QUARANTINED:
            # Already benched; a strike against an empty node (e.g. a GPU
            # burning out while idle) must not extend the sentence, or a
            # flaky-but-idle node could never serve again.
            return False
        weight = self.config.weight_of(kind)
        record.strikes.append((now, weight))
        self._expire_strikes(record, now)
        if record.state is NodeHealthState.PROBATION:
            # Zero tolerance during probation: the node just proved the
            # quarantine window was too short.
            self._enter_quarantine(record, node_id, now)
            return True
        if self._strike_score(record) >= self.config.quarantine_threshold:
            self._enter_quarantine(record, node_id, now)
            return True
        record.state = NodeHealthState.SUSPECT
        return False

    # ------------------------------------------------------------------ #
    # Queries (lazy, idempotent at fixed ``now``)

    def state_of(self, node_id: int, now: float) -> NodeHealthState:
        record = self._records.get(node_id)
        if record is None:
            return NodeHealthState.HEALTHY
        self._advance(record, now)
        return record.state

    def quarantine_until(self, node_id: int) -> float:
        """Deadline of the node's current/most recent quarantine window."""
        record = self._records.get(node_id)
        return float("-inf") if record is None else record.quarantine_until

    def quarantined_nodes(self, now: float) -> List[int]:
        return list(self._scan(now)[0])

    def deprioritized_nodes(self, now: float) -> List[int]:
        """Nodes placement should prefer to avoid: SUSPECT or PROBATION."""
        return list(self._scan(now)[1])

    def _scan(self, now: float) -> Tuple[List[int], List[int]]:
        """One pass over all records: (quarantined, deprioritized) node
        ids, memoized on ``(now, version)``.

        Sound because the only eager mutation path (:meth:`record_failure`)
        bumps :attr:`version`, and the lazy transitions applied by
        :meth:`state_of` are idempotent at fixed ``now``.
        """
        key = (now, self.version)
        if self._scan_key == key:
            return self._scan_result
        quarantined: List[int] = []
        deprioritized: List[int] = []
        flagged = (NodeHealthState.SUSPECT, NodeHealthState.PROBATION)
        records = self._records
        if len(self._sorted_ids) != len(records):
            # Records are only ever added, so a length match proves the
            # cached ordering is current.
            self._sorted_ids = sorted(records)
        for node_id in self._sorted_ids:
            record = records[node_id]
            if record.state is NodeHealthState.HEALTHY and not record.strikes:
                # A healthy record with no strikes has no pending
                # transition: _advance would be a no-op and state_of would
                # report HEALTHY, contributing to neither list.
                continue
            state = self.state_of(node_id, now)
            if state is NodeHealthState.QUARANTINED:
                quarantined.append(node_id)
            elif state in flagged:
                deprioritized.append(node_id)
        self._scan_key = key
        self._scan_result = (quarantined, deprioritized)
        return self._scan_result

    def total_quarantine_s(self, now: float) -> float:
        """Quarantine time accumulated through ``now`` across all nodes."""
        return sum(
            max(0.0, min(span.end, now) - span.start) for span in self.spans
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable tracker state (the scan memo is rebuilt on demand)."""
        return {
            "records": {
                str(node_id): [
                    record.state.value,
                    [[time, weight] for time, weight in record.strikes],
                    record.backoff_level,
                    record.quarantine_until,
                    record.probation_until,
                ]
                for node_id, record in self._records.items()
            },
            "spans": [
                [span.node_id, span.start, span.end] for span in self.spans
            ],
            "quarantines_started": self.quarantines_started,
            "version": self.version,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._records = {}
        for raw_id, (state_value, strikes, backoff, q_until, p_until) in state[
            "records"
        ].items():
            self._records[int(raw_id)] = _NodeRecord(
                state=NodeHealthState(state_value),
                strikes=deque(
                    (float(time), float(weight)) for time, weight in strikes
                ),
                backoff_level=int(backoff),
                quarantine_until=float(q_until),
                probation_until=float(p_until),
            )
        self.spans = [
            QuarantineSpan(
                node_id=int(node_id), start=float(start), end=float(end)
            )
            for node_id, start, end in state["spans"]
        ]
        self.quarantines_started = int(state["quarantines_started"])
        self.version = int(state["version"])
        self._scan_key = None
        self._scan_result = ([], [])
        # Restored records may have the same count but different ids;
        # the length heuristic in _scan cannot see that, so drop the
        # cached ordering outright.
        self._sorted_ids = []

    # ------------------------------------------------------------------ #
    # Internals

    def _advance(self, record: _NodeRecord, now: float) -> None:
        """Apply every deadline-anchored transition due by ``now``."""
        if (
            record.state is NodeHealthState.QUARANTINED
            and now >= record.quarantine_until
        ):
            record.state = NodeHealthState.PROBATION
        if (
            record.state is NodeHealthState.PROBATION
            and now >= record.probation_until
        ):
            # Clean probation: full rehabilitation, backoff forgotten.
            record.state = NodeHealthState.HEALTHY
            record.backoff_level = 0
            record.strikes.clear()
        if record.state is NodeHealthState.SUSPECT:
            self._expire_strikes(record, now)
            if not record.strikes:
                record.state = NodeHealthState.HEALTHY

    def _expire_strikes(self, record: _NodeRecord, now: float) -> None:
        horizon = now - self.config.failure_window_s
        while record.strikes and record.strikes[0][0] <= horizon:
            record.strikes.popleft()

    @staticmethod
    def _strike_score(record: _NodeRecord) -> float:
        return sum(weight for _, weight in record.strikes)

    def _enter_quarantine(
        self, record: _NodeRecord, node_id: int, now: float
    ) -> None:
        config = self.config
        duration = min(
            config.max_quarantine_s,
            config.base_quarantine_s
            * config.quarantine_backoff**record.backoff_level,
        )
        record.backoff_level += 1
        record.state = NodeHealthState.QUARANTINED
        record.quarantine_until = now + duration
        record.probation_until = record.quarantine_until + config.probation_s
        record.strikes.clear()
        self.spans.append(
            QuarantineSpan(node_id=node_id, start=now, end=record.quarantine_until)
        )
        self.quarantines_started += 1
