"""Node-health quarantine and restart budgets (see docs/resilience.md).

The graceful-degradation layer: a per-node health state machine driven by
the runner's observed failures (:mod:`repro.health.tracker`), and per-job
restart budgets with a dead-job ledger (:mod:`repro.health.restarts`).
"""

from repro.health.config import HealthConfig
from repro.health.restarts import DeadJob, RestartPolicy
from repro.health.tracker import (
    NodeHealthState,
    NodeHealthTracker,
    QuarantineSpan,
)

__all__ = [
    "DeadJob",
    "HealthConfig",
    "NodeHealthState",
    "NodeHealthTracker",
    "QuarantineSpan",
    "RestartPolicy",
]
