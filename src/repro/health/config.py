"""Knobs of the node-health state machine.

All thresholds are expressed in *strike weight*: a whole-node crash or a
GPU failure counts 1.0, a transient MBM telemetry dropout only 0.25 — the
node still computes correctly through a blind monitor, so it takes a
sustained pattern of dropouts to look as sick as a crash-looping machine
(the asymmetry the Philly trace study motivates: most failures are not
equally predictive of the next one).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HealthConfig:
    """Tunables of :class:`~repro.health.tracker.NodeHealthTracker`."""

    #: Strike weight within the failure window at which a node is
    #: quarantined (3.0 = three crashes, or twelve telemetry dropouts).
    quarantine_threshold: float = 3.0
    #: Sliding window over which strikes are summed; older ones expire.
    failure_window_s: float = 3600.0
    #: First quarantine duration; doubles per consecutive quarantine.
    base_quarantine_s: float = 1800.0
    #: Multiplier applied to the quarantine window per consecutive
    #: quarantine (reset once the node completes a clean probation).
    quarantine_backoff: float = 2.0
    #: Ceiling on any single quarantine window.
    max_quarantine_s: float = 4 * 3600.0
    #: Post-quarantine observation period: any strike during probation
    #: re-quarantines immediately (with the longer, backed-off window).
    probation_s: float = 900.0
    #: Strike weights per failure kind.
    crash_weight: float = 1.0
    gpu_failure_weight: float = 1.0
    telemetry_weight: float = 0.25
    #: Master switch: disabled, the tracker records nothing and every node
    #: reads HEALTHY forever (the pre-quarantine behaviour).
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.quarantine_threshold <= 0:
            raise ValueError(
                f"non-positive quarantine threshold: {self.quarantine_threshold}"
            )
        if self.failure_window_s <= 0:
            raise ValueError(
                f"non-positive failure window: {self.failure_window_s}"
            )
        if self.base_quarantine_s <= 0:
            raise ValueError(
                f"non-positive base quarantine: {self.base_quarantine_s}"
            )
        if self.quarantine_backoff < 1.0:
            raise ValueError(
                f"quarantine backoff below 1: {self.quarantine_backoff}"
            )
        if self.max_quarantine_s < self.base_quarantine_s:
            raise ValueError(
                f"max quarantine {self.max_quarantine_s} below base "
                f"{self.base_quarantine_s}"
            )
        if self.probation_s < 0:
            raise ValueError(f"negative probation: {self.probation_s}")
        for name in ("crash_weight", "gpu_failure_weight", "telemetry_weight"):
            weight = getattr(self, name)
            if weight < 0:
                raise ValueError(f"negative {name}: {weight}")

    def weight_of(self, kind: str) -> float:
        """Strike weight for a failure kind (crash | gpu | telemetry)."""
        weights = {
            "crash": self.crash_weight,
            "gpu": self.gpu_failure_weight,
            "telemetry": self.telemetry_weight,
        }
        if kind not in weights:
            raise ValueError(f"unknown failure kind: {kind!r}")
        return weights[kind]
