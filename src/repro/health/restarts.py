"""Per-job restart budgets and the dead-job ledger.

The scheduler base class consults a :class:`RestartPolicy` on every
infrastructure failure: the first failure re-queues immediately (matching
the pre-budget behaviour, so a one-off crash costs nothing extra), repeat
failures back off exponentially, and a job that exhausts its budget is
moved to the dead-job ledger instead of livelocking its array head — the
"poison job" pathology the Philly trace study documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RestartPolicy:
    """How many failures a job may survive, and how fast it retries."""

    #: Failures after which the job is declared dead; None = unlimited.
    max_restarts: Optional[int] = 5
    #: Re-queue delay after the *second* failure; the first re-queues
    #: immediately (a single crash is overwhelmingly a node problem, not a
    #: job problem, and must not slow recovery).
    base_delay_s: float = 30.0
    #: Delay multiplier per further failure.
    backoff: float = 2.0
    #: Ceiling on any single re-queue delay.
    max_delay_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_restarts is not None and self.max_restarts < 1:
            raise ValueError(f"max_restarts below 1: {self.max_restarts}")
        if self.base_delay_s < 0:
            raise ValueError(f"negative base delay: {self.base_delay_s}")
        if self.backoff < 1.0:
            raise ValueError(f"restart backoff below 1: {self.backoff}")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max delay {self.max_delay_s} below base {self.base_delay_s}"
            )

    def exhausted(self, failure_count: int) -> bool:
        """True once ``failure_count`` failures exceed the budget."""
        return self.max_restarts is not None and failure_count > self.max_restarts

    def requeue_delay(self, failure_count: int) -> float:
        """Seconds to wait before re-queueing after failure number
        ``failure_count`` (1-based)."""
        if failure_count <= 1:
            return 0.0
        delay = self.base_delay_s * self.backoff ** (failure_count - 2)
        return min(delay, self.max_delay_s)


@dataclass(frozen=True)
class DeadJob:
    """One entry of the dead-job ledger."""

    job_id: str
    time: float
    failures: int
    reason: str
