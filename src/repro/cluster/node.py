"""One server of the cluster.

A node owns its CPU cores, its GPUs, and the shared memory-system resources
(bandwidth monitor + MBA throttle, PCIe meter, LLC occupancy).  All resource
state transitions are guarded: over-allocation, double release, or resizing
a job that is not present raise immediately rather than corrupting the
bookkeeping on which every experiment result depends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.allocation import NodeShare
from repro.cluster.gpu import Gpu
from repro.cluster.mba import MbaController
from repro.cluster.mbm import BandwidthMonitor
from repro.cluster.resources import ResourceVector
from repro.config import NodeConfig


class GenerationCounter:
    """A shared mutation counter for cheap snapshot invalidation.

    Every capacity-affecting node mutation bumps it; consumers (the
    placement layer's memoized :class:`~repro.schedulers.placement.FreeState`)
    compare the value instead of re-reading every node.  The cluster hands
    one shared counter to all of its nodes, so a single integer captures
    "has any free capacity changed anywhere".

    Beyond the plain counter, the dirty-set scheduling core needs two more
    readings (see docs/scheduler-internals.md):

    * ``touched`` — which nodes changed since the last whole-cluster
      snapshot refresh, so :class:`~repro.schedulers.placement.FreeState`
      re-reads only those instead of every node;
    * ``freed`` — a monotone counter bumped only by capacity-*increasing*
      mutations (release, resize-down, mark_up, repair).  Pass skipping
      keys on it: a queue of blocked jobs can only become placeable again
      when capacity was freed, never when it was consumed.

    :meth:`bump` (the attribution-free legacy hook) stays safe by being
    conservative: it counts as freed *and* sets ``coarse``, which forces
    the next snapshot to rebuild from scratch — a caller that cannot say
    what changed must not benefit from partial refresh.
    """

    __slots__ = ("value", "freed", "touched", "coarse")

    def __init__(self) -> None:
        self.value = 0
        self.freed = 0
        self.touched: set = set()
        self.coarse = False

    def bump(self) -> None:
        """Unattributed mutation: conservatively treat it as freed
        capacity on an unknown node (forces a full snapshot rebuild)."""
        self.value += 1
        self.freed += 1
        self.coarse = True

    def bump_node(self, node_id: int, *, freed: bool) -> None:
        """Attributed mutation: ``node_id`` changed; ``freed`` says in
        which direction (True when free capacity increased)."""
        self.value += 1
        self.touched.add(node_id)
        if freed:
            self.freed += 1


@dataclass
class PcieMeter:
    """Host PCIe fabric accounting (all values in GB/s).

    PCIe is not schedulable; the meter only answers "by how much is H2D
    traffic stretched".  Demands beyond capacity degrade everyone
    proportionally (fair-share ratio), which is what the co-location
    measurements of Sec. IV-C3 show: two light jobs coexist freely, and a
    heavy CV model inflicts a uniform 5-10 % penalty.
    """

    capacity_gbps: float
    demands: Dict[str, float] = field(default_factory=dict)

    def register(self, job_id: str, demand_gbps: float) -> None:
        if demand_gbps < 0:
            raise ValueError(f"negative PCIe demand for {job_id}")
        self.demands[job_id] = float(demand_gbps)

    def unregister(self, job_id: str) -> None:
        self.demands.pop(job_id, None)

    @property
    def total_demand(self) -> float:
        return sum(self.demands.values())

    def grant_ratio(self) -> float:
        """Fraction of demanded PCIe throughput actually achieved (<=1)."""
        total = self.total_demand
        if total <= self.capacity_gbps:
            return 1.0
        return self.capacity_gbps / total


class Node:
    """A single multi-GPU server."""

    def __init__(self, node_id: int, config: NodeConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.gpus: List[Gpu] = [Gpu(gpu_id=i) for i in range(config.gpus)]
        self.bandwidth = BandwidthMonitor(config.mem_bandwidth_gbps)
        self.mba = MbaController(
            monitor=self.bandwidth, supported=config.mba_supported
        )
        self.pcie = PcieMeter(capacity_gbps=config.pcie_gbps)
        self.llc_occupancy_mb: Dict[str, float] = {}
        self._shares: Dict[str, NodeShare] = {}
        self._used_cpus = 0
        # Owned-GPU count maintained like _used_cpus (exact integer
        # arithmetic, so it can never drift from the per-device truth the
        # invariant auditor re-derives); reading it is O(1) where the old
        # property summed over every device.
        self._used_gpus = 0
        self._up = True
        #: Bumped on every capacity mutation; the cluster replaces it with
        #: one counter shared across all of its nodes.
        self.generation = GenerationCounter()
        #: Bumped whenever this node's LLC occupancy or PCIe demand set
        #: changes (the two contention inputs not guarded by the bandwidth
        #: monitor's own :attr:`BandwidthMonitor.epoch`).  Together the two
        #: epochs fingerprint everything ``iteration_time`` reads from a
        #: node, which is what lets the runner's reprice memo skip the
        #: recompute (see docs/scheduler-internals.md).
        self.contention_epoch = 0

    # ------------------------------------------------------------------ #
    # Availability (fault injection)

    @property
    def is_up(self) -> bool:
        return self._up

    def mark_down(self) -> None:
        """Take the whole node out of service (simulated crash).

        Raises:
            RuntimeError: if jobs still hold shares here — the runner must
                fail/evict them first so every displaced job goes through
                exactly one restart path.
        """
        if self._shares:
            raise RuntimeError(
                f"node {self.node_id} still hosts {sorted(self._shares)}; "
                "evict residents before marking it down"
            )
        self._up = False
        self.generation.bump_node(self.node_id, freed=False)

    def mark_up(self) -> None:
        """Return a crashed node to service. Idempotent."""
        self._up = True
        self.generation.bump_node(self.node_id, freed=True)

    # ------------------------------------------------------------------ #
    # Capacity queries

    @property
    def total_cpus(self) -> int:
        return self.config.cores

    @property
    def total_gpus(self) -> int:
        return len(self.gpus)

    @property
    def used_cpus(self) -> int:
        return self._used_cpus

    @property
    def free_cpus(self) -> int:
        if not self._up:
            return 0
        return self.config.cores - self._used_cpus

    @property
    def free_gpu_ids(self) -> List[int]:
        if not self._up:
            return []
        return [gpu.gpu_id for gpu in self.gpus if gpu.is_free]

    @property
    def free_gpus(self) -> int:
        return len(self.free_gpu_ids)

    @property
    def used_gpus(self) -> int:
        return self._used_gpus

    @property
    def free_vector(self) -> ResourceVector:
        return ResourceVector(cpus=self.free_cpus, gpus=self.free_gpus)

    def can_fit(self, cpus: int, gpus: int) -> bool:
        if not self._up:
            return False
        return cpus <= self.free_cpus and gpus <= self.free_gpus

    def jobs_here(self) -> List[str]:
        return list(self._shares)

    def share_of(self, job_id: str) -> NodeShare:
        return self._shares[job_id]

    def holds(self, job_id: str) -> bool:
        return job_id in self._shares

    # ------------------------------------------------------------------ #
    # Allocation lifecycle

    def allocate(self, job_id: str, cpus: int, gpus: int) -> NodeShare:
        """Grant ``cpus`` cores and ``gpus`` specific GPUs to ``job_id``."""
        if job_id in self._shares:
            raise RuntimeError(f"job {job_id} already placed on node {self.node_id}")
        if cpus < 0 or gpus < 0:
            raise ValueError(f"negative request from {job_id}: {cpus}c/{gpus}g")
        if not self.can_fit(cpus, gpus):
            raise RuntimeError(
                f"node {self.node_id} cannot fit {cpus}c/{gpus}g for {job_id} "
                f"(free: {self.free_cpus}c/{self.free_gpus}g)"
            )
        granted_ids: Tuple[int, ...] = tuple(self.free_gpu_ids[:gpus])
        for gpu_id in granted_ids:
            self.gpus[gpu_id].assign(job_id)
        self._used_gpus += len(granted_ids)
        self._used_cpus += cpus
        share = NodeShare(node_id=self.node_id, cpus=cpus, gpu_ids=granted_ids)
        self._shares[job_id] = share
        self.generation.bump_node(self.node_id, freed=False)
        return share

    def release(self, job_id: str) -> NodeShare:
        """Return everything ``job_id`` holds here, including contention
        registrations, so a released job leaves no residue behind."""
        share = self._shares.pop(job_id, None)
        if share is None:
            raise RuntimeError(f"job {job_id} holds nothing on node {self.node_id}")
        for gpu_id in share.gpu_ids:
            self.gpus[gpu_id].release(job_id)
        self._used_gpus -= len(share.gpu_ids)
        self._used_cpus -= share.cpus
        self.mba.release(job_id)
        self.bandwidth.unregister(job_id)
        self.pcie.unregister(job_id)
        self.llc_occupancy_mb.pop(job_id, None)
        self.contention_epoch += 1
        self.generation.bump_node(self.node_id, freed=True)
        return share

    def resize_cpus(self, job_id: str, new_cpus: int) -> NodeShare:
        """Change the core count of a resident job (adaptive allocator)."""
        share = self._shares.get(job_id)
        if share is None:
            raise RuntimeError(f"job {job_id} holds nothing on node {self.node_id}")
        if new_cpus < 0:
            raise ValueError(f"negative core count for {job_id}: {new_cpus}")
        delta = new_cpus - share.cpus
        if delta > self.free_cpus:
            raise RuntimeError(
                f"node {self.node_id} cannot grow {job_id} by {delta} cores "
                f"(free: {self.free_cpus})"
            )
        self._used_cpus += delta
        new_share = NodeShare(
            node_id=self.node_id, cpus=new_cpus, gpu_ids=share.gpu_ids
        )
        self._shares[job_id] = new_share
        self.generation.bump_node(self.node_id, freed=delta < 0)
        return new_share

    # ------------------------------------------------------------------ #
    # Device failures (fault injection)

    def fail_gpu(self, gpu_id: int) -> None:
        """Break one GPU; its (already evicted) slot disappears from the
        free pool until :meth:`repair_gpu`."""
        self.gpus[gpu_id].mark_failed()
        self.generation.bump_node(self.node_id, freed=False)

    def repair_gpu(self, gpu_id: int) -> None:
        self.gpus[gpu_id].repair()
        self.generation.bump_node(self.node_id, freed=True)

    @property
    def failed_gpu_ids(self) -> List[int]:
        return [gpu.gpu_id for gpu in self.gpus if gpu.failed]

    # ------------------------------------------------------------------ #
    # Contention-resource registration

    def register_memory_traffic(
        self,
        job_id: str,
        demand_gbps: float,
        *,
        is_cpu_job: bool,
        is_inference: bool = False,
        llc_mb: float = 0.0,
        pcie_gbps: float = 0.0,
    ) -> None:
        """Declare a resident job's memory-system footprint."""
        if not self.holds(job_id):
            raise RuntimeError(
                f"job {job_id} must be placed on node {self.node_id} before "
                "registering memory traffic"
            )
        self.bandwidth.register(
            job_id, demand_gbps, is_cpu_job=is_cpu_job, is_inference=is_inference
        )
        if llc_mb > 0:
            self.llc_occupancy_mb[job_id] = llc_mb
        if pcie_gbps > 0:
            self.pcie.register(job_id, pcie_gbps)
        self.contention_epoch += 1

    @property
    def llc_pressure(self) -> float:
        """Total requested LLC occupancy over capacity (can exceed 1)."""
        total = sum(self.llc_occupancy_mb.values())
        return total / self.config.llc_mb

    # ------------------------------------------------------------------ #
    # GPU utilization (for metrics and the eliminator)

    def set_gpu_utilization(self, job_id: str, utilization: float) -> None:
        """Record the owning job's current utilization on its GPUs."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization out of range: {utilization}")
        share = self._shares.get(job_id)
        if share is None:
            raise RuntimeError(f"job {job_id} holds nothing on node {self.node_id}")
        for gpu_id in share.gpu_ids:
            self.gpus[gpu_id].utilization = utilization

    def mean_active_gpu_utilization(self) -> Optional[float]:
        """Average utilization across this node's *owned* GPUs, or None."""
        utils = [gpu.utilization for gpu in self.gpus if not gpu.is_free]
        if not utils:
            return None
        return sum(utils) / len(utils)

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable node state: shares, devices, contention registry."""
        return {
            "up": self._up,
            "used_cpus": self._used_cpus,
            "shares": {
                job_id: [share.cpus, list(share.gpu_ids)]
                for job_id, share in self._shares.items()
            },
            "gpus": [
                [gpu.owner, gpu.utilization, gpu.failed] for gpu in self.gpus
            ],
            "llc": dict(self.llc_occupancy_mb),
            "bandwidth": self.bandwidth.snapshot(),
            "mba_levels": self.mba.snapshot(),
            "pcie_demands": dict(self.pcie.demands),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._up = bool(state["up"])
        self._used_cpus = int(state["used_cpus"])
        self._shares = {
            job_id: NodeShare(
                node_id=self.node_id,
                cpus=int(cpus),
                gpu_ids=tuple(int(gpu_id) for gpu_id in gpu_ids),
            )
            for job_id, (cpus, gpu_ids) in state["shares"].items()
        }
        for gpu, (owner, utilization, failed) in zip(self.gpus, state["gpus"]):
            gpu.owner = owner
            gpu.utilization = float(utilization)
            gpu.failed = bool(failed)
        self._used_gpus = sum(1 for gpu in self.gpus if gpu.owner is not None)
        self.llc_occupancy_mb = {
            job_id: float(mb) for job_id, mb in state["llc"].items()
        }
        self.bandwidth.restore(state["bandwidth"])
        self.mba.restore(state["mba_levels"])
        self.pcie.demands = {
            job_id: float(gbps)
            for job_id, gbps in state["pcie_demands"].items()
        }
        self.contention_epoch += 1
        self.generation.bump()

    def __repr__(self) -> str:
        return (
            f"Node(id={self.node_id}, cpus={self.used_cpus}/{self.total_cpus}, "
            f"gpus={self.used_gpus}/{self.total_gpus})"
        )
