"""Cluster resource substrate.

Models the paper's testbed: ~80 PCIe multi-GPU servers, each with two CPU
sockets (2 x 14 cores of Xeon Gold 6132), a shared memory system with finite
bandwidth and last-level cache, a PCIe fabric to the GPUs, and a NIC for
multi-node training.  The scheduler-visible resources are **CPU cores** and
**GPUs**; memory bandwidth, LLC, and PCIe are *contention* resources that the
node tracks for the performance model and the contention eliminator.
"""

from repro.cluster.allocation import Allocation, NodeShare
from repro.cluster.cluster import Cluster
from repro.cluster.gpu import Gpu
from repro.cluster.interconnect import Interconnect
from repro.cluster.mba import MbaController
from repro.cluster.mbm import BandwidthMonitor, BandwidthUsage
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.cluster.topology import RackedInterconnect, RackTopology

__all__ = [
    "Allocation",
    "BandwidthMonitor",
    "BandwidthUsage",
    "Cluster",
    "Gpu",
    "Interconnect",
    "MbaController",
    "Node",
    "NodeShare",
    "RackTopology",
    "RackedInterconnect",
    "ResourceVector",
]
