"""Memory-bandwidth allocation (the simulated Intel MBA).

MBA on real hardware throttles a core group's memory traffic in coarse
steps (100 %, 90 %, ..., 10 % of unthrottled throughput).  The controller
here mirrors that interface: per job it keeps a throttle *level*, converts
it to a bandwidth cap against the job's unthrottled demand, and pushes the
cap into the node's :class:`~repro.cluster.mbm.BandwidthMonitor`.

Nodes can be built without MBA support (``supported=False``), in which case
the contention eliminator must fall back to halving the CPU job's cores
(Sec. V-D) — the controller refuses to throttle so callers cannot silently
depend on hardware that is not there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.mbm import BandwidthMonitor

#: The discrete MBA throttle levels, as fractions of unthrottled bandwidth.
MBA_LEVELS = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1)


@dataclass
class MbaController:
    """Per-node throttle state.

    Attributes:
        monitor: the node's bandwidth monitor, which enforces the caps.
        supported: whether this node's CPU has MBA ("only works on the
            latest CPU", Sec. V-D).
    """

    monitor: BandwidthMonitor
    supported: bool = True
    _levels: Dict[str, float] = field(default_factory=dict)

    def throttle_level(self, job_id: str) -> float:
        """Current throttle fraction for ``job_id`` (1.0 = unthrottled)."""
        return self._levels.get(job_id, 1.0)

    def throttle_down(self, job_id: str) -> float:
        """Step the job to the next-lower MBA level and apply the cap.

        Returns:
            The new throttle fraction.

        Raises:
            RuntimeError: if this node has no MBA support.
        """
        if not self.supported:
            raise RuntimeError("MBA not supported on this node")
        current = self.throttle_level(job_id)
        lower = [level for level in MBA_LEVELS if level < current - 1e-9]
        new_level = lower[0] if lower else MBA_LEVELS[-1]
        self._apply(job_id, new_level)
        return new_level

    def set_level(self, job_id: str, level: float) -> None:
        """Set an explicit throttle fraction (must be one of MBA_LEVELS)."""
        if not self.supported:
            raise RuntimeError("MBA not supported on this node")
        if not any(abs(level - known) < 1e-9 for known in MBA_LEVELS):
            raise ValueError(f"not an MBA level: {level}")
        self._apply(job_id, level)

    def release(self, job_id: str) -> None:
        """Lift any throttle on ``job_id`` (e.g., when it finishes)."""
        if self._levels.pop(job_id, None) is not None and self.monitor.has(job_id):
            self.monitor.set_cap(job_id, None)

    def throttled_jobs(self) -> Dict[str, float]:
        return dict(self._levels)

    def has_throttles(self) -> bool:
        """O(1): is any job currently throttled on this node?"""
        return bool(self._levels)

    def snapshot(self) -> Dict[str, float]:
        """Serializable throttle levels (caps live in the monitor)."""
        return dict(self._levels)

    def restore(self, levels: Dict[str, float]) -> None:
        self._levels = {job_id: float(level) for job_id, level in levels.items()}

    def _apply(self, job_id: str, level: float) -> None:
        usage = self.monitor.usage_of(job_id)
        if abs(level - 1.0) < 1e-9:
            self._levels.pop(job_id, None)
            self.monitor.set_cap(job_id, None)
        else:
            self._levels[job_id] = level
            self.monitor.set_cap(job_id, usage.demand * level)
