"""Memory-bandwidth monitoring (the simulated Intel MBM).

The paper's contention eliminator uses Intel Memory Bandwidth Monitoring to
read, per node, (a) the total memory bandwidth in use and (b) each job's
contribution (Sec. V-D).  Here the monitor is also the arbiter: given each
job's *demand* (from the performance model) and any per-job caps (from the
simulated MBA, :mod:`repro.cluster.mba`), it computes each job's *granted*
bandwidth by max-min fair water-filling over the node's capacity.

A job whose grant is below its demand runs its memory-bound work slower by
the ratio ``granted / demand`` — that is how contention reaches the
performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass
class BandwidthUsage:
    """One job's bandwidth state on one node (all values in GB/s)."""

    job_id: str
    demand: float
    is_cpu_job: bool
    is_inference: bool = False
    cap: Optional[float] = None
    granted: float = 0.0

    @property
    def effective_demand(self) -> float:
        """Demand after applying any MBA cap."""
        if self.cap is None:
            return self.demand
        return min(self.demand, self.cap)


class BandwidthMonitor:
    """Per-node bandwidth accounting and fair-share arbitration."""

    def __init__(self, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise ValueError(f"bandwidth capacity must be positive: {capacity_gbps}")
        self.capacity_gbps = float(capacity_gbps)
        self._usages: Dict[str, BandwidthUsage] = {}
        self._outage_until = float("-inf")
        self._last_sample_time: Optional[float] = None
        # Grants only change inside _arbitrate, so the total is maintained
        # there instead of being re-summed on every pressure reading.
        self._total_granted = 0.0
        self._cpu_job_count = 0
        #: Bumped every arbitration — the only place grants (and therefore
        #: every grant_ratio and the node pressure) can change.  Consumers
        #: that derive values from grants may compare epochs instead of
        #: re-reading them; note the cluster-wide GenerationCounter does
        #: *not* cover grant changes (throttles re-arbitrate without
        #: touching capacity), which is why this counter exists.
        self.epoch = 0

    # ------------------------------------------------------------------ #
    # Telemetry health (fault injection)

    def begin_outage(self, until: float) -> None:
        """Blind the monitor until ``until`` (simulated MBM dropout).

        Overlapping outages extend rather than shorten each other; the
        arbitration below keeps running on ground truth — only *readings*
        are withheld, which is exactly what a dead perf counter does.
        """
        self._outage_until = max(self._outage_until, until)

    def telemetry_up(self, now: float) -> bool:
        return now >= self._outage_until

    def observe(self, now: float) -> Optional[float]:
        """Read total bandwidth pressure, or ``None`` during an outage.

        Successful reads refresh the sample timestamp that
        :meth:`sample_age` reports, so consumers can distinguish "briefly
        blind" from "stale beyond trust".
        """
        if not self.telemetry_up(now):
            return None
        self._last_sample_time = now
        return self.pressure

    def sample_age(self, now: float) -> float:
        """Seconds since the last successful read (inf if never read)."""
        if self._last_sample_time is None:
            return float("inf")
        return now - self._last_sample_time

    def sync_sample_time(self, when: float) -> None:
        """Adopt ``when`` as the last successful read time (if newer).

        Used by the activity-indexed monitor: a node outside the active
        set is *provably* telemetry-up at every skipped tick, so when it
        re-enters the set the runner back-fills the sample timestamp an
        eager per-tick :meth:`observe` would have left — the staleness
        window then behaves identically to a monitor that was never
        skipped.  Callers own that proof; this only moves the stamp
        forward, never back.
        """
        if self._last_sample_time is None or when > self._last_sample_time:
            self._last_sample_time = when

    # ------------------------------------------------------------------ #
    # Registration

    def register(
        self,
        job_id: str,
        demand_gbps: float,
        *,
        is_cpu_job: bool,
        is_inference: bool = False,
    ) -> None:
        """Start tracking ``job_id`` with the given bandwidth demand."""
        if demand_gbps < 0:
            raise ValueError(f"negative bandwidth demand for {job_id}: {demand_gbps}")
        if job_id in self._usages:
            raise RuntimeError(f"job {job_id} already registered on this monitor")
        self._usages[job_id] = BandwidthUsage(
            job_id=job_id,
            demand=float(demand_gbps),
            is_cpu_job=is_cpu_job,
            is_inference=is_inference,
        )
        if is_cpu_job:
            self._cpu_job_count += 1
        self._arbitrate()

    def update_demand(self, job_id: str, demand_gbps: float) -> None:
        """Change a registered job's demand (e.g., the model changed phase).

        An update to the *identical* demand is observably a no-op: grants
        are a pure function of (membership, demands, caps), so water-
        filling would land on the same vector bit-for-bit.  Returning
        early keeps the epoch unmoved, which is what lets downstream
        epoch-keyed repricing memos survive the allocator's steady-state
        demand re-pushes instead of being invalidated by them.
        """
        if demand_gbps < 0:
            raise ValueError(f"negative bandwidth demand for {job_id}: {demand_gbps}")
        usage = self._usages[job_id]
        demand = float(demand_gbps)
        if usage.demand == demand:
            return
        usage.demand = demand
        self._arbitrate()

    def unregister(self, job_id: str) -> None:
        """Stop tracking ``job_id``; silently ignores unknown ids so release
        paths do not have to know whether a job ever touched memory."""
        usage = self._usages.pop(job_id, None)
        if usage is not None:
            if usage.is_cpu_job:
                self._cpu_job_count -= 1
            self._arbitrate()

    # ------------------------------------------------------------------ #
    # Throttling (driven by the MBA controller)

    def set_cap(self, job_id: str, cap_gbps: Optional[float]) -> None:
        """Apply (or with ``None``, lift) an MBA throttle on ``job_id``."""
        if cap_gbps is not None and cap_gbps < 0:
            raise ValueError(f"negative bandwidth cap for {job_id}: {cap_gbps}")
        self._usages[job_id].cap = cap_gbps
        self._arbitrate()

    # ------------------------------------------------------------------ #
    # Readings (what the eliminator sees)

    @property
    def total_demand(self) -> float:
        return sum(usage.effective_demand for usage in self._usages.values())

    @property
    def unthrottled_demand_gbps(self) -> float:
        """Total raw demand, ignoring MBA caps — what the node's pressure
        *would* be if every throttle were lifted (the eliminator's release
        test)."""
        return sum(usage.demand for usage in self._usages.values())

    @property
    def total_granted(self) -> float:
        return self._total_granted

    @property
    def pressure(self) -> float:
        """Total granted bandwidth as a fraction of capacity, in [0, 1]."""
        return self._total_granted / self.capacity_gbps

    def usage_of(self, job_id: str) -> BandwidthUsage:
        return self._usages[job_id]

    def has(self, job_id: str) -> bool:
        return job_id in self._usages

    def has_cpu_jobs(self) -> bool:
        """O(1): does any registered usage belong to a CPU job?"""
        return self._cpu_job_count > 0

    def cpu_job_usages(self) -> Dict[str, BandwidthUsage]:
        """CPU jobs' usages, sorted view for the eliminator to pick victims."""
        return {
            job_id: usage
            for job_id, usage in self._usages.items()
            if usage.is_cpu_job
        }

    def grant_ratio(self, job_id: str) -> float:
        """granted / demand for ``job_id`` — 1.0 means uncontended.

        Jobs with zero demand are by definition uncontended.
        """
        usage = self._usages[job_id]
        if usage.demand <= 0:
            return 1.0
        return usage.granted / usage.demand

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable monitor state, including computed grants.

        Grants are carried verbatim so :meth:`restore` never re-runs
        :meth:`_arbitrate` — water-filling is deterministic, but restoring
        the stored floats exactly is what keeps a restored run
        byte-identical without having to prove it.
        """
        return {
            "usages": [
                [
                    usage.job_id,
                    usage.demand,
                    usage.is_cpu_job,
                    usage.is_inference,
                    usage.cap,
                    usage.granted,
                ]
                for usage in self._usages.values()
            ],
            "outage_until": self._outage_until,
            "last_sample_time": self._last_sample_time,
            "total_granted": self._total_granted,
            "cpu_job_count": self._cpu_job_count,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._usages = {}
        for job_id, demand, is_cpu, is_inf, cap, granted in state["usages"]:
            self._usages[job_id] = BandwidthUsage(
                job_id=job_id,
                demand=float(demand),
                is_cpu_job=bool(is_cpu),
                is_inference=bool(is_inf),
                cap=None if cap is None else float(cap),
                granted=float(granted),
            )
        self._outage_until = float(state["outage_until"])
        raw_sample = state["last_sample_time"]
        self._last_sample_time = (
            None if raw_sample is None else float(raw_sample)
        )
        self._total_granted = float(state["total_granted"])
        self._cpu_job_count = int(state["cpu_job_count"])
        # Restore replaces grants wholesale; treat it as an arbitration so
        # any epoch-keyed memo built against the old state goes stale.
        self.epoch += 1

    # ------------------------------------------------------------------ #
    # Arbitration

    def _arbitrate(self) -> None:
        """Max-min fair water-filling of capacity over effective demands.

        Classic algorithm: repeatedly split the remaining capacity equally
        among unsatisfied jobs; jobs whose demand is below the equal share
        are granted their demand exactly and leave the pool.
        """
        usages = list(self._usages.values())
        demands = [u.effective_demand for u in usages]
        if self.capacity_gbps - sum(demands) > 1e-9:
            # Uncontended fast path: with headroom comfortably past the
            # loop's 1e-12 remaining-capacity guard (the 1e-9 margin dwarfs
            # any sequential-subtraction rounding the rounds could
            # accumulate), water-filling provably grants every job its
            # effective demand exactly — each round's fair share exceeds
            # the smallest pending demand, so the rounds drain without the
            # guard ever tripping.  Skip them and land on the identical
            # grant vector directly.
            for usage, demand in zip(usages, demands):
                usage.granted = demand if demand > 0 else 0.0
            total = 0.0
            for usage in usages:
                if math.isnan(usage.granted):
                    raise ArithmeticError(
                        f"NaN bandwidth grant for {usage.job_id}"
                    )
                total += usage.granted
            self._total_granted = total
            self.epoch += 1
            return
        pending = [u for u in usages if u.effective_demand > 0]
        for usage in usages:
            usage.granted = 0.0
        remaining = self.capacity_gbps
        while pending and remaining > 1e-12:
            fair_share = remaining / len(pending)
            satisfied = [u for u in pending if u.effective_demand <= fair_share]
            if satisfied:
                for usage in satisfied:
                    usage.granted = usage.effective_demand
                    remaining -= usage.effective_demand
                pending = [u for u in pending if u.effective_demand > fair_share]
            else:
                for usage in pending:
                    usage.granted = fair_share
                remaining = 0.0
                pending = []
        # Guard against float drift producing grants epsilon above demand.
        total = 0.0
        for usage in self._usages.values():
            usage.granted = min(usage.granted, usage.effective_demand)
            if math.isnan(usage.granted):
                raise ArithmeticError(f"NaN bandwidth grant for {usage.job_id}")
            total += usage.granted
        self._total_granted = total
        self.epoch += 1
