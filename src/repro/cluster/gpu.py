"""GPU device state.

A GPU in this model is a single-tenant device: it is either free or owned by
exactly one DNN training job (the paper never space-shares a GPU between
jobs).  Its *utilization* is the fraction of wall time the owning job keeps
it computing, which the performance model prices from the job's CPU
allocation and the node's contention state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Gpu:
    """One physical GPU (the paper's testbed is mostly GTX 1080Ti).

    Attributes:
        gpu_id: index of the GPU within its node.
        model_name: device model, informational only.
        owner: id of the job currently owning the device, or ``None``.
        utilization: current time-fraction busy, in [0, 1]; meaningful only
            while owned.  Kept on the device so monitors (and the contention
            eliminator, which watches for utilization drops) can read it
            without reaching into the job.
        failed: True while the device is broken (fault injection); a failed
            GPU is neither free nor assignable until repaired.
    """

    gpu_id: int
    model_name: str = "GTX-1080Ti"
    owner: Optional[str] = field(default=None)
    utilization: float = field(default=0.0)
    failed: bool = field(default=False)

    @property
    def is_free(self) -> bool:
        return self.owner is None and not self.failed

    def mark_failed(self) -> None:
        """Take the device out of service.

        Raises:
            RuntimeError: if still owned — the owner must be evicted first
                so the job's restart bookkeeping happens exactly once.
        """
        if self.owner is not None:
            raise RuntimeError(
                f"GPU {self.gpu_id} still owned by {self.owner}; evict the "
                "owner before failing the device"
            )
        self.failed = True
        self.utilization = 0.0

    def repair(self) -> None:
        """Return the device to service. Idempotent."""
        self.failed = False

    def assign(self, job_id: str) -> None:
        """Give the device to ``job_id``.

        Raises:
            RuntimeError: if the device is already owned.  Double assignment
                means the cluster bookkeeping diverged from reality, which
                must fail loudly.
        """
        if self.owner is not None:
            raise RuntimeError(
                f"GPU {self.gpu_id} already owned by {self.owner}, "
                f"cannot assign to {job_id}"
            )
        if self.failed:
            raise RuntimeError(
                f"GPU {self.gpu_id} is failed, cannot assign to {job_id}"
            )
        self.owner = job_id

    def release(self, job_id: str) -> None:
        """Return the device; only the current owner may release it."""
        if self.owner != job_id:
            raise RuntimeError(
                f"GPU {self.gpu_id} owned by {self.owner}, "
                f"release requested by {job_id}"
            )
        self.owner = None
        self.utilization = 0.0
