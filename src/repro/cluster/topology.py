"""Rack topology.

The paper's testbed interconnects its ~80 servers with 10 Gb/s Infiniband
(Sec. IV-B2) and says nothing further about structure; production clusters
of that size are racked, with inter-rack links oversubscribed relative to
intra-rack ones.  This module adds that structure as an *optional* layer:
a flat topology (every node in one rack) reproduces the paper's setting
exactly, while a racked topology lets the scheduler's rack-aware gang
placement (an extension) and the interconnect's oversubscription model be
studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.cluster.interconnect import Interconnect


@dataclass(frozen=True)
class RackTopology:
    """Assignment of node ids to racks."""

    rack_of_node: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id, rack_id in self.rack_of_node.items():
            if node_id < 0 or rack_id < 0:
                raise ValueError(
                    f"negative id in topology: node {node_id} rack {rack_id}"
                )

    @classmethod
    def flat(cls, num_nodes: int) -> "RackTopology":
        """Everything in one rack — the paper's (unstated) structure."""
        return cls(rack_of_node={node_id: 0 for node_id in range(num_nodes)})

    @classmethod
    def uniform(cls, num_nodes: int, nodes_per_rack: int) -> "RackTopology":
        """Consecutive node ids fill racks of ``nodes_per_rack``."""
        if nodes_per_rack < 1:
            raise ValueError(f"nodes_per_rack must be >= 1: {nodes_per_rack}")
        return cls(
            rack_of_node={
                node_id: node_id // nodes_per_rack
                for node_id in range(num_nodes)
            }
        )

    def rack_of(self, node_id: int) -> int:
        rack = self.rack_of_node.get(node_id)
        if rack is None:
            raise KeyError(f"node {node_id} not in topology")
        return rack

    def racks(self) -> List[int]:
        return sorted(set(self.rack_of_node.values()))

    def nodes_in_rack(self, rack_id: int) -> Set[int]:
        return {
            node_id
            for node_id, rack in self.rack_of_node.items()
            if rack == rack_id
        }

    def same_rack(self, node_ids: Iterable[int]) -> bool:
        """True when every given node shares one rack (or none given)."""
        racks = {self.rack_of(node_id) for node_id in node_ids}
        return len(racks) <= 1

    @property
    def num_racks(self) -> int:
        return len(set(self.rack_of_node.values()))


@dataclass(frozen=True)
class RackedInterconnect:
    """Two-tier fabric: full-speed links inside a rack, an oversubscribed
    core between racks.

    ``oversubscription`` is the classic ratio: an inter-rack flow sees
    ``link_gbps / oversubscription``.  1.0 degenerates to the flat fabric.
    """

    topology: RackTopology
    intra_rack: Interconnect = field(default_factory=Interconnect)
    oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1: {self.oversubscription}"
            )

    @property
    def inter_rack(self) -> Interconnect:
        return Interconnect(
            link_gbps=self.intra_rack.link_gbps / self.oversubscription,
            latency_s=self.intra_rack.latency_s * 2,
        )

    def for_nodes(self, node_ids: Sequence[int]) -> Interconnect:
        """The fabric a gang spanning ``node_ids`` synchronizes over."""
        if self.topology.same_rack(node_ids):
            return self.intra_rack
        return self.inter_rack
