"""Allocation records.

An :class:`Allocation` is the scheduler's receipt for resources granted to a
job: one :class:`NodeShare` per node involved.  Single-node jobs (the common
case) have one share; multi-node DNN training jobs (the paper's *aNbG*
configurations with a > 1) have several.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.resources import ResourceVector


@dataclass(frozen=True)
class NodeShare:
    """Resources held on a single node: cores and specific GPU ids."""

    node_id: int
    cpus: int
    gpu_ids: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.cpus < 0:
            raise ValueError(f"negative core count in share: {self}")

    @property
    def gpus(self) -> int:
        return len(self.gpu_ids)

    @property
    def vector(self) -> ResourceVector:
        return ResourceVector(cpus=self.cpus, gpus=self.gpus)


@dataclass
class Allocation:
    """All resources held by one job, across one or more nodes.

    Mutable on purpose: the adaptive CPU allocator retunes the core count of
    a running job in place (via :meth:`Cluster.resize_cpus`), which swaps the
    relevant :class:`NodeShare`.
    """

    job_id: str
    shares: List[NodeShare] = field(default_factory=list)

    @property
    def node_ids(self) -> List[int]:
        return [share.node_id for share in self.shares]

    @property
    def total(self) -> ResourceVector:
        total = ResourceVector()
        for share in self.shares:
            total = total + share.vector
        return total

    @property
    def num_nodes(self) -> int:
        return len(self.shares)

    def share_on(self, node_id: int) -> NodeShare:
        for share in self.shares:
            if share.node_id == node_id:
                return share
        raise KeyError(f"job {self.job_id} holds nothing on node {node_id}")

    def replace_share(self, new_share: NodeShare) -> None:
        """Swap the share on ``new_share.node_id`` (used by core retuning)."""
        for index, share in enumerate(self.shares):
            if share.node_id == new_share.node_id:
                self.shares[index] = new_share
                return
        raise KeyError(
            f"job {self.job_id} holds nothing on node {new_share.node_id}"
        )

    def cpus_by_node(self) -> Dict[int, int]:
        return {share.node_id: share.cpus for share in self.shares}
