"""Resource vectors.

The two schedulable resource types in the paper's cluster are CPU cores and
GPUs (jobs "request a certain number of CPU and GPU separately", Sec. III-A).
:class:`ResourceVector` carries both and supports the arithmetic the
schedulers need: addition/subtraction for bookkeeping, ``fits`` for
admission, and ``dominant_share`` for DRF.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """An amount of (cpus, gpus).

    CPU cores are integral in this system; GPUs always are.  The vector is
    immutable so it can be used as a dict key and shared safely.
    """

    cpus: int = 0
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cpus < 0 or self.gpus < 0:
            raise ValueError(f"resource amounts must be non-negative: {self}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpus + other.cpus, self.gpus + other.gpus)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpus - other.cpus, self.gpus - other.gpus)

    def fits(self, capacity: "ResourceVector") -> bool:
        """True if this demand fits inside ``capacity`` on every dimension."""
        return self.cpus <= capacity.cpus and self.gpus <= capacity.gpus

    def is_zero(self) -> bool:
        return self.cpus == 0 and self.gpus == 0

    def dominant_share(self, total: "ResourceVector") -> float:
        """The DRF dominant share of this usage against cluster ``total``.

        Dimensions with zero total capacity are ignored (a CPU-only cluster
        has no GPU share).  Returns 0.0 for a zero vector.
        """
        shares = []
        if total.cpus > 0:
            shares.append(self.cpus / total.cpus)
        if total.gpus > 0:
            shares.append(self.gpus / total.gpus)
        if not shares:
            raise ValueError("total capacity is zero on every dimension")
        return max(shares)

    def scaled(self, factor: int) -> "ResourceVector":
        """This vector multiplied by a non-negative integer factor."""
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        return ResourceVector(self.cpus * factor, self.gpus * factor)

    def __str__(self) -> str:
        return f"<{self.cpus}c,{self.gpus}g>"
