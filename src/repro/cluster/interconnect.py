"""Inter-node network for multi-node training.

The testbed uses 10 Gb/s Infiniband (Sec. IV-B2).  Multi-node data-parallel
training synchronizes gradients every iteration; with a parameter server the
traffic per worker per iteration is one push (gradients) plus one pull
(updated weights), each the size of the model.  The paper observes that this
costs every model 25-30 % versus 1N4G and pins the per-node CPU demand at
<=2 cores — both of which fall out of this timing model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """Cluster network fabric (bandwidth in GB/s per node link)."""

    link_gbps: float = 1.25  # 10 Gb/s
    latency_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise ValueError(f"link bandwidth must be positive: {self.link_gbps}")
        if self.latency_s < 0:
            raise ValueError(f"negative latency: {self.latency_s}")

    def sync_time(self, model_bytes: float, num_nodes: int) -> float:
        """Per-iteration gradient-synchronization time across ``num_nodes``.

        Single-node jobs synchronize over PCIe/QPI, which the paper treats
        as negligible ("the impact of local communication on the overall
        process is small"), so this returns 0 for ``num_nodes <= 1``.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1: {num_nodes}")
        if model_bytes < 0:
            raise ValueError(f"negative model size: {model_bytes}")
        if num_nodes == 1:
            return 0.0
        push_pull_bytes = 2.0 * model_bytes
        transfer = push_pull_bytes / (self.link_gbps * 1e9)
        return transfer + 2 * self.latency_s
