"""The cluster: a collection of nodes plus allocation bookkeeping.

The cluster is deliberately policy-free.  It can tell a scheduler what fits
where and execute an allocation atomically across nodes, but *which* node to
pick and *when* belongs to :mod:`repro.schedulers` and :mod:`repro.core`.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.allocation import Allocation, NodeShare
from repro.cluster.interconnect import Interconnect
from repro.cluster.node import GenerationCounter, Node
from repro.cluster.topology import RackedInterconnect, RackTopology
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig
from repro.health.tracker import NodeHealthTracker

logger = logging.getLogger(__name__)


class Cluster:
    """All nodes of the simulated GPU cluster."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.nodes: List[Node] = [
            Node(node_id=i, config=node_config)
            for i, node_config in enumerate(self.config.expand())
        ]
        self.interconnect = Interconnect(link_gbps=self.config.interconnect_gbps)
        if self.config.nodes_per_rack is None:
            self.topology = RackTopology.flat(len(self.nodes))
        else:
            self.topology = RackTopology.uniform(
                len(self.nodes), self.config.nodes_per_rack
            )
        self.fabric = RackedInterconnect(
            topology=self.topology,
            intra_rack=self.interconnect,
            oversubscription=self.config.rack_oversubscription,
        )
        self._allocations: Dict[str, Allocation] = {}
        #: Per-node health states (see :mod:`repro.health`); the default
        #: tracker never sees a strike, so every node reads HEALTHY.  The
        #: runner swaps in a configured tracker when health is tuned.
        self.health = NodeHealthTracker()
        #: One mutation counter shared by every node, so a single integer
        #: answers "has any free capacity changed since I last looked".
        self._generation = GenerationCounter()
        for node in self.nodes:
            node.generation = self._generation
        #: Single-entry free-capacity snapshot memo, managed by
        #: :mod:`repro.schedulers.placement` and invalidated through
        #: :attr:`version` (plus the health tracker's own version).
        self.free_snapshot_cache: Any = None
        # Total capacity never changes after construction (a failed GPU
        # still counts toward the total), so compute it once.
        self._total = ResourceVector(
            cpus=sum(node.total_cpus for node in self.nodes),
            gpus=sum(node.total_gpus for node in self.nodes),
        )

    # ------------------------------------------------------------------ #
    # Capacity and usage

    @property
    def version(self) -> int:
        """Monotone counter bumped by every capacity-affecting mutation."""
        return self._generation.value

    @property
    def capacity_freed(self) -> int:
        """Monotone counter bumped only by capacity-*increasing* mutations
        (release, resize-down, mark_up, repair, quarantine exit).  The
        schedulers' pass gates compare it between passes: while it holds
        still and no queue changed, every previously blocked job is still
        blocked (consumption cannot unblock anyone)."""
        return self._generation.freed

    def note_capacity_freed(self, node_id: int) -> None:
        """Record a capacity increase that no node mutator saw — the one
        case today is quarantine expiry, where a node's capacity returns
        by a deadline passing rather than by any write."""
        self._generation.bump_node(node_id, freed=True)

    def dirty_capacity(self) -> Tuple[bool, set]:
        """``(coarse, touched)``: which nodes changed since the snapshot
        cache last caught up.  ``coarse`` means an unattributed mutation
        happened and only a full rebuild is safe."""
        return self._generation.coarse, self._generation.touched

    def clear_dirty_capacity(self) -> None:
        """The snapshot cache has caught up with every recorded change."""
        self._generation.coarse = False
        self._generation.touched.clear()

    @property
    def total(self) -> ResourceVector:
        return self._total

    @property
    def used(self) -> ResourceVector:
        return ResourceVector(
            cpus=sum(node.used_cpus for node in self.nodes),
            gpus=sum(node.used_gpus for node in self.nodes),
        )

    @property
    def free(self) -> ResourceVector:
        return self.total - self.used

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def allocation_of(self, job_id: str) -> Allocation:
        return self._allocations[job_id]

    def has_allocation(self, job_id: str) -> bool:
        return job_id in self._allocations

    def allocations(self) -> Dict[str, Allocation]:
        return dict(self._allocations)

    # ------------------------------------------------------------------ #
    # Allocation

    def allocate(
        self, job_id: str, placements: Sequence[Tuple[int, int, int]]
    ) -> Allocation:
        """Atomically allocate ``[(node_id, cpus, gpus), ...]`` to a job.

        Either every share is granted or none is: a partial multi-node grant
        would deadlock the cluster, so on any failure the already-granted
        shares are rolled back before re-raising.
        """
        if job_id in self._allocations:
            raise RuntimeError(f"job {job_id} already has an allocation")
        if not placements:
            raise ValueError(f"empty placement list for job {job_id}")
        granted: List[NodeShare] = []
        try:
            for node_id, cpus, gpus in placements:
                granted.append(self.nodes[node_id].allocate(job_id, cpus, gpus))
        except (RuntimeError, ValueError, IndexError) as error:
            # Node.allocate's capacity guards (RuntimeError), request
            # validation (ValueError), and a bad node id (IndexError) are
            # the only failures a placement can raise; anything else is a
            # bug and must propagate untouched, not be absorbed into the
            # rollback path.
            logger.warning(
                "rolling back partial allocation of %s after %d/%d shares: %s",
                job_id,
                len(granted),
                len(placements),
                error,
            )
            for share in granted:
                self.nodes[share.node_id].release(job_id)
            raise
        allocation = Allocation(job_id=job_id, shares=granted)
        self._allocations[job_id] = allocation
        return allocation

    def release(self, job_id: str) -> Allocation:
        """Release everything the job holds, across all of its nodes."""
        allocation = self._allocations.pop(job_id, None)
        if allocation is None:
            raise RuntimeError(f"job {job_id} has no allocation to release")
        for share in allocation.shares:
            self.nodes[share.node_id].release(job_id)
        return allocation

    def resize_cpus(self, job_id: str, cpus_by_node: Dict[int, int]) -> Allocation:
        """Retune a running job's cores on the given nodes."""
        allocation = self._allocations.get(job_id)
        if allocation is None:
            raise RuntimeError(f"job {job_id} has no allocation to resize")
        for node_id, new_cpus in cpus_by_node.items():
            new_share = self.nodes[node_id].resize_cpus(job_id, new_cpus)
            allocation.replace_share(new_share)
        return allocation

    # ------------------------------------------------------------------ #
    # Cluster-wide readings (for metrics)

    def gpu_active_count(self) -> int:
        """Number of GPUs currently owned by a job."""
        return sum(node.used_gpus for node in self.nodes)

    def gpu_active_rate(self) -> float:
        """Fraction of all GPUs owned by a job (the paper's 'active rate')."""
        total = self.total.gpus
        if total == 0:
            return 0.0
        return self.gpu_active_count() / total

    def cpu_active_rate(self) -> float:
        total = self.total.cpus
        if total == 0:
            return 0.0
        return self.used.cpus / total

    def mean_gpu_utilization(self, *, active_only: bool = True) -> float:
        """Average GPU utilization, across active GPUs by default.

        The paper computes utilization "as the average across all active"
        devices (Sec. III-A1); passing ``active_only=False`` averages over
        every GPU, idle ones counting as zero.
        """
        utils: List[float] = []
        for node in self.nodes:
            if active_only and node.used_gpus == 0:
                continue  # no owned GPUs: nothing would be appended
            for gpu in node.gpus:
                if gpu.is_free:
                    if not active_only:
                        utils.append(0.0)
                else:
                    utils.append(gpu.utilization)
        if not utils:
            return 0.0
        return sum(utils) / len(utils)

    def nodes_with_free(
        self, cpus: int, gpus: int, *, among: Optional[Iterable[int]] = None
    ) -> List[Node]:
        """Nodes that could host a (cpus, gpus) share right now."""
        candidates = (
            self.nodes if among is None else [self.nodes[i] for i in among]
        )
        return [node for node in candidates if node.can_fit(cpus, gpus)]

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable cluster state: nodes, allocations, health, version."""
        return {
            "generation": self._generation.value,
            "nodes": [node.snapshot() for node in self.nodes],
            "allocations": {
                job_id: [
                    [share.node_id, share.cpus, list(share.gpu_ids)]
                    for share in allocation.shares
                ]
                for job_id, allocation in self._allocations.items()
            },
            "health": self.health.snapshot(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rewind to a snapshot taken on an identically-configured cluster.

        The node restores bump the shared generation counter (every
        capacity write must, per the invalidation contracts); the counter
        is then pinned back to its snapshotted value so version-keyed
        memo keys evolve identically to the uninterrupted run.
        """
        if len(state["nodes"]) != len(self.nodes):
            raise ValueError(
                f"snapshot has {len(state['nodes'])} node(s), cluster has "
                f"{len(self.nodes)}"
            )
        for node, node_state in zip(self.nodes, state["nodes"]):
            node.restore(node_state)
        self._allocations = {
            job_id: Allocation(
                job_id=job_id,
                shares=[
                    NodeShare(
                        node_id=int(node_id),
                        cpus=int(cpus),
                        gpu_ids=tuple(int(gpu_id) for gpu_id in gpu_ids),
                    )
                    for node_id, cpus, gpu_ids in shares
                ],
            )
            for job_id, shares in state["allocations"].items()
        }
        self._generation.bump()
        self.health.restore(state["health"])
        self._generation.value = int(state["generation"])
        self.free_snapshot_cache = None

    def __repr__(self) -> str:
        return (
            f"Cluster(nodes={len(self.nodes)}, used={self.used}, "
            f"total={self.total})"
        )
