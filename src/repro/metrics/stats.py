"""Distribution statistics for queueing-time figures.

The paper reports queueing behaviour three ways: full CDFs (Figs. 2c, 11),
tail fractions ("43.1 % of GPU jobs suffer from queuing time more than ten
minutes"), and per-user 99 %-iles (Fig. 12).  These helpers compute all
three from raw value lists.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation.

    Raises on an empty input: a percentile of nothing is a caller bug, not
    a zero.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([1.0, 2.0, 3.0, 4.0], 100)
    4.0
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of [0, 100]: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # The equal-value check matters for denormal floats, where the
        # weighted sum below can underflow and break monotonicity in q.
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def fraction_exceeding(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly greater than ``threshold`` (0 if empty).

    >>> fraction_exceeding([5.0, 15.0, 25.0, 35.0], 20.0)
    0.5
    >>> fraction_exceeding([], 20.0)
    0.0
    """
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values less than or equal to ``threshold`` (0 if empty)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) steps."""
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / n)
        else:
            points.append((value, index / n))
    return points


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
