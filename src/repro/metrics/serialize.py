"""Exact JSON serialization of :class:`~repro.experiments.runner.RunResult`.

The parallel experiment harness (:mod:`repro.parallel`) moves results
across process boundaries and in and out of the on-disk result cache, so
the round trip must be *exact*: deserializing a serialized result yields a
result whose re-serialization is byte-identical.  JSON gives that for free
— Python emits floats via ``repr``, the shortest string that parses back
to the same IEEE-754 value — as long as every container is restored to
its original shape (tuples back to tuples, enum members back from their
values, insertion order preserved).

Only plain data crosses this boundary.  Callables, engines, and scheduler
state never enter a :class:`RunResult`, which is what makes the cache
sound: a result is a pure function of its :class:`~repro.parallel.RunSpec`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple, cast

from repro.metrics.audit import AuditStats, InvariantViolation
from repro.metrics.collector import JobRecord, MetricsCollector
from repro.metrics.faults import FaultStats
from repro.metrics.fragmentation import FragmentationTracker
from repro.metrics.series import SampledSeries
from repro.workload.job import JobKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import RunResult

#: Bumped whenever the serialized shape changes; part of the result
#: cache's code fingerprint, so stale cache entries never deserialize.
#: v2: RunResult gained ``stale_timer_fires`` (lazy completion timers).
RESULT_SCHEMA_VERSION = 2

#: JobRecord fields serialized verbatim (everything except the enum).
_RECORD_FIELDS = (
    "job_id",
    "tenant_id",
    "submit_time",
    "first_start",
    "finish_time",
    "start_count",
    "preempt_count",
    "failure_count",
    "requested_cpus",
    "final_cpus",
    "gpus",
    "model",
    "setup_label",
)

#: The collector's sampled series, in declaration order.
_SERIES_NAMES = (
    "gpu_active_rate",
    "gpu_utilization",
    "gpu_utilization_overall",
    "cpu_active_rate",
    "gpu_queue_depth",
    "cpu_queue_depth",
    "hot_nodes",
)

#: FaultStats scalar counters (the open-outage map is handled separately).
_FAULT_FIELDS = (
    "node_failures",
    "gpu_failures",
    "telemetry_dropouts",
    "stragglers",
    "restarts",
    "quarantines",
    "lost_gpu_iterations",
    "lost_cpu_seconds",
    "node_downtime_s",
)

#: RunResult scalar fields besides the collector.
_RESULT_FIELDS = (
    "scheduler_name",
    "horizon_s",
    "finished_gpu_jobs",
    "finished_cpu_jobs",
    "preemptions",
    "events_fired",
    "restarts",
    "node_downtime_s",
    "quarantines",
    "quarantine_s",
    "dead_jobs",
    "flap_suppressions",
    "stale_timer_fires",
)


def _record_to_dict(record: JobRecord) -> Dict[str, Any]:
    data: Dict[str, Any] = {name: getattr(record, name) for name in _RECORD_FIELDS}
    data["kind"] = record.kind.value
    return data


def _record_from_dict(data: Dict[str, Any]) -> JobRecord:
    fields = {name: data[name] for name in _RECORD_FIELDS}
    return JobRecord(kind=JobKind(data["kind"]), **fields)


def _series_points(series: SampledSeries) -> List[List[float]]:
    return [[t, value] for t, value in series.points]


def _restore_points(points: List[List[float]]) -> List[Tuple[float, float]]:
    return [(t, value) for t, value in points]


def collector_to_dict(collector: MetricsCollector) -> Dict[str, Any]:
    """Plain-data snapshot of a collector; see :func:`collector_from_dict`."""
    faults = collector.faults
    audit = collector.audit
    return {
        # A list, not a mapping: JSON objects would survive, but a list
        # keeps insertion order explicit and independent of key sorting.
        "records": [_record_to_dict(r) for r in collector.records.values()],
        "series": {
            name: _series_points(getattr(collector, name))
            for name in _SERIES_NAMES
        },
        "fragmentation": [list(sample) for sample in collector.fragmentation.samples],
        "faults": {
            **{name: getattr(faults, name) for name in _FAULT_FIELDS},
            "down_since": sorted(faults._down_since.items()),
        },
        "audit": {
            "checks_run": audit.checks_run,
            "assertions_evaluated": audit.assertions_evaluated,
            "violations": [
                [v.time, v.code, v.message] for v in audit.violations
            ],
        },
        "throttle_events": collector.throttle_events,
        "core_halving_events": collector.core_halving_events,
    }


def collector_from_dict(data: Dict[str, Any]) -> MetricsCollector:
    collector = MetricsCollector()
    for record_data in data["records"]:
        record = _record_from_dict(record_data)
        collector.records[record.job_id] = record
    for name in _SERIES_NAMES:
        series = cast(SampledSeries, getattr(collector, name))
        series.points = _restore_points(data["series"][name])
    collector.fragmentation = FragmentationTracker(
        samples=[(t, frac, depth) for t, frac, depth in data["fragmentation"]]
    )
    faults = FaultStats(
        **{name: data["faults"][name] for name in _FAULT_FIELDS}
    )
    faults._down_since = {
        node_id: since for node_id, since in data["faults"]["down_since"]
    }
    collector.faults = faults
    audit_data = data["audit"]
    collector.audit = AuditStats(
        checks_run=audit_data["checks_run"],
        assertions_evaluated=audit_data["assertions_evaluated"],
        violations=[
            InvariantViolation(time=time, code=code, message=message)
            for time, code, message in audit_data["violations"]
        ],
    )
    collector.throttle_events = data["throttle_events"]
    collector.core_halving_events = data["core_halving_events"]
    return collector


def run_result_to_dict(result: "RunResult") -> Dict[str, Any]:
    """Serialize a run result to plain JSON-safe data."""
    data: Dict[str, Any] = {name: getattr(result, name) for name in _RESULT_FIELDS}
    data["schema"] = RESULT_SCHEMA_VERSION
    data["collector"] = collector_to_dict(result.collector)
    return data


def run_result_from_dict(data: Dict[str, Any]) -> "RunResult":
    """Rebuild a run result from :func:`run_result_to_dict` output."""
    from repro.experiments.runner import RunResult

    schema = data.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"serialized result schema {schema!r} != {RESULT_SCHEMA_VERSION}"
        )
    fields = {name: data[name] for name in _RESULT_FIELDS}
    return RunResult(collector=collector_from_dict(data["collector"]), **fields)
