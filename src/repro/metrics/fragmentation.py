"""GPU fragmentation accounting (Sec. VI-C).

The paper's definition: GPUs sit unused *while GPU jobs are queued* —
either because the node hosting free GPUs has no CPU cores left for the
training job, or because a >=4-GPU job cannot find enough co-resident free
GPUs.  The fragmentation *rate* is the fraction of all GPUs idle at
moments when at least one GPU job is waiting, averaged over those moments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class FragmentationTracker:
    """Samples of (free GPU fraction, gpu-queue depth)."""

    samples: List[Tuple[float, float, int]] = field(default_factory=list)

    def record(self, t: float, free_gpu_fraction: float, gpu_queue_depth: int) -> None:
        if not 0.0 <= free_gpu_fraction <= 1.0:
            raise ValueError(f"free fraction out of [0, 1]: {free_gpu_fraction}")
        if gpu_queue_depth < 0:
            raise ValueError(f"negative queue depth: {gpu_queue_depth}")
        self.samples.append((t, free_gpu_fraction, gpu_queue_depth))

    def fragmentation_rate(self) -> float:
        """Mean free-GPU fraction over samples with a non-empty GPU queue.

        Returns 0.0 when the queue was never non-empty: with nobody
        waiting, idle GPUs are spare capacity, not fragmentation.
        """
        contended = [frac for _, frac, depth in self.samples if depth > 0]
        if not contended:
            return 0.0
        return sum(contended) / len(contended)

    def contended_fraction(self) -> float:
        """Fraction of samples at which at least one GPU job was queued."""
        if not self.samples:
            return 0.0
        return sum(1 for _, _, depth in self.samples if depth > 0) / len(
            self.samples
        )
