"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["policy", "util"], [("fifo", 0.61), ("coda", 0.85)]))
    policy  util
    ------  ----
    fifo    0.61
    coda    0.85
    """
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Sequence[Tuple[float, float]],
    *,
    max_points: int = 24,
    value_format: str = "{:.3f}",
) -> str:
    """Render a (t, value) series, thinned to at most ``max_points`` rows."""
    if not points:
        return f"{name}: (empty)"
    step = max(1, len(points) // max_points)
    thinned = list(points[::step])
    if thinned[-1] != points[-1]:
        thinned.append(points[-1])
    rows = [
        (f"{t:.0f}", value_format.format(value)) for t, value in thinned
    ]
    return render_table(["t(s)", name], rows)


def render_cdf(
    name: str,
    points: Sequence[Tuple[float, float]],
    *,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99),
) -> str:
    """Render an empirical CDF at the given cumulative fractions."""
    if not points:
        return f"{name}: (empty)"
    rows = []
    for target in fractions:
        value = next(
            (v for v, frac in points if frac >= target), points[-1][0]
        )
        rows.append((f"p{target * 100:.0f}", f"{value:.1f}"))
    return render_table(["fraction", name], rows)
