"""The simulation's metrics collector.

One collector per run.  The runner pushes job lifecycle events and periodic
cluster samples into it; the experiment harness reads figures out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.metrics.audit import AuditStats
from repro.metrics.faults import FaultStats
from repro.metrics.fragmentation import FragmentationTracker
from repro.metrics.series import SampledSeries
from repro.workload.job import Job, JobKind


@dataclass
class JobRecord:
    """Lifecycle of one job through a run."""

    job_id: str
    kind: JobKind
    tenant_id: int
    submit_time: float
    first_start: Optional[float] = None
    finish_time: Optional[float] = None
    start_count: int = 0
    preempt_count: int = 0
    failure_count: int = 0
    requested_cpus: int = 0
    final_cpus: Optional[int] = None
    gpus: int = 0
    model: Optional[str] = None
    setup_label: Optional[str] = None

    @property
    def queueing_time(self) -> Optional[float]:
        """Submit-to-first-start delay; None while still queued."""
        if self.first_start is None:
            return None
        return self.first_start - self.submit_time

    @property
    def end_to_end(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def processing_time(self) -> Optional[float]:
        if self.finish_time is None or self.first_start is None:
            return None
        return self.finish_time - self.first_start

    @property
    def core_adjustment(self) -> Optional[int]:
        """Final minus requested per-node cores (the Fig. 14 histogram)."""
        if self.final_cpus is None:
            return None
        return self.final_cpus - self.requested_cpus


class MetricsCollector:
    """Aggregates everything the evaluation figures need."""

    def __init__(self) -> None:
        self.records: Dict[str, JobRecord] = {}
        self.gpu_active_rate = SampledSeries("gpu_active_rate")
        self.gpu_utilization = SampledSeries("gpu_utilization")
        self.gpu_utilization_overall = SampledSeries("gpu_utilization_overall")
        self.cpu_active_rate = SampledSeries("cpu_active_rate")
        self.gpu_queue_depth = SampledSeries("gpu_queue_depth")
        self.cpu_queue_depth = SampledSeries("cpu_queue_depth")
        self.hot_nodes = SampledSeries("hot_nodes")
        self.fragmentation = FragmentationTracker()
        self.faults = FaultStats()
        self.audit = AuditStats()
        self.throttle_events = 0
        self.core_halving_events = 0

    # ------------------------------------------------------------------ #
    # Job lifecycle

    def job_submitted(self, job: Job, now: float) -> None:
        if job.job_id in self.records:
            raise RuntimeError(f"job {job.job_id} submitted twice")
        requested = job.requested
        self.records[job.job_id] = JobRecord(
            job_id=job.job_id,
            kind=job.kind,
            tenant_id=job.tenant_id,
            submit_time=now,
            requested_cpus=(
                requested.cpus // max(1, getattr(job, "setup", None).num_nodes)
                if job.kind is JobKind.GPU
                else requested.cpus
            ),
            gpus=requested.gpus,
            model=getattr(job, "model_name", None),
            setup_label=(
                job.setup.label if job.kind is JobKind.GPU else None
            ),
        )

    def job_started(self, job_id: str, now: float, cpus_per_node: int) -> None:
        record = self.records[job_id]
        if record.first_start is None:
            record.first_start = now
        record.start_count += 1
        record.final_cpus = cpus_per_node

    def job_resized(self, job_id: str, cpus_per_node: int) -> None:
        self.records[job_id].final_cpus = cpus_per_node

    def job_preempted(self, job_id: str, now: float) -> None:
        self.records[job_id].preempt_count += 1

    def job_failed(self, job_id: str, now: float) -> None:
        """The job was killed by an infrastructure failure (not policy)."""
        self.records[job_id].failure_count += 1

    def job_finished(self, job_id: str, now: float) -> None:
        record = self.records[job_id]
        if record.finish_time is not None:
            raise RuntimeError(f"job {job_id} finished twice")
        record.finish_time = now

    # ------------------------------------------------------------------ #
    # Periodic sampling

    def sample_cluster(
        self,
        now: float,
        *,
        gpu_active_rate: float,
        gpu_utilization: float,
        gpu_utilization_overall: float,
        cpu_active_rate: float,
        gpu_queue_depth: int,
        cpu_queue_depth: int,
        free_gpu_fraction: float,
        hot_nodes: int = 0,
    ) -> None:
        # This method is the only writer of the seven series below, so they
        # share one time column: one monotonicity check covers the whole
        # batch and each sample is appended directly instead of re-checking
        # per series (this runs on every monitor tick).
        anchor = self.gpu_active_rate.points
        if anchor and now < anchor[-1][0]:
            raise ValueError(
                f"series gpu_active_rate: sample at {now} before last "
                f"{anchor[-1][0]}"
            )
        anchor.append((now, gpu_active_rate))
        self.gpu_utilization.points.append((now, gpu_utilization))
        self.gpu_utilization_overall.points.append((now, gpu_utilization_overall))
        self.cpu_active_rate.points.append((now, cpu_active_rate))
        self.gpu_queue_depth.points.append((now, gpu_queue_depth))
        self.cpu_queue_depth.points.append((now, cpu_queue_depth))
        self.hot_nodes.points.append((now, hot_nodes))
        self.fragmentation.record(now, free_gpu_fraction, gpu_queue_depth)

    # ------------------------------------------------------------------ #
    # Views

    def finished_records(self, kind: Optional[JobKind] = None) -> List[JobRecord]:
        return [
            r
            for r in self.records.values()
            if r.finish_time is not None and (kind is None or r.kind is kind)
        ]

    def started_records(self, kind: Optional[JobKind] = None) -> List[JobRecord]:
        return [
            r
            for r in self.records.values()
            if r.first_start is not None and (kind is None or r.kind is kind)
        ]

    def queueing_times(
        self, kind: Optional[JobKind] = None, *, include_unstarted_until: Optional[float] = None
    ) -> List[float]:
        """Queueing delays of started jobs; optionally count still-queued
        jobs as censored at the horizon (keeps saturated baselines honest —
        dropping never-started jobs would *flatter* a bad scheduler)."""
        delays: List[float] = []
        for record in self.records.values():
            if kind is not None and record.kind is not kind:
                continue
            queueing = record.queueing_time
            if queueing is not None:
                delays.append(queueing)
            elif include_unstarted_until is not None:
                delays.append(include_unstarted_until - record.submit_time)
        return delays

    def queueing_times_by_tenant(
        self, *, include_unstarted_until: Optional[float] = None
    ) -> Dict[int, List[float]]:
        by_tenant: Dict[int, List[float]] = {}
        for record in self.records.values():
            queueing = record.queueing_time
            if queueing is None:
                if include_unstarted_until is None:
                    continue
                queueing = include_unstarted_until - record.submit_time
            by_tenant.setdefault(record.tenant_id, []).append(queueing)
        return by_tenant
