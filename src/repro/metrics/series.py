"""Series primitives.

Two flavours: :class:`SampledSeries` records point-in-time samples (how the
paper's monitoring collects Fig. 1 and Fig. 10), and
:class:`TimeWeightedValue` integrates a step function exactly (used for
resource occupancy where sampling error would be avoidable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class SampledSeries:
    """(time, value) samples in nondecreasing time order.

    >>> series = SampledSeries("gpu_util")
    >>> series.record(0.0, 0.5)
    >>> series.record(30.0, 0.7)
    >>> series.mean()
    0.6
    >>> series.record(10.0, 0.9)
    Traceback (most recent call last):
        ...
    ValueError: series gpu_util: sample at 10.0 before last 30.0
    """

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        if self.points and t < self.points[-1][0]:
            raise ValueError(
                f"series {self.name}: sample at {t} before last "
                f"{self.points[-1][0]}"
            )
        self.points.append((t, value))

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def mean(self) -> float:
        if not self.points:
            return 0.0
        return sum(v for _, v in self.points) / len(self.points)

    def mean_between(self, start: float, end: float) -> float:
        window = [v for t, v in self.points if start <= t <= end]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class TimeWeightedValue:
    """Exact integral of a piecewise-constant signal.

    >>> occupancy = TimeWeightedValue("cores")
    >>> occupancy.set(0.0, 4.0)
    >>> occupancy.set(10.0, 0.0)
    >>> occupancy.mean()
    4.0
    >>> occupancy.mean(until=20.0)
    2.0
    """

    name: str
    _current: float = 0.0
    _last_t: Optional[float] = None
    _weighted_sum: float = 0.0
    _elapsed: float = 0.0

    def set(self, t: float, value: float) -> None:
        """The signal takes ``value`` from time ``t`` onwards."""
        if self._last_t is not None:
            if t < self._last_t:
                raise ValueError(
                    f"{self.name}: time moved backwards ({t} < {self._last_t})"
                )
            span = t - self._last_t
            self._weighted_sum += self._current * span
            self._elapsed += span
        self._last_t = t
        self._current = value

    @property
    def current(self) -> float:
        return self._current

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, optionally extending the last value to
        ``until``."""
        weighted, elapsed = self._weighted_sum, self._elapsed
        if until is not None and self._last_t is not None:
            if until < self._last_t:
                raise ValueError(f"{self.name}: until precedes last update")
            span = until - self._last_t
            weighted += self._current * span
            elapsed += span
        if elapsed <= 0:
            return self._current
        return weighted / elapsed
