"""Invariant-audit accounting.

One :class:`AuditStats` per run, owned by the metrics collector exactly
like :class:`~repro.metrics.faults.FaultStats`.  The runtime invariant
auditor (:mod:`repro.analysis.invariants`) pushes check counts and any
violations into it; reports read them back out.  Everything stays zero on
unaudited runs, so existing reports are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class InvariantViolation:
    """One conservation/ordering law broken at one simulated instant."""

    time: float
    code: str
    message: str

    def render(self) -> str:
        return f"[t={self.time:.3f}] {self.code}: {self.message}"


@dataclass
class AuditStats:
    """What the runtime invariant auditor observed over one run."""

    #: Audit sweeps executed (each sweep runs every invariant check).
    checks_run: int = 0
    #: Individual invariant evaluations across all sweeps.
    assertions_evaluated: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    def record(self, time: float, code: str, message: str) -> InvariantViolation:
        violation = InvariantViolation(time=time, code=code, message=message)
        self.violations.append(violation)
        return violation

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return counts

    def summary(self) -> Tuple[int, int, int]:
        """(sweeps, assertions, violations) — the report's one-liner."""
        return (self.checks_run, self.assertions_evaluated, self.violation_count)
