"""Failure and recovery accounting.

One :class:`FaultStats` per run, owned by the metrics collector.  The
runner's failure paths push events into it; the experiment harness reads
downtime, restart counts, and goodput lost to failures out of it.  All
counters stay zero on failure-free runs, so reports for the paper's
original (perfectly reliable) setting are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FaultStats:
    """What infrastructure failures cost one simulation run."""

    #: Whole-node crash events.
    node_failures: int = 0
    #: Single-device failure events.
    gpu_failures: int = 0
    #: MBM telemetry dropout windows injected.
    telemetry_dropouts: int = 0
    #: CPU-job straggler episodes injected.
    stragglers: int = 0
    #: Jobs killed by a failure and sent back to their array head.
    restarts: int = 0
    #: Quarantine windows entered by the node-health tracker.
    quarantines: int = 0
    #: Training iterations lost between the last checkpoint and the crash.
    lost_gpu_iterations: float = 0.0
    #: CPU-job work-seconds lost (CPU jobs restart from scratch).
    lost_cpu_seconds: float = 0.0
    #: Completed node outage time (down → recovered).
    node_downtime_s: float = 0.0
    _down_since: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Node outage windows

    def node_down(self, node_id: int, now: float) -> None:
        self._down_since.setdefault(node_id, now)

    def node_up(self, node_id: int, now: float) -> None:
        since = self._down_since.pop(node_id, None)
        if since is not None:
            self.node_downtime_s += now - since

    def downtime_through(self, now: float) -> float:
        """Total node downtime including outages still open at ``now``."""
        open_s = sum(
            max(0.0, now - since) for since in self._down_since.values()
        )
        return self.node_downtime_s + open_s

    # ------------------------------------------------------------------ #

    @property
    def any_failures(self) -> bool:
        return bool(
            self.node_failures
            or self.gpu_failures
            or self.telemetry_dropouts
            or self.stragglers
        )
