"""Measurement and reporting.

Everything the paper's evaluation plots — active rates, utilization,
queueing-time CDFs, per-user tails, fragmentation — is computed here from
the simulation's sampled series and per-job records.
"""

from repro.metrics.series import SampledSeries, TimeWeightedValue
from repro.metrics.audit import AuditStats, InvariantViolation
from repro.metrics.collector import JobRecord, MetricsCollector
from repro.metrics.faults import FaultStats
from repro.metrics.stats import cdf_points, fraction_exceeding, percentile
from repro.metrics.fragmentation import FragmentationTracker
from repro.metrics.report import render_cdf, render_series, render_table

__all__ = [
    "AuditStats",
    "FaultStats",
    "InvariantViolation",
    "FragmentationTracker",
    "JobRecord",
    "MetricsCollector",
    "SampledSeries",
    "TimeWeightedValue",
    "cdf_points",
    "fraction_exceeding",
    "percentile",
    "render_cdf",
    "render_series",
    "render_table",
]
