"""repro — a reproduction of CODA (ICDCS 2020).

CODA: Improving Resource Utilization by Slimming and Co-locating DNN and
CPU Jobs (Zhao et al.).  This library implements the complete system on a
simulated multi-tenant GPU cluster:

* :mod:`repro.core` — CODA itself: adaptive CPU allocator, multi-array job
  scheduler, real-time contention eliminator;
* :mod:`repro.schedulers` — the FIFO and DRF baselines;
* :mod:`repro.perfmodel` — the calibrated DNN-training performance model;
* :mod:`repro.cluster` — the cluster resource substrate (nodes, GPUs,
  memory bandwidth with MBM/MBA, PCIe, interconnect);
* :mod:`repro.workload` — tenants, jobs, and synthetic trace generation;
* :mod:`repro.sim` — the discrete-event engine;
* :mod:`repro.experiments` — the harness regenerating every paper figure.

Quickstart::

    from repro import (
        Cluster, CodaScheduler, SimulationRunner, generate_trace,
        TraceConfig, small_cluster,
    )

    cluster = Cluster(small_cluster(nodes=8))
    trace = generate_trace(TraceConfig(duration_days=0.5, seed=7))
    runner = SimulationRunner(cluster, CodaScheduler(), trace)
    result = runner.run(until=trace.config.duration_s)
    print(result.collector.gpu_utilization.mean())
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, paper_cluster, small_cluster
from repro.core import CodaConfig, CodaScheduler
from repro.experiments import RunResult, SimulationRunner
from repro.perfmodel import (
    ALL_MODEL_NAMES,
    TrainSetup,
    get_model,
    gpu_utilization,
    optimal_cores,
    training_speed,
)
from repro.schedulers import DrfScheduler, FifoScheduler
from repro.workload import (
    CpuJob,
    GpuJob,
    Trace,
    TraceConfig,
    generate_trace,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_MODEL_NAMES",
    "Cluster",
    "ClusterConfig",
    "CodaConfig",
    "CodaScheduler",
    "CpuJob",
    "DrfScheduler",
    "FifoScheduler",
    "GpuJob",
    "NodeConfig",
    "RunResult",
    "SimulationRunner",
    "Trace",
    "TraceConfig",
    "TrainSetup",
    "generate_trace",
    "get_model",
    "gpu_utilization",
    "load_trace",
    "optimal_cores",
    "paper_cluster",
    "save_trace",
    "small_cluster",
    "training_speed",
    "__version__",
]
