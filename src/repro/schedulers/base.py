"""Scheduler interface.

Schedulers are queue managers: the simulation runner feeds them arrivals
and completions and asks for *decisions*; the runner executes the
decisions against the cluster and the job-progress engine.  Keeping
schedulers pure over an explicit free-state snapshot makes every policy
unit-testable without a simulation.

CODA additionally needs runtime control (retuning a running job's cores,
throttling a CPU job, aborting a borrower); those go through the
:class:`SchedulerContext` the runner passes at attach time, so the baselines
never see capabilities they must not use.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import Cluster
from repro.health.restarts import DeadJob, RestartPolicy
from repro.sim.events import EventHandle
from repro.workload.job import Job


@dataclass(frozen=True)
class StartDecision:
    """Start ``job`` with ``placements`` = [(node_id, cpus, gpus), ...].

    For GPU jobs the cpus entry is the per-node core allocation the policy
    chose (the owner's request under FIFO/DRF, the allocator's N_start
    under CODA).
    """

    job: Job
    placements: Tuple[Tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if not self.placements:
            raise ValueError(f"{self.job.job_id}: empty placement")


@dataclass(frozen=True)
class PreemptDecision:
    """Evict a running job and re-queue it.

    ``preserve_progress`` distinguishes the multi-array scheduler's two
    eviction flavours: aborted CPU borrowers restart from scratch ("the
    suspended CPU job re-enters the array head", Sec. V-C), while migrated
    GPU jobs keep their training progress (container migration).
    """

    job_id: str
    reason: str
    preserve_progress: bool = False


Decision = Union[StartDecision, PreemptDecision]


class SchedulerContext(abc.ABC):
    """Runtime-control surface the runner exposes to CODA.

    All mutations go through here so the runner can keep job progress,
    contention state, and metrics consistent.
    """

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current simulation time."""

    #: The cluster under management; concrete contexts expose it as an
    #: attribute (the eliminator reads node monitors through it).
    cluster: Cluster

    @abc.abstractmethod
    def schedule_event(
        self, delay_s: float, action: Callable[[], None], tag: str = ""
    ) -> EventHandle:
        """Register a future callback; returns a cancellable handle."""

    @abc.abstractmethod
    def resize_gpu_job_cores(self, job_id: str, cpus_per_node: int) -> bool:
        """Retune a running training job's per-node cores.  Returns False
        (without changes) when some node lacks the headroom."""

    @abc.abstractmethod
    def gpu_job_utilization(self, job_id: str) -> float:
        """The job's current GPU utilization (the profiling signal)."""

    @abc.abstractmethod
    def gpu_job_expected_utilization(self, job_id: str) -> float:
        """The utilization the job would reach at its current allocation on
        a quiet node — the reference the eliminator compares against (a
        production system estimates it from the job's profiling history)."""

    @abc.abstractmethod
    def throttle_cpu_job(self, job_id: str, node_id: int) -> bool:
        """Step the CPU job's MBA throttle down one level.  Returns False
        when the node has no MBA support."""

    @abc.abstractmethod
    def release_cpu_throttle(self, job_id: str, node_id: int) -> None:
        """Lift any MBA throttle on ``job_id`` (contention has passed)."""

    @abc.abstractmethod
    def halve_cpu_job_cores(self, job_id: str) -> None:
        """The no-MBA fallback of Sec. V-D."""

    @abc.abstractmethod
    def preempt_job(self, job_id: str, *, preserve_progress: bool, reason: str) -> None:
        """Evict a running job now and hand it back to the scheduler."""

    @abc.abstractmethod
    def request_schedule(self) -> None:
        """Ask for a scheduling pass at the current instant (coalesced)."""

    # -- Activity-indexed monitoring (defaults: scan everything) -------- #
    #
    # The eliminator's tick asks the context which nodes are worth
    # examining.  The defaults preserve the historical full-cluster scan,
    # so context implementations that do not maintain an active set (test
    # fakes, minimal drivers) keep working unchanged; SimulationRunner
    # overrides all three with an incrementally maintained set (nodes with
    # CPU jobs, live throttles, or an open telemetry outage).

    def monitor_active_node_ids(self) -> Sequence[int]:
        """Node ids the periodic monitor should examine this tick, in
        ascending order (tick-internal ordering is decision-relevant for
        multi-node jobs)."""
        return range(len(self.cluster.nodes))

    def monitor_deactivate_node(self, node_id: int) -> None:
        """The monitor observed ``node_id`` (telemetry up) and found
        nothing to police — the context may drop it from the active set."""

    def monitor_note_tick(self, now: float) -> None:
        """A monitor tick finished at ``now`` (freshness bookkeeping)."""


class Scheduler(abc.ABC):
    """Base class for all scheduling policies.

    Besides queue management, the base class owns the failure-resilience
    bookkeeping every policy shares: a per-job restart budget with
    exponential-backoff re-queueing, and the dead-job ledger that absorbs
    poison jobs once their budget runs out (see docs/resilience.md).
    """

    #: Human-readable policy name used in reports.
    name: str = "base"

    def __init__(
        self, *, restart_policy: Optional[RestartPolicy] = None
    ) -> None:
        self.restart_policy = restart_policy or RestartPolicy()
        #: Jobs retired after exhausting their restart budget.
        self.dead_jobs: List[DeadJob] = []
        self._restart_counts: Dict[str, int] = {}
        self._base_context: Optional[SchedulerContext] = None

    def attach(self, context: SchedulerContext) -> None:
        """Receive the runtime-control surface.  Baselines only use it for
        deferred (backed-off) failure re-queues."""
        self._base_context = context

    def restart_count(self, job_id: str) -> int:
        """How many infrastructure failures ``job_id`` has taken so far."""
        return self._restart_counts.get(job_id, 0)

    @abc.abstractmethod
    def submit(self, job: Job, now: float) -> None:
        """A new job arrived."""

    @abc.abstractmethod
    def job_finished(self, job: Job, now: float) -> None:
        """A running job completed (resources already released)."""

    def job_started(
        self, job: Job, placements: Sequence[Tuple[int, int, int]], now: float
    ) -> None:
        """One of this policy's start decisions was executed.  CODA hooks
        profiling here; the baselines need nothing."""

    def cpu_job_resized(self, job_id: str, cores: int, now: float) -> None:
        """A running CPU job's core allocation changed out from under the
        policy (the eliminator's no-MBA halving).  Policies that track
        per-node core usage fold the delta in here; the default needs
        nothing."""

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        """A running job was evicted; default: treat like a fresh submit."""
        self.submit(job, now)

    def job_failed(self, job: Job, now: float) -> None:
        """A running job was killed by an infrastructure failure (node
        crash, GPU failure).

        The base class charges the job's restart budget: the first failure
        re-queues immediately (the pre-budget behaviour), repeat failures
        re-queue after an exponentially growing delay, and a job that
        exhausts its budget lands in :attr:`dead_jobs` instead of
        livelocking its array head.  Where the job re-enters its queue is
        :meth:`_requeue_failed_job`'s business; any surviving checkpoint
        progress is the runner's, not the queue's."""
        count = self._restart_counts.get(job.job_id, 0) + 1
        self._restart_counts[job.job_id] = count
        policy = self.restart_policy
        if policy.exhausted(count):
            self.dead_jobs.append(
                DeadJob(
                    job_id=job.job_id,
                    time=now,
                    failures=count,
                    reason="restart budget exhausted",
                )
            )
            return
        delay = policy.requeue_delay(count)
        context = self._base_context
        if delay <= 0 or context is None:
            self._requeue_failed_job(job, now)
            return
        context.schedule_event(
            delay,
            self._make_requeue_action(job, context),
            tag=f"requeue:{job.job_id}",
        )

    def _make_requeue_action(
        self, job: Job, context: SchedulerContext
    ) -> Callable[[], None]:
        """The deferred-requeue closure for one backed-off failed job.

        Factored out so a checkpoint restore re-arms the identical action
        under the event's original tag (see :meth:`rearm`)."""

        def _deferred_requeue(
            job: Job = job, context: SchedulerContext = context
        ) -> None:
            self._requeue_failed_job(job, context.now)
            context.request_schedule()

        return _deferred_requeue

    def _requeue_failed_job(self, job: Job, now: float) -> None:
        """Put a failed (but not dead) job back in its queue.  Default:
        the same abort/re-queue path as a progress-losing preemption —
        queue-head policies (the multi-array scheduler) thereby put
        displaced jobs back at their array head."""
        self.job_preempted(job, now, preserve_progress=False)

    @abc.abstractmethod
    def schedule(self, cluster: Cluster, now: float) -> List[Decision]:
        """Produce this pass's decisions given current cluster state."""

    def can_skip_pass(self, cluster: Cluster) -> bool:
        """True when :meth:`schedule` is guaranteed to return zero
        decisions and mutate nothing, so the runner may skip calling it.

        The default is the always-safe False; incremental policies
        override this with their :class:`repro.schedulers.dirty.PassGate`
        verdict.  Must stay False under ``REPRO_FULL_RESCAN=1`` (the
        gates handle that themselves)."""
        return False

    @abc.abstractmethod
    def pending_jobs(self) -> List[Job]:
        """Jobs currently queued (for metrics and debugging)."""

    def queue_depth(self) -> int:
        return len(self.pending_jobs())

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    #
    # The base class owns the shared resilience bookkeeping; each policy
    # contributes its queues via ``_snapshot_queues``/``_restore_queues``.
    # Queues hold live Job objects, so they serialize as job ids and are
    # resolved against the deterministically regenerated trace on restore.

    def snapshot(self) -> Dict[str, Any]:
        """Serializable policy state (queues by job id, restart ledger)."""
        return {
            "dead_jobs": [
                [dead.job_id, dead.time, dead.failures, dead.reason]
                for dead in self.dead_jobs
            ],
            "restart_counts": dict(self._restart_counts),
            "queues": self._snapshot_queues(),
        }

    def restore(self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]) -> None:
        self.dead_jobs = [
            DeadJob(
                job_id=str(job_id),
                time=float(time),
                failures=int(failures),
                reason=str(reason),
            )
            for job_id, time, failures, reason in state["dead_jobs"]
        ]
        self._restart_counts = {
            job_id: int(count)
            for job_id, count in state["restart_counts"].items()
        }
        self._restore_queues(state["queues"], jobs_by_id)

    def _snapshot_queues(self) -> Dict[str, Any]:
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def _restore_queues(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]
    ) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def rearm(self, engine: Any, jobs_by_id: Dict[str, Job]) -> None:
        """Re-claim this policy's snapshotted timers from ``engine``.

        The base class owns exactly one timer family — the deferred
        failure requeues; policies with their own timers (CODA's profiler
        steps and eliminator tick) extend this.
        """
        context = self._base_context
        for tag in engine.pending_rearm_tags():
            if not tag.startswith("requeue:"):
                continue
            if context is None:
                raise RuntimeError(
                    f"cannot re-arm {tag!r}: scheduler is not attached"
                )
            job = jobs_by_id[tag.partition(":")[2]]
            engine.rearm(tag, self._make_requeue_action(job, context))


@dataclass
class TenantUsage:
    """Per-tenant running-resource accounting shared by DRF-style policies."""

    cpus: int = 0
    gpus: int = 0

    def add(self, cpus: int, gpus: int) -> None:
        self.cpus += cpus
        self.gpus += gpus

    def remove(self, cpus: int, gpus: int) -> None:
        self.cpus -= cpus
        self.gpus -= gpus
        if self.cpus < 0 or self.gpus < 0:
            raise RuntimeError(
                f"tenant usage went negative: cpus={self.cpus}, gpus={self.gpus}"
            )


class UsageLedger:
    """Tracks per-tenant running usage for dominant-share computations."""

    def __init__(self) -> None:
        self._usage: Dict[int, TenantUsage] = {}
        self._job_footprint: Dict[str, Tuple[int, int, int]] = {}

    def start(self, job_id: str, tenant_id: int, cpus: int, gpus: int) -> None:
        if job_id in self._job_footprint:
            raise RuntimeError(f"job {job_id} already accounted")
        self._usage.setdefault(tenant_id, TenantUsage()).add(cpus, gpus)
        self._job_footprint[job_id] = (tenant_id, cpus, gpus)

    def finish(self, job_id: str) -> Optional[Tuple[int, int, int]]:
        """Drop the job's footprint; returns ``(tenant_id, cpus, gpus)``
        (or None if untracked) so callers maintaining share heaps know
        whose dominant share just changed."""
        footprint = self._job_footprint.pop(job_id, None)
        if footprint is None:
            return None
        tenant_id, cpus, gpus = footprint
        self._usage[tenant_id].remove(cpus, gpus)
        return footprint

    def usage_of(self, tenant_id: int) -> TenantUsage:
        return self._usage.get(tenant_id, TenantUsage())

    def snapshot(self) -> Dict[str, Any]:
        """Serializable footprints; per-tenant usage is derived state."""
        return {
            job_id: list(footprint)
            for job_id, footprint in self._job_footprint.items()
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self._usage = {}
        self._job_footprint = {}
        for job_id, (tenant_id, cpus, gpus) in state.items():
            self.start(job_id, int(tenant_id), int(cpus), int(gpus))

    def dominant_share(
        self, tenant_id: int, total_cpus: int, total_gpus: int
    ) -> float:
        usage = self.usage_of(tenant_id)
        shares = []
        if total_cpus > 0:
            shares.append(usage.cpus / total_cpus)
        if total_gpus > 0:
            shares.append(usage.gpus / total_gpus)
        return max(shares) if shares else 0.0


class ShareHeap:
    """Lazy min-heap over ``(dominant_share, tenant_id)`` for DRF-style
    tenant selection, replacing the per-iteration linear scan.

    Invariant: every tenant with a nonempty queue has at least one heap
    entry carrying its *current* share.  It is maintained by pushing on
    each event that could break it — a queue going nonempty (submit to an
    empty queue, any re-queue at the head) and a share change while the
    queue is nonempty (ledger ``start``/``finish``).  Stale entries are
    never removed eagerly; :meth:`pop_min` drops them on contact by
    re-checking the stored share against the ledger (the share is
    recomputed by the *identical* float expression, so equality is
    exact).  Selection is therefore byte-identical to a linear min over
    ``(share, tenant_id)`` of the nonempty, unblocked queues — both pick
    the same unique minimum of a total order.

    Entries popped for *blocked* tenants are stashed and must be
    re-pushed via :meth:`flush_stash` before the pass ends: a blocked
    tenant's share cannot change within a pass (it starts nothing), so
    the stashed entry is still current.

    Totals are unknown until the first :meth:`configure`; until then
    pushes are no-ops and the heap stays in ``needs_rebuild`` state — the
    next pass rebuilds from the queues, which covers every earlier event.
    """

    __slots__ = (
        "_ledger",
        "_total_cpus",
        "_total_gpus",
        "_entries",
        "_stash",
        "needs_rebuild",
    )

    def __init__(self, ledger: UsageLedger) -> None:
        self._ledger = ledger
        self._total_cpus: Optional[int] = None
        self._total_gpus: Optional[int] = None
        self._entries: List[Tuple[float, int]] = []
        self._stash: List[Tuple[float, int]] = []
        self.needs_rebuild = True

    def configure(self, total_cpus: int, total_gpus: int) -> None:
        """Set (or confirm) the cluster totals shares are computed over."""
        if (total_cpus, total_gpus) != (self._total_cpus, self._total_gpus):
            self._total_cpus = total_cpus
            self._total_gpus = total_gpus
            self.needs_rebuild = True

    def invalidate(self) -> None:
        """Discard everything; the next pass rebuilds from the queues."""
        self.needs_rebuild = True

    def push(self, tenant_id: int) -> None:
        """Record that ``tenant_id``'s queue or share just changed."""
        if self.needs_rebuild or self._total_cpus is None:
            return
        heapq.heappush(
            self._entries,
            (
                self._ledger.dominant_share(
                    tenant_id, self._total_cpus, self._total_gpus
                ),
                tenant_id,
            ),
        )

    def rebuild(self, queues: Dict[int, Any]) -> None:
        """Re-seed one entry per tenant with a nonempty queue."""
        assert self._total_cpus is not None and self._total_gpus is not None
        self._entries = [
            (
                self._ledger.dominant_share(
                    tenant_id, self._total_cpus, self._total_gpus
                ),
                tenant_id,
            )
            for tenant_id, queue in queues.items()
            if queue
        ]
        heapq.heapify(self._entries)
        self._stash.clear()
        self.needs_rebuild = False

    def pop_min(
        self, queues: Dict[int, Any], blocked: Any
    ) -> Optional[Tuple[float, int]]:
        """Next ``(share, tenant_id)`` among nonempty unblocked queues,
        or None when every remaining tenant is blocked or empty."""
        while self._entries:
            entry = heapq.heappop(self._entries)
            share, tenant_id = entry
            queue = queues.get(tenant_id)
            if not queue:
                continue
            assert self._total_cpus is not None and self._total_gpus is not None
            if share != self._ledger.dominant_share(
                tenant_id, self._total_cpus, self._total_gpus
            ):
                continue
            if tenant_id in blocked:
                self._stash.append(entry)
                continue
            return entry
        return None

    def stash(self, entry: Tuple[float, int]) -> None:
        """Hold a popped entry for a tenant that just became blocked."""
        self._stash.append(entry)

    def flush_stash(self) -> None:
        """Re-push every stashed (still-current) entry; call at pass end."""
        for entry in self._stash:
            heapq.heappush(self._entries, entry)
        self._stash.clear()
