"""Dominant Resource Fairness — the paper's fairness baseline.

Progressive filling (Ghodsi et al., NSDI'11): repeatedly give the next
task to the tenant with the smallest dominant share.  The paper evaluates
DRF "consider[ing] GPU as the dominant resource" for GPU tenants, which is
what the dominant-share computation yields naturally since GPUs are the
scarce dimension.

Within a tenant, jobs stay FIFO.  A tenant whose head job does not fit is
skipped for the remainder of the pass (its later jobs must not jump the
tenant's own queue), but other tenants keep filling — this is why DRF's
queueing is fairer than FIFO's in Fig. 12 while its fragmentation stays
just as bad (Sec. VI-C): skipping tenants does not create the CPU cores
that GPU-starved nodes are missing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import (
    Decision,
    Scheduler,
    ShareHeap,
    StartDecision,
    UsageLedger,
)
from repro.schedulers.dirty import PassGate
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job
from repro.workload.job import CpuJob, GpuJob, Job


class DrfScheduler(Scheduler):
    """Dominant Resource Fairness with per-tenant FIFO queues.

    Incremental scheduling: one :class:`PassGate` group ("drf") and a
    :class:`ShareHeap` replacing the per-iteration linear tenant scan.
    Per-tenant queues are head-only windows, so only a submit that lands
    on an empty queue or a head re-queue dirties the group.  Ledger
    changes (a job finishing) alter tenant *order* only — with every
    head still blocked, selection order is irrelevant and the pass still
    returns zero decisions, so they update the heap without dirtying the
    gate.  Under ``REPRO_FULL_RESCAN=1`` the original linear scan runs
    as the parity reference.
    """

    name = "drf"

    def __init__(
        self, *, restart_policy: Optional[RestartPolicy] = None
    ) -> None:
        super().__init__(restart_policy=restart_policy)
        self._queues: Dict[int, Deque[Job]] = {}
        self._ledger = UsageLedger()
        self._gate = PassGate(("drf",))
        self._share_heap = ShareHeap(self._ledger)

    # ------------------------------------------------------------------ #
    # Queue maintenance

    def submit(self, job: Job, now: float) -> None:
        queue = self._queues.setdefault(job.tenant_id, deque())
        if not queue:
            self._gate.mark("drf")
            self._share_heap.push(job.tenant_id)
        queue.append(job)

    def job_finished(self, job: Job, now: float) -> None:
        if self._ledger.finish(job.job_id) is not None:
            # The tenant's dominant share dropped: re-key it in the heap
            # (order-only change; the gate stays clean).
            if self._queues.get(job.tenant_id):
                self._share_heap.push(job.tenant_id)

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        self._ledger.finish(job.job_id)
        self._gate.mark("drf")
        self._queues.setdefault(job.tenant_id, deque()).appendleft(job)
        self._share_heap.push(job.tenant_id)

    # ------------------------------------------------------------------ #
    # Progressive filling

    def can_skip_pass(self, cluster: Cluster) -> bool:
        return self._gate.can_skip_pass(cluster)

    def schedule(self, cluster: Cluster, now: float) -> List[Decision]:
        decisions: List[Decision] = []
        free = FreeState.of(cluster, now=now)
        total = cluster.total
        blocked: Set[int] = set()

        if not self._gate.enabled:
            # Reference implementation: linear min-share scan per pick.
            while True:
                tenant_id = self._next_tenant(total.cpus, total.gpus, blocked)
                if tenant_id is None:
                    break
                self._fill_one(tenant_id, free, blocked, decisions)
            return decisions

        heap = self._share_heap
        heap.configure(total.cpus, total.gpus)
        if heap.needs_rebuild:
            heap.rebuild(self._queues)
        if self._gate.should_scan("drf", cluster):
            while True:
                entry = heap.pop_min(self._queues, blocked)
                if entry is None:
                    break
                tenant_id = entry[1]
                if self._fill_one(tenant_id, free, blocked, decisions):
                    if self._queues[tenant_id]:
                        heap.push(tenant_id)
                else:
                    heap.stash(entry)
        heap.flush_stash()
        self._gate.pass_done(cluster)
        return decisions

    def _fill_one(
        self,
        tenant_id: int,
        free: FreeState,
        blocked: Set[int],
        decisions: List[Decision],
    ) -> bool:
        """Try the tenant's head job; True when it was placed."""
        queue = self._queues[tenant_id]
        head = queue[0]
        placements = self._try_place(head, free)
        if placements is None:
            blocked.add(tenant_id)
            return False
        free.commit(placements)
        queue.popleft()
        requested = head.requested
        self._ledger.start(
            head.job_id, tenant_id, requested.cpus, requested.gpus
        )
        decisions.append(StartDecision(job=head, placements=tuple(placements)))
        return True

    def _next_tenant(
        self, total_cpus: int, total_gpus: int, blocked: Set[int]
    ) -> Optional[int]:
        best_id, best_share = None, None
        for tenant_id, queue in self._queues.items():
            if not queue or tenant_id in blocked:
                continue
            share = self._ledger.dominant_share(tenant_id, total_cpus, total_gpus)
            if best_share is None or (share, tenant_id) < (best_share, best_id):
                best_id, best_share = tenant_id, share
        return best_id

    @staticmethod
    def _try_place(job: Job, free: FreeState):
        if isinstance(job, GpuJob):
            return place_gpu_job(job, free)
        if isinstance(job, CpuJob):
            return place_cpu_job(job, free)
        raise TypeError(f"unknown job type: {type(job).__name__}")

    def pending_jobs(self) -> List[Job]:
        pending: List[Job] = []
        for queue in self._queues.values():
            pending.extend(queue)
        pending.sort(key=lambda job: (job.submit_time, job.job_id))
        return pending

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def _snapshot_queues(self) -> Dict[str, Any]:
        return {
            "tenants": {
                str(tenant_id): [job.job_id for job in queue]
                for tenant_id, queue in self._queues.items()
            },
            "ledger": self._ledger.snapshot(),
        }

    def _restore_queues(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]
    ) -> None:
        self._queues = {
            int(tenant_id): deque(jobs_by_id[job_id] for job_id in job_ids)
            for tenant_id, job_ids in state["tenants"].items()
        }
        self._ledger.restore(state["ledger"])
        self._gate.mark_all()
        self._share_heap.invalidate()
