"""Dominant Resource Fairness — the paper's fairness baseline.

Progressive filling (Ghodsi et al., NSDI'11): repeatedly give the next
task to the tenant with the smallest dominant share.  The paper evaluates
DRF "consider[ing] GPU as the dominant resource" for GPU tenants, which is
what the dominant-share computation yields naturally since GPUs are the
scarce dimension.

Within a tenant, jobs stay FIFO.  A tenant whose head job does not fit is
skipped for the remainder of the pass (its later jobs must not jump the
tenant's own queue), but other tenants keep filling — this is why DRF's
queueing is fairer than FIFO's in Fig. 12 while its fragmentation stays
just as bad (Sec. VI-C): skipping tenants does not create the CPU cores
that GPU-starved nodes are missing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import Decision, Scheduler, StartDecision, UsageLedger
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job
from repro.workload.job import CpuJob, GpuJob, Job


class DrfScheduler(Scheduler):
    """Dominant Resource Fairness with per-tenant FIFO queues."""

    name = "drf"

    def __init__(
        self, *, restart_policy: Optional[RestartPolicy] = None
    ) -> None:
        super().__init__(restart_policy=restart_policy)
        self._queues: Dict[int, Deque[Job]] = {}
        self._ledger = UsageLedger()

    # ------------------------------------------------------------------ #
    # Queue maintenance

    def submit(self, job: Job, now: float) -> None:
        self._queues.setdefault(job.tenant_id, deque()).append(job)

    def job_finished(self, job: Job, now: float) -> None:
        self._ledger.finish(job.job_id)

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        self._ledger.finish(job.job_id)
        self._queues.setdefault(job.tenant_id, deque()).appendleft(job)

    # ------------------------------------------------------------------ #
    # Progressive filling

    def schedule(self, cluster: Cluster, now: float) -> List[Decision]:
        decisions: List[Decision] = []
        free = FreeState.of(cluster, now=now)
        total = cluster.total
        blocked: Set[int] = set()

        while True:
            tenant_id = self._next_tenant(total.cpus, total.gpus, blocked)
            if tenant_id is None:
                break
            queue = self._queues[tenant_id]
            head = queue[0]
            placements = self._try_place(head, free)
            if placements is None:
                blocked.add(tenant_id)
                continue
            free.commit(placements)
            queue.popleft()
            requested = head.requested
            self._ledger.start(
                head.job_id, tenant_id, requested.cpus, requested.gpus
            )
            decisions.append(StartDecision(job=head, placements=tuple(placements)))

        return decisions

    def _next_tenant(
        self, total_cpus: int, total_gpus: int, blocked: Set[int]
    ) -> Optional[int]:
        best_id, best_share = None, None
        for tenant_id, queue in self._queues.items():
            if not queue or tenant_id in blocked:
                continue
            share = self._ledger.dominant_share(tenant_id, total_cpus, total_gpus)
            if best_share is None or (share, tenant_id) < (best_share, best_id):
                best_id, best_share = tenant_id, share
        return best_id

    @staticmethod
    def _try_place(job: Job, free: FreeState):
        if isinstance(job, GpuJob):
            return place_gpu_job(job, free)
        if isinstance(job, CpuJob):
            return place_cpu_job(job, free)
        raise TypeError(f"unknown job type: {type(job).__name__}")

    def pending_jobs(self) -> List[Job]:
        pending: List[Job] = []
        for queue in self._queues.values():
            pending.extend(queue)
        pending.sort(key=lambda job: (job.submit_time, job.job_id))
        return pending

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def _snapshot_queues(self) -> Dict[str, Any]:
        return {
            "tenants": {
                str(tenant_id): [job.job_id for job in queue]
                for tenant_id, queue in self._queues.items()
            },
            "ledger": self._ledger.snapshot(),
        }

    def _restore_queues(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]
    ) -> None:
        self._queues = {
            int(tenant_id): deque(jobs_by_id[job_id] for job_id in job_ids)
            for tenant_id, job_ids in state["tenants"].items()
        }
        self._ledger.restore(state["ledger"])
