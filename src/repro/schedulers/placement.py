"""Placement helpers shared by every policy.

:class:`FreeState` is a cheap mutable snapshot of per-node free resources a
scheduler decrements as it makes decisions within one pass, so a batch of
decisions is internally consistent without touching the real cluster.

Placement heuristics are best-fit: pack GPU jobs onto the nodes whose free
GPU count (then free core count) is tightest, and CPU jobs onto the nodes
with the tightest free cores.  Best-fit keeps large-GPU nodes whole, which
matters for the paper's 4-GPU jobs.

Node health (see :mod:`repro.health`) folds in at snapshot time: passing
``now`` to :meth:`FreeState.of` reads the cluster's health tracker, zeroes
out QUARANTINED nodes (they take no placements, same as a downed node),
and de-prioritizes SUSPECT/PROBATION nodes — every best-fit sort tries all
clean nodes before touching a flagged one.  Without ``now`` (or with no
strikes on record) the snapshot and orderings are byte-identical to the
health-unaware ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.schedulers.dirty import full_rescan_enabled
from repro.workload.job import CpuJob, GpuJob

Placement = Tuple[int, int, int]  # (node_id, cpus, gpus)


class FreeState:
    """Per-node free (cpus, gpus) snapshot with commit semantics.

    Stored as a plain ``node_id -> (cpus, gpus)`` dict: constructing a
    snapshot from the shared cache is then one C-level ``dict`` copy
    instead of one object per node — the construction cost is what every
    scheduling pass pays even on a perfect cache hit."""

    #: Cumulative count of full snapshot rebuilds performed by
    #: :meth:`of` (cache misses).  Exists for the memoization regression
    #: test: with no intervening cluster/health mutation, repeated calls
    #: must not rebuild.
    rebuilds: int = 0
    #: Cumulative count of *partial* refreshes: cache hits that only
    #: re-read the nodes the cluster reported dirty (see
    #: :meth:`repro.cluster.cluster.Cluster.dirty_capacity`) instead of
    #: scanning all of them.
    refreshes: int = 0

    def __init__(
        self,
        free: Dict[int, Tuple[int, int]],
        *,
        deprioritized: Optional[Iterable[int]] = None,
    ) -> None:
        self._free: Dict[int, Tuple[int, int]] = dict(free)
        self._deprioritized: Set[int] = set(deprioritized or ())
        #: Lazily-built candidate orderings (see ``_gpu_sorted`` /
        #: ``_cpu_sorted``); invalidated whenever the snapshot mutates.
        self._gpu_order: Optional[List[int]] = None
        self._cpu_order: Optional[List[int]] = None
        #: In-pass mutation stamp, bumped by :meth:`add` and
        #: :meth:`commit`.  Placement-shape memos (see
        #: ``MultiArrayScheduler._place_memo``) record the stamp at
        #: failure time: an identical request re-tried at the same stamp
        #: is guaranteed to fail again.
        self.mutations = 0

    @classmethod
    def of(
        cls,
        cluster: Cluster,
        *,
        among: Optional[Iterable[int]] = None,
        now: Optional[float] = None,
    ) -> "FreeState":
        """Snapshot free capacity; with ``now``, health-filtered.

        QUARANTINED nodes stay in the snapshot (so ``free_of`` keeps
        working for reclaim bookkeeping) but report zero free capacity —
        a policy that still places there trips :meth:`commit`'s guard,
        which is a bug worth crashing on.

        The whole-cluster snapshot (``among=None``) is memoized on
        ``cluster.free_snapshot_cache`` as ``(version, health, qset,
        dset, free)`` where qset/dset are the quarantined/de-prioritized
        node sets at ``now``.  Incremental maintenance:

        * cache empty, foreign health tracker, or a *coarse* (unattributed)
          mutation → full rebuild, one read per node;
        * cluster version or quarantine set moved → partial refresh
          re-reading only ``touched | (qset ^ cached_qset)`` nodes (free
          capacity is time-independent; quarantine zeroing is derived
          from qset, so every other entry is still exact);
        * only the de-prioritized set moved → swap dset, zero node reads;
        * otherwise → pure hit.

        ``REPRO_FULL_RESCAN=1`` bypasses the memo entirely — every call
        is an uncached scan, the reference behaviour the parity test
        compares against.
        """
        if among is not None or full_rescan_enabled():
            return cls._build(
                cluster,
                range(len(cluster.nodes)) if among is None else among,
                now,
            )
        health = cluster.health
        if now is None:
            qset: frozenset = frozenset()
            dset: frozenset = frozenset()
        else:
            qset = frozenset(health.quarantined_nodes(now))
            dset = frozenset(health.deprioritized_nodes(now))
        version = cluster.version
        cached = cluster.free_snapshot_cache
        coarse, touched = cluster.dirty_capacity()
        if cached is None or cached[1] is not health or coarse:
            state = cls._build(cluster, range(len(cluster.nodes)), now)
            cluster.free_snapshot_cache = (
                version, health, qset, dset, dict(state._free),
            )
            cluster.clear_dirty_capacity()
            return state
        _, _, c_qset, c_dset, free = cached
        if version != cached[0] or qset != c_qset:
            cls.refreshes += 1
            nodes = cluster.nodes
            for node_id in sorted(touched | (qset ^ c_qset)):
                free[node_id] = (
                    (0, 0)
                    if node_id in qset
                    else (nodes[node_id].free_cpus, nodes[node_id].free_gpus)
                )
            cluster.free_snapshot_cache = (version, health, qset, dset, free)
            cluster.clear_dirty_capacity()
        elif dset != c_dset:
            cluster.free_snapshot_cache = (version, health, qset, dset, free)
        return cls(free, deprioritized=dset)

    @classmethod
    def _build(
        cls,
        cluster: Cluster,
        node_ids: Iterable[int],
        now: Optional[float],
    ) -> "FreeState":
        """Uncached snapshot construction (one read per node)."""
        cls.rebuilds += 1
        quarantined: Set[int] = set()
        deprioritized: Set[int] = set()
        if now is not None:
            health = cluster.health
            quarantined = set(health.quarantined_nodes(now))
            deprioritized = set(health.deprioritized_nodes(now))
        return cls(
            {
                node_id: (
                    (0, 0)
                    if node_id in quarantined
                    else (
                        cluster.nodes[node_id].free_cpus,
                        cluster.nodes[node_id].free_gpus,
                    )
                )
                for node_id in node_ids
            },
            deprioritized=deprioritized,
        )

    def placement_penalty(self, node_id: int) -> int:
        """1 for nodes placement should avoid (SUSPECT/PROBATION), else 0;
        prefixed to every best-fit sort key."""
        return 1 if node_id in self._deprioritized else 0

    def free_of(self, node_id: int) -> Tuple[int, int]:
        return self._free[node_id]

    def node_ids(self) -> List[int]:
        return list(self._free)

    def add(self, node_id: int, cpus: int, gpus: int) -> None:
        """Return capacity to the snapshot (e.g., a planned preemption)."""
        free_cpus, free_gpus = self._free[node_id]
        self._free[node_id] = (free_cpus + cpus, free_gpus + gpus)
        self._gpu_order = None
        self._cpu_order = None
        self.mutations += 1

    def commit(self, placements: Iterable[Placement]) -> None:
        """Deduct a decision from the snapshot.

        Raises:
            RuntimeError: if the deduction would go negative — the caller
                placed against stale data, which is a policy bug.
        """
        for node_id, cpus, gpus in placements:
            free_cpus, free_gpus = self._free[node_id]
            if cpus > free_cpus or gpus > free_gpus:
                raise RuntimeError(
                    f"placement overcommits node {node_id}: "
                    f"want {cpus}c/{gpus}g, free {free_cpus}c/{free_gpus}g"
                )
            self._free[node_id] = (free_cpus - cpus, free_gpus - gpus)
        self._gpu_order = None
        self._cpu_order = None
        self.mutations += 1

    def _gpu_sorted(self) -> List[int]:
        """All node ids in GPU best-fit order, cached between mutations.

        The sort key ``(penalty, gpus, cpus, node_id)`` is a total order
        (node_id is unique), so selecting the first qualifying nodes from
        this list is byte-identical to sorting the qualifying subset —
        which lets repeated placement attempts (the slimming ladder tries
        several core counts between commits) reuse one sort.
        """
        if self._gpu_order is None:
            deprioritized = self._deprioritized
            free = self._free
            self._gpu_order = sorted(
                free,
                key=lambda node_id: (
                    1 if node_id in deprioritized else 0,
                    free[node_id][1],
                    free[node_id][0],
                    node_id,
                ),
            )
        return self._gpu_order

    def _cpu_sorted(self) -> List[int]:
        """All node ids in CPU best-fit order ``(penalty, cpus,
        node_id)``, cached between mutations (see :meth:`_gpu_sorted`)."""
        if self._cpu_order is None:
            deprioritized = self._deprioritized
            free = self._free
            self._cpu_order = sorted(
                free,
                key=lambda node_id: (
                    1 if node_id in deprioritized else 0,
                    free[node_id][0],
                    node_id,
                ),
            )
        return self._cpu_order


def place_gpu_job(
    job: GpuJob,
    free: FreeState,
    *,
    cpus_per_node: Optional[int] = None,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find nodes for a training job; None when it does not fit now.

    Needs ``job.setup.num_nodes`` distinct nodes, each with
    ``gpus_per_node`` free GPUs and the per-node core allocation
    (``cpus_per_node`` overrides the owner's request — CODA passes its
    N_start here).  Best-fit on free GPUs, then free cores, then node id
    for determinism.
    """
    cores = cpus_per_node if cpus_per_node is not None else job.requested_cpus
    gpus = job.setup.gpus_per_node
    needed = job.setup.num_nodes
    allowed = (
        None
        if among is None
        else (among if isinstance(among, (set, frozenset)) else set(among))
    )
    chosen: List[int] = []
    capacity = free._free
    for node_id in free._gpu_sorted():
        free_cpus, free_gpus = capacity[node_id]
        if (
            free_gpus >= gpus
            and free_cpus >= cores
            and (allowed is None or node_id in allowed)
        ):
            chosen.append(node_id)
            if len(chosen) == needed:
                return [(node_id, cores, gpus) for node_id in chosen]
    return None


def place_cpu_job(
    job: CpuJob,
    free: FreeState,
    *,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find a node for a CPU job; None when it does not fit now.

    Best-fit on free cores, preferring GPU-free capacity is deliberately
    *not* done here: the baselines happily stuff CPU jobs onto GPU nodes,
    which is exactly the interference CODA's multi-array design removes.
    """
    allowed = (
        None
        if among is None
        else (among if isinstance(among, (set, frozenset)) else set(among))
    )
    capacity = free._free
    for node_id in free._cpu_sorted():
        if capacity[node_id][0] >= job.cores and (
            allowed is None or node_id in allowed
        ):
            return [(node_id, job.cores, 0)]
    return None
