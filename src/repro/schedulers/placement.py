"""Placement helpers shared by every policy.

:class:`FreeState` is a cheap mutable snapshot of per-node free resources a
scheduler decrements as it makes decisions within one pass, so a batch of
decisions is internally consistent without touching the real cluster.

Placement heuristics are best-fit: pack GPU jobs onto the nodes whose free
GPU count (then free core count) is tightest, and CPU jobs onto the nodes
with the tightest free cores.  Best-fit keeps large-GPU nodes whole, which
matters for the paper's 4-GPU jobs.

Node health (see :mod:`repro.health`) folds in at snapshot time: passing
``now`` to :meth:`FreeState.of` reads the cluster's health tracker, zeroes
out QUARANTINED nodes (they take no placements, same as a downed node),
and de-prioritizes SUSPECT/PROBATION nodes — every best-fit sort tries all
clean nodes before touching a flagged one.  Without ``now`` (or with no
strikes on record) the snapshot and orderings are byte-identical to the
health-unaware ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.workload.job import CpuJob, GpuJob

Placement = Tuple[int, int, int]  # (node_id, cpus, gpus)


@dataclass
class _NodeFree:
    node_id: int
    cpus: int
    gpus: int


class FreeState:
    """Per-node free (cpus, gpus) snapshot with commit semantics."""

    def __init__(
        self,
        free: Dict[int, Tuple[int, int]],
        *,
        deprioritized: Optional[Iterable[int]] = None,
    ) -> None:
        self._nodes: Dict[int, _NodeFree] = {
            node_id: _NodeFree(node_id, cpus, gpus)
            for node_id, (cpus, gpus) in free.items()
        }
        self._deprioritized: Set[int] = set(deprioritized or ())

    @classmethod
    def of(
        cls,
        cluster: Cluster,
        *,
        among: Optional[Iterable[int]] = None,
        now: Optional[float] = None,
    ) -> "FreeState":
        """Snapshot free capacity; with ``now``, health-filtered.

        QUARANTINED nodes stay in the snapshot (so ``free_of`` keeps
        working for reclaim bookkeeping) but report zero free capacity —
        a policy that still places there trips :meth:`commit`'s guard,
        which is a bug worth crashing on.
        """
        node_ids = (
            range(len(cluster.nodes)) if among is None else among
        )
        quarantined: Set[int] = set()
        deprioritized: Set[int] = set()
        if now is not None:
            health = cluster.health
            quarantined = set(health.quarantined_nodes(now))
            deprioritized = set(health.deprioritized_nodes(now))
        return cls(
            {
                node_id: (
                    (0, 0)
                    if node_id in quarantined
                    else (
                        cluster.nodes[node_id].free_cpus,
                        cluster.nodes[node_id].free_gpus,
                    )
                )
                for node_id in node_ids
            },
            deprioritized=deprioritized,
        )

    def placement_penalty(self, node_id: int) -> int:
        """1 for nodes placement should avoid (SUSPECT/PROBATION), else 0;
        prefixed to every best-fit sort key."""
        return 1 if node_id in self._deprioritized else 0

    def free_of(self, node_id: int) -> Tuple[int, int]:
        node = self._nodes[node_id]
        return node.cpus, node.gpus

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def add(self, node_id: int, cpus: int, gpus: int) -> None:
        """Return capacity to the snapshot (e.g., a planned preemption)."""
        node = self._nodes[node_id]
        node.cpus += cpus
        node.gpus += gpus

    def commit(self, placements: Iterable[Placement]) -> None:
        """Deduct a decision from the snapshot.

        Raises:
            RuntimeError: if the deduction would go negative — the caller
                placed against stale data, which is a policy bug.
        """
        for node_id, cpus, gpus in placements:
            node = self._nodes[node_id]
            if cpus > node.cpus or gpus > node.gpus:
                raise RuntimeError(
                    f"placement overcommits node {node_id}: "
                    f"want {cpus}c/{gpus}g, free {node.cpus}c/{node.gpus}g"
                )
            node.cpus -= cpus
            node.gpus -= gpus

    def _candidates(
        self, cpus: int, gpus: int, among: Optional[Iterable[int]] = None
    ) -> List[_NodeFree]:
        allowed = None if among is None else set(among)
        return [
            node
            for node in self._nodes.values()
            if node.cpus >= cpus
            and node.gpus >= gpus
            and (allowed is None or node.node_id in allowed)
        ]


def place_gpu_job(
    job: GpuJob,
    free: FreeState,
    *,
    cpus_per_node: Optional[int] = None,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find nodes for a training job; None when it does not fit now.

    Needs ``job.setup.num_nodes`` distinct nodes, each with
    ``gpus_per_node`` free GPUs and the per-node core allocation
    (``cpus_per_node`` overrides the owner's request — CODA passes its
    N_start here).  Best-fit on free GPUs, then free cores, then node id
    for determinism.
    """
    cores = cpus_per_node if cpus_per_node is not None else job.requested_cpus
    gpus = job.setup.gpus_per_node
    candidates = free._candidates(cores, gpus, among)
    if len(candidates) < job.setup.num_nodes:
        return None
    candidates.sort(
        key=lambda node: (
            free.placement_penalty(node.node_id),
            node.gpus,
            node.cpus,
            node.node_id,
        )
    )
    chosen = candidates[: job.setup.num_nodes]
    return [(node.node_id, cores, gpus) for node in chosen]


def place_cpu_job(
    job: CpuJob,
    free: FreeState,
    *,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find a node for a CPU job; None when it does not fit now.

    Best-fit on free cores, preferring GPU-free capacity is deliberately
    *not* done here: the baselines happily stuff CPU jobs onto GPU nodes,
    which is exactly the interference CODA's multi-array design removes.
    """
    candidates = free._candidates(job.cores, 0, among)
    if not candidates:
        return None
    candidates.sort(
        key=lambda node: (
            free.placement_penalty(node.node_id),
            node.cpus,
            node.node_id,
        )
    )
    return [(candidates[0].node_id, job.cores, 0)]
