"""Placement helpers shared by every policy.

:class:`FreeState` is a cheap mutable snapshot of per-node free resources a
scheduler decrements as it makes decisions within one pass, so a batch of
decisions is internally consistent without touching the real cluster.

Placement heuristics are best-fit: pack GPU jobs onto the nodes whose free
GPU count (then free core count) is tightest, and CPU jobs onto the nodes
with the tightest free cores.  Best-fit keeps large-GPU nodes whole, which
matters for the paper's 4-GPU jobs.

Node health (see :mod:`repro.health`) folds in at snapshot time: passing
``now`` to :meth:`FreeState.of` reads the cluster's health tracker, zeroes
out QUARANTINED nodes (they take no placements, same as a downed node),
and de-prioritizes SUSPECT/PROBATION nodes — every best-fit sort tries all
clean nodes before touching a flagged one.  Without ``now`` (or with no
strikes on record) the snapshot and orderings are byte-identical to the
health-unaware ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.cluster import Cluster
from repro.workload.job import CpuJob, GpuJob

Placement = Tuple[int, int, int]  # (node_id, cpus, gpus)


@dataclass
class _NodeFree:
    node_id: int
    cpus: int
    gpus: int


class FreeState:
    """Per-node free (cpus, gpus) snapshot with commit semantics."""

    #: Cumulative count of full snapshot rebuilds performed by
    #: :meth:`of` (cache misses).  Exists for the memoization regression
    #: test: with no intervening cluster/health mutation, repeated calls
    #: must not rebuild.
    rebuilds: int = 0

    def __init__(
        self,
        free: Dict[int, Tuple[int, int]],
        *,
        deprioritized: Optional[Iterable[int]] = None,
    ) -> None:
        self._nodes: Dict[int, _NodeFree] = {
            node_id: _NodeFree(node_id, cpus, gpus)
            for node_id, (cpus, gpus) in free.items()
        }
        self._deprioritized: Set[int] = set(deprioritized or ())
        #: Lazily-built candidate orderings (see ``_gpu_sorted`` /
        #: ``_cpu_sorted``); invalidated whenever the snapshot mutates.
        self._gpu_order: Optional[List[_NodeFree]] = None
        self._cpu_order: Optional[List[_NodeFree]] = None

    @classmethod
    def of(
        cls,
        cluster: Cluster,
        *,
        among: Optional[Iterable[int]] = None,
        now: Optional[float] = None,
    ) -> "FreeState":
        """Snapshot free capacity; with ``now``, health-filtered.

        QUARANTINED nodes stay in the snapshot (so ``free_of`` keeps
        working for reclaim bookkeeping) but report zero free capacity —
        a policy that still places there trips :meth:`commit`'s guard,
        which is a bug worth crashing on.

        The whole-cluster snapshot (``among=None``) is memoized on the
        cluster's and health tracker's generation counters plus ``now``:
        calling :meth:`of` twice in the same scheduling round with no
        intervening commit reuses the previous scan instead of re-reading
        every node.
        """
        if among is not None:
            return cls._build(cluster, among, now)
        health = cluster.health
        key = (cluster.version, health.version, now)
        cached = cluster.free_snapshot_cache
        if cached is not None and cached[0] == key and cached[1] is health:
            free, deprioritized = cached[2], cached[3]
        else:
            state = cls._build(cluster, range(len(cluster.nodes)), now)
            free = {
                node_id: (node.cpus, node.gpus)
                for node_id, node in state._nodes.items()
            }
            deprioritized = frozenset(state._deprioritized)
            cluster.free_snapshot_cache = (key, health, free, deprioritized)
            return state
        return cls(free, deprioritized=deprioritized)

    @classmethod
    def _build(
        cls,
        cluster: Cluster,
        node_ids: Iterable[int],
        now: Optional[float],
    ) -> "FreeState":
        """Uncached snapshot construction (one read per node)."""
        cls.rebuilds += 1
        quarantined: Set[int] = set()
        deprioritized: Set[int] = set()
        if now is not None:
            health = cluster.health
            quarantined = set(health.quarantined_nodes(now))
            deprioritized = set(health.deprioritized_nodes(now))
        return cls(
            {
                node_id: (
                    (0, 0)
                    if node_id in quarantined
                    else (
                        cluster.nodes[node_id].free_cpus,
                        cluster.nodes[node_id].free_gpus,
                    )
                )
                for node_id in node_ids
            },
            deprioritized=deprioritized,
        )

    def placement_penalty(self, node_id: int) -> int:
        """1 for nodes placement should avoid (SUSPECT/PROBATION), else 0;
        prefixed to every best-fit sort key."""
        return 1 if node_id in self._deprioritized else 0

    def free_of(self, node_id: int) -> Tuple[int, int]:
        node = self._nodes[node_id]
        return node.cpus, node.gpus

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def add(self, node_id: int, cpus: int, gpus: int) -> None:
        """Return capacity to the snapshot (e.g., a planned preemption)."""
        node = self._nodes[node_id]
        node.cpus += cpus
        node.gpus += gpus
        self._gpu_order = None
        self._cpu_order = None

    def commit(self, placements: Iterable[Placement]) -> None:
        """Deduct a decision from the snapshot.

        Raises:
            RuntimeError: if the deduction would go negative — the caller
                placed against stale data, which is a policy bug.
        """
        for node_id, cpus, gpus in placements:
            node = self._nodes[node_id]
            if cpus > node.cpus or gpus > node.gpus:
                raise RuntimeError(
                    f"placement overcommits node {node_id}: "
                    f"want {cpus}c/{gpus}g, free {node.cpus}c/{node.gpus}g"
                )
            node.cpus -= cpus
            node.gpus -= gpus
        self._gpu_order = None
        self._cpu_order = None

    def _gpu_sorted(self) -> List[_NodeFree]:
        """All nodes in GPU best-fit order, cached between mutations.

        The sort key ``(penalty, gpus, cpus, node_id)`` is a total order
        (node_id is unique), so selecting the first qualifying nodes from
        this list is byte-identical to sorting the qualifying subset —
        which lets repeated placement attempts (the slimming ladder tries
        several core counts between commits) reuse one sort.
        """
        if self._gpu_order is None:
            deprioritized = self._deprioritized
            self._gpu_order = sorted(
                self._nodes.values(),
                key=lambda node: (
                    1 if node.node_id in deprioritized else 0,
                    node.gpus,
                    node.cpus,
                    node.node_id,
                ),
            )
        return self._gpu_order

    def _cpu_sorted(self) -> List[_NodeFree]:
        """All nodes in CPU best-fit order ``(penalty, cpus, node_id)``,
        cached between mutations (see :meth:`_gpu_sorted`)."""
        if self._cpu_order is None:
            deprioritized = self._deprioritized
            self._cpu_order = sorted(
                self._nodes.values(),
                key=lambda node: (
                    1 if node.node_id in deprioritized else 0,
                    node.cpus,
                    node.node_id,
                ),
            )
        return self._cpu_order

    def _candidates(
        self, cpus: int, gpus: int, among: Optional[Iterable[int]] = None
    ) -> List[_NodeFree]:
        allowed = None if among is None else set(among)
        return [
            node
            for node in self._nodes.values()
            if node.cpus >= cpus
            and node.gpus >= gpus
            and (allowed is None or node.node_id in allowed)
        ]


def place_gpu_job(
    job: GpuJob,
    free: FreeState,
    *,
    cpus_per_node: Optional[int] = None,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find nodes for a training job; None when it does not fit now.

    Needs ``job.setup.num_nodes`` distinct nodes, each with
    ``gpus_per_node`` free GPUs and the per-node core allocation
    (``cpus_per_node`` overrides the owner's request — CODA passes its
    N_start here).  Best-fit on free GPUs, then free cores, then node id
    for determinism.
    """
    cores = cpus_per_node if cpus_per_node is not None else job.requested_cpus
    gpus = job.setup.gpus_per_node
    needed = job.setup.num_nodes
    allowed = (
        None
        if among is None
        else (among if isinstance(among, (set, frozenset)) else set(among))
    )
    chosen: List[_NodeFree] = []
    for node in free._gpu_sorted():
        if (
            node.gpus >= gpus
            and node.cpus >= cores
            and (allowed is None or node.node_id in allowed)
        ):
            chosen.append(node)
            if len(chosen) == needed:
                return [(node.node_id, cores, gpus) for node in chosen]
    return None


def place_cpu_job(
    job: CpuJob,
    free: FreeState,
    *,
    among: Optional[Iterable[int]] = None,
) -> Optional[List[Placement]]:
    """Find a node for a CPU job; None when it does not fit now.

    Best-fit on free cores, preferring GPU-free capacity is deliberately
    *not* done here: the baselines happily stuff CPU jobs onto GPU nodes,
    which is exactly the interference CODA's multi-array design removes.
    """
    allowed = (
        None
        if among is None
        else (among if isinstance(among, (set, frozenset)) else set(among))
    )
    for node in free._cpu_sorted():
        if node.cpus >= job.cores and (
            allowed is None or node.node_id in allowed
        ):
            return [(node.node_id, job.cores, 0)]
    return None
