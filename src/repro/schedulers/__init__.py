"""Scheduling policies.

The two baselines the paper evaluates against — FIFO (the cluster's SLURM
policy) and DRF (Dominant Resource Fairness) — plus the interface CODA
itself implements in :mod:`repro.core`.
"""

from repro.schedulers.base import (
    PreemptDecision,
    Scheduler,
    SchedulerContext,
    StartDecision,
)
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job

__all__ = [
    "DrfScheduler",
    "FifoScheduler",
    "FreeState",
    "PreemptDecision",
    "Scheduler",
    "SchedulerContext",
    "StartDecision",
    "place_cpu_job",
    "place_gpu_job",
]
