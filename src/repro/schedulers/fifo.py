"""FIFO scheduling — the paper's status-quo baseline.

The studied cluster runs SLURM "that uses FIFO to schedule jobs from
different parties" (Sec. III-A).  Production SLURM deployments place CPU
and GPU jobs through separate partitions, so the behaviour the paper
measures — CPU jobs scheduling within seconds (Fig. 2c) while GPU jobs
suffer head-of-line blocking, fragmentation, and long queues — corresponds
to FIFO *per kind*:

* GPU jobs are strictly FIFO among themselves: the first GPU job that does
  not fit blocks all later GPU jobs (no backfill);
* CPU jobs are strictly FIFO among themselves but do not wait behind a
  blocked GPU job (separate partition).

Both kinds draw from the same physical nodes — a CPU job landing on a GPU
node consumes the cores a pending training job needs, which is the
fragmentation mechanism of Sec. VI-C.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.health.restarts import RestartPolicy
from repro.schedulers.base import Decision, Scheduler, StartDecision
from repro.schedulers.dirty import PassGate
from repro.schedulers.placement import FreeState, place_cpu_job, place_gpu_job
from repro.workload.job import CpuJob, GpuJob, Job


class FifoScheduler(Scheduler):
    """First-in-first-out per job kind, no backfill.

    Incremental scheduling: each kind is one :class:`PassGate` group.
    Only the queue *head* is ever examined (no backfill), so a submit
    dirties its group only when it lands on an empty queue (it becomes
    the head); a re-queue at the head always dirties.  A clean group's
    head is still blocked against a free state that has only shrunk
    since the last pass, so skipping its loop reproduces the previous
    answer — zero decisions — byte-for-byte.
    """

    name = "fifo"

    def __init__(
        self, *, restart_policy: Optional[RestartPolicy] = None
    ) -> None:
        super().__init__(restart_policy=restart_policy)
        self._gpu_queue: Deque[GpuJob] = deque()
        self._cpu_queue: Deque[CpuJob] = deque()
        self._gate = PassGate(("gpu", "cpu"))

    def submit(self, job: Job, now: float) -> None:
        if isinstance(job, GpuJob):
            if not self._gpu_queue:
                self._gate.mark("gpu")
            self._gpu_queue.append(job)
        elif isinstance(job, CpuJob):
            if not self._cpu_queue:
                self._gate.mark("cpu")
            self._cpu_queue.append(job)
        else:
            raise TypeError(f"unknown job type: {type(job).__name__}")

    def job_finished(self, job: Job, now: float) -> None:
        """FIFO keeps no running-state; nothing to update."""

    def job_preempted(self, job: Job, now: float, *, preserve_progress: bool) -> None:
        """FIFO never preempts, but honour the interface: back to the head."""
        if isinstance(job, GpuJob):
            self._gate.mark("gpu")
            self._gpu_queue.appendleft(job)
        else:
            self._gate.mark("cpu")
            self._cpu_queue.appendleft(job)

    def can_skip_pass(self, cluster: Cluster) -> bool:
        return self._gate.can_skip_pass(cluster)

    def schedule(self, cluster: Cluster, now: float) -> List[Decision]:
        decisions: List[Decision] = []
        free = FreeState.of(cluster, now=now)

        if self._gate.should_scan("gpu", cluster):
            while self._gpu_queue:
                head = self._gpu_queue[0]
                placements = place_gpu_job(head, free)
                if placements is None:
                    break  # head-of-line blocking: no GPU backfill
                free.commit(placements)
                decisions.append(
                    StartDecision(job=head, placements=tuple(placements))
                )
                self._gpu_queue.popleft()

        if self._gate.should_scan("cpu", cluster):
            while self._cpu_queue:
                head = self._cpu_queue[0]
                placements = place_cpu_job(head, free)
                if placements is None:
                    break
                free.commit(placements)
                decisions.append(
                    StartDecision(job=head, placements=tuple(placements))
                )
                self._cpu_queue.popleft()

        self._gate.pass_done(cluster)
        return decisions

    def pending_jobs(self) -> List[Job]:
        return list(self._gpu_queue) + list(self._cpu_queue)

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def _snapshot_queues(self) -> Dict[str, Any]:
        return {
            "gpu": [job.job_id for job in self._gpu_queue],
            "cpu": [job.job_id for job in self._cpu_queue],
        }

    def _restore_queues(
        self, state: Dict[str, Any], jobs_by_id: Dict[str, Job]
    ) -> None:
        self._gpu_queue = deque(jobs_by_id[job_id] for job_id in state["gpu"])
        self._cpu_queue = deque(jobs_by_id[job_id] for job_id in state["cpu"])
        self._gate.mark_all()
