"""Dirty-set change tracking for incremental scheduling passes.

Every policy keeps a :class:`PassGate` that answers one question per queue
group: *could this group's outcome differ from the last pass?*  The gate is
fed from two directions:

* **queue mutations** — the policy marks a group dirty when a job enters
  its examination window (a submit that lands inside the backfill window,
  any ``appendleft`` re-queue);
* **capacity increases** — the cluster's ``capacity_freed`` counter (see
  :meth:`repro.cluster.cluster.Cluster.capacity_freed`) advances on every
  release/resize-down/mark_up/repair/quarantine-exit.  When it moved since
  the last pass, *every* group is dirty: freed capacity can unblock any
  queued job.

The soundness argument (docs/scheduler-internals.md) rests on two facts:

1. a pass leaves every still-queued job *blocked* against its final free
   state (placement attempts are pure on failure, and capacity only flows
   out of the snapshot except along preemption decisions — which bump
   ``capacity_freed`` when executed, dirtying the next pass);
2. placement feasibility is monotone in free capacity, so consuming
   capacity between passes cannot make a blocked job placeable.

A clean group therefore re-derives exactly its previous answer — zero
decisions — and skipping it is byte-identical to re-scanning it.

``REPRO_FULL_RESCAN=1`` disables the whole machinery (gates report every
group dirty, the snapshot cache is bypassed); the parity property test
runs each policy both ways and asserts identical decision streams.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


def full_rescan_enabled() -> bool:
    """True when ``REPRO_FULL_RESCAN`` asks for the reference behaviour:
    no pass skipping, no partial snapshot refresh, no share heaps."""
    return bool(os.environ.get("REPRO_FULL_RESCAN"))


class PassGate:
    """Tracks, per queue group, whether a scheduling pass must re-scan it.

    The gate starts all-dirty (the first pass always runs), and
    :meth:`pass_done` re-arms it: groups go clean and the current
    ``capacity_freed`` reading is remembered.  Execution of the pass's
    decisions happens *after* ``pass_done`` — so releases performed by
    executed preemptions advance ``capacity_freed`` past the remembered
    value and dirty the next pass, exactly as required.
    """

    __slots__ = ("_groups", "_dirty", "_freed_seen", "_enabled")

    def __init__(self, groups: Iterable[str]) -> None:
        self._groups: Tuple[str, ...] = tuple(groups)
        self._dirty: Set[str] = set(self._groups)
        #: ``capacity_freed`` at the end of the last completed pass; -1
        #: means "no pass yet", which never equals a real counter value.
        self._freed_seen = -1
        self._enabled = not full_rescan_enabled()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def mark(self, group: str) -> None:
        """A queue mutation put new work inside ``group``'s window."""
        self._dirty.add(group)

    def mark_all(self) -> None:
        """Conservative reset (checkpoint restore, unknown mutation)."""
        self._dirty.update(self._groups)
        self._freed_seen = -1

    def fresh_capacity(self, cluster: "Cluster") -> bool:
        """Capacity was freed since the last pass finished."""
        return cluster.capacity_freed != self._freed_seen

    def should_scan(self, group: str, cluster: "Cluster") -> bool:
        """Must the coming pass re-examine ``group``'s queues?"""
        if not self._enabled:
            return True
        return group in self._dirty or self.fresh_capacity(cluster)

    def can_skip_pass(self, cluster: "Cluster") -> bool:
        """True when every group is clean — the whole pass would produce
        zero decisions and mutate nothing."""
        if not self._enabled:
            return False
        return not self._dirty and not self.fresh_capacity(cluster)

    def pass_done(self, cluster: "Cluster") -> None:
        """A full evaluation of every dirty group just finished."""
        self._dirty.clear()
        self._freed_seen = cluster.capacity_freed
