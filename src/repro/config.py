"""Library-wide configuration dataclasses.

The defaults reproduce the paper's testbed (Sec. III-A): about 80 PCIe-based
multi-GPU servers totalling 400 GTX 1080Ti GPUs, each server with two Intel
Xeon Gold 6132 sockets (2 x 14 = 28 cores), interconnected by 10 Gb/s
Infiniband.  Memory-system constants are those of that CPU generation:
~128 GB/s of DRAM bandwidth per node (two sockets x six DDR4-2666 channels,
derated), 19.25 MB of LLC per socket, and PCIe 3.0 x16 per GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class NodeConfig:
    """Hardware shape of one server."""

    cores: int = 28
    gpus: int = 4
    mem_bandwidth_gbps: float = 128.0
    llc_mb: float = 38.5
    pcie_gbps: float = 32.0
    mba_supported: bool = True

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"node needs at least one core: {self}")
        if self.gpus < 0:
            raise ValueError(f"negative GPU count: {self}")
        if self.mem_bandwidth_gbps <= 0 or self.pcie_gbps <= 0:
            raise ValueError(f"bandwidth capacities must be positive: {self}")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the whole cluster.

    ``node_groups`` is a list of (count, NodeConfig): the default is 60
    4-GPU servers plus 20 8-GPU servers = 80 nodes / 400 GPUs, matching the
    paper's totals while giving the multi-array scheduler's 4-GPU sub-array
    real 8-GPU nodes to work with.
    """

    node_groups: Tuple[Tuple[int, NodeConfig], ...] = (
        (60, NodeConfig(gpus=4)),
        (20, NodeConfig(gpus=8)),
    )
    interconnect_gbps: float = 1.25  # 10 Gb/s Infiniband, in GB/s
    #: Optional rack structure: None = flat (the paper's unstated default).
    nodes_per_rack: Optional[int] = None
    #: Inter-rack oversubscription ratio (1.0 = non-blocking core).
    rack_oversubscription: float = 1.0

    def __post_init__(self) -> None:
        if not self.node_groups:
            raise ValueError("cluster must have at least one node group")
        for count, node in self.node_groups:
            if count <= 0:
                raise ValueError(f"node group count must be positive: {count}")
        if self.nodes_per_rack is not None and self.nodes_per_rack < 1:
            raise ValueError(f"nodes_per_rack must be >= 1: {self.nodes_per_rack}")
        if self.rack_oversubscription < 1.0:
            raise ValueError(
                f"rack_oversubscription must be >= 1: {self.rack_oversubscription}"
            )

    @property
    def num_nodes(self) -> int:
        return sum(count for count, _ in self.node_groups)

    @property
    def total_gpus(self) -> int:
        return sum(count * node.gpus for count, node in self.node_groups)

    @property
    def total_cores(self) -> int:
        return sum(count * node.cores for count, node in self.node_groups)

    def expand(self) -> List[NodeConfig]:
        """One NodeConfig per node, in deterministic order."""
        nodes: List[NodeConfig] = []
        for count, node in self.node_groups:
            nodes.extend([node] * count)
        return nodes


def paper_cluster() -> ClusterConfig:
    """The testbed of Sec. III-A: 80 nodes, 400 GPUs, 28 cores each."""
    return ClusterConfig()


def small_cluster(nodes: int = 4, gpus_per_node: int = 4) -> ClusterConfig:
    """A laptop-scale cluster for tests and the quickstart example."""
    return ClusterConfig(
        node_groups=((nodes, NodeConfig(gpus=gpus_per_node)),)
    )
