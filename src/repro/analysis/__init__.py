"""Runtime analysis: machine-checked guardrails over a live simulation.

The static half of the guardrail story lives in ``tools/codalint``; this
package is the dynamic half — auditors that ride along a run and verify
the conservation laws the evaluation depends on (see
``docs/static-analysis.md``).
"""

from repro.analysis.invariants import (
    InvariantAuditor,
    InvariantViolationError,
)

__all__ = ["InvariantAuditor", "InvariantViolationError"]
