"""The runtime invariant auditor.

Attaches to a :class:`~repro.sim.engine.Engine` as a post-event observer
and, at a configurable simulated-time cadence, sweeps the conservation
laws the evaluation rests on:

* **IV001** — per-node bounds: core/GPU usage never negative, never above
  capacity, share bookkeeping internally consistent, downed nodes empty;
* **IV002** — cluster-wide conservation: used + free == total and the sum
  of all allocations equals the used vector, under allocate/preempt/fault/
  restart alike;
* **IV003** — event-clock monotonicity: fired events never move backwards
  in time;
* **IV004** — allocation/residency agreement: every cluster allocation is
  mirrored by node shares and vice versa (no orphaned residents);
* **IV005** — DRF dominant-share bounds: per-tenant ledger usage stays
  non-negative and dominant shares stay within [0, 1];
* **IV006** — throttle-state sanity: MBA throttles only on MBA-capable
  nodes, only at hardware levels, only on resident jobs;
* **IV007** — quarantine residency: no running job resides on a node the
  health tracker currently holds in QUARANTINED state (placement must
  skip such nodes; quarantine entry must have evicted residents).

Because the auditor is an observer — it schedules no events and never
touches the clock — an audited run is byte-identical to an unaudited one.
Violations land in the collector's :class:`~repro.metrics.audit.AuditStats`
(``FaultStats``-style); with ``strict=True`` the first violation raises
:class:`InvariantViolationError` instead, which is how the CI test run
fails fast on a conservation bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Set

from repro.cluster.cluster import Cluster
from repro.cluster.mba import MBA_LEVELS
from repro.metrics.audit import AuditStats, InvariantViolation
from repro.schedulers.base import Scheduler
from repro.schedulers.drf import DrfScheduler
from repro.sim.engine import Engine
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import SimulationRunner

#: Default sweep cadence (simulated seconds) — matches the runner's
#: cluster-sampling default so week-long runs stay cheap.
DEFAULT_AUDIT_INTERVAL_S = 300.0

#: Slack for float comparisons (dominant shares are ratios of ints).
_EPS = 1e-9


class InvariantViolationError(AssertionError):
    """Raised in strict mode when a conservation law breaks."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(violation.render())
        self.violation = violation


class InvariantAuditor:
    """Sweeps conservation laws over a live simulation at a fixed cadence."""

    def __init__(
        self,
        interval_s: float = DEFAULT_AUDIT_INTERVAL_S,
        *,
        strict: bool = False,
        stats: Optional[AuditStats] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"non-positive audit interval: {interval_s}")
        self.interval_s = interval_s
        self.strict = strict
        self.stats = stats if stats is not None else AuditStats()
        self._engine: Optional[Engine] = None
        self._cluster: Optional[Cluster] = None
        self._scheduler: Optional[Scheduler] = None
        self._last_time: Optional[float] = None
        self._next_due = 0.0

    # ------------------------------------------------------------------ #
    # Wiring

    def attach(self, runner: "SimulationRunner") -> None:
        """Audit ``runner``'s engine/cluster; violations go to its collector."""
        self.attach_engine(
            runner.engine,
            runner.cluster,
            scheduler=runner.scheduler,
            stats=runner.collector.audit,
        )

    def attach_engine(
        self,
        engine: Engine,
        cluster: Cluster,
        *,
        scheduler: Optional[Scheduler] = None,
        stats: Optional[AuditStats] = None,
    ) -> None:
        """Register as a post-event observer of ``engine``."""
        if self._engine is not None:
            raise RuntimeError("invariant auditor already attached")
        self._engine = engine
        self._cluster = cluster
        self._scheduler = scheduler
        if stats is not None:
            self.stats = stats
        self._last_time = engine.now
        self._next_due = engine.now
        engine.add_observer(self._on_event)

    def detach(self) -> None:
        """Stop observing. Idempotent."""
        if self._engine is not None:
            self._engine.remove_observer(self._on_event)
            self._engine = None

    # ------------------------------------------------------------------ #
    # Observation

    def _on_event(self, event: Event) -> None:
        engine = self._engine
        if engine is None:  # pragma: no cover - detach() races are a no-op
            return
        if self._last_time is not None:
            self._assert(
                event.time >= self._last_time - _EPS,
                "IV003",
                lambda last=self._last_time: (
                    f"event {event.tag!r} fired at {event.time}, before "
                    f"the previously-fired event at {last} — the event "
                    "clock moved backwards"
                ),
            )
        self._last_time = max(self._last_time or event.time, event.time)
        if engine.now + _EPS >= self._next_due:
            self.check_now()
            self._next_due = engine.now + self.interval_s

    # ------------------------------------------------------------------ #
    # The sweep

    def check_now(self) -> int:
        """Run every invariant check once; returns new violation count."""
        if self._cluster is None:
            raise RuntimeError("invariant auditor is not attached")
        before = self.stats.violation_count
        self.stats.checks_run += 1
        self._check_node_bounds(self._cluster)
        self._check_conservation(self._cluster)
        self._check_allocation_residency(self._cluster)
        self._check_throttle_states(self._cluster)
        self._check_quarantine_residency(self._cluster)
        if isinstance(self._scheduler, DrfScheduler):
            self._check_drf_shares(self._scheduler, self._cluster)
        return self.stats.violation_count - before

    def _assert(
        self, condition: bool, code: str, message: Callable[[], str]
    ) -> None:
        self.stats.assertions_evaluated += 1
        if condition:
            return
        now = self._engine.now if self._engine is not None else 0.0
        violation = self.stats.record(now, code, message())
        if self.strict:
            raise InvariantViolationError(violation)

    # -- IV001 ---------------------------------------------------------- #

    def _check_node_bounds(self, cluster: Cluster) -> None:
        for node in cluster.nodes:
            self._assert(
                node.used_cpus >= 0,
                "IV001",
                lambda node=node: (
                    f"node {node.node_id} core usage negative: "
                    f"{node.used_cpus}"
                ),
            )
            self._assert(
                node.used_cpus <= node.total_cpus,
                "IV001",
                lambda node=node: (
                    f"node {node.node_id} cores oversubscribed: "
                    f"{node.used_cpus}/{node.total_cpus}"
                ),
            )
            share_cpus = sum(
                node.share_of(job_id).cpus for job_id in node.jobs_here()
            )
            self._assert(
                share_cpus == node.used_cpus,
                "IV001",
                lambda node=node, share_cpus=share_cpus: (
                    f"node {node.node_id} share sum {share_cpus} != used "
                    f"core counter {node.used_cpus}"
                ),
            )
            owned: Set[int] = set()
            for job_id in sorted(node.jobs_here()):
                share = node.share_of(job_id)
                for gpu_id in share.gpu_ids:
                    self._assert(
                        gpu_id not in owned,
                        "IV001",
                        lambda node=node, gpu_id=gpu_id: (
                            f"node {node.node_id} GPU {gpu_id} appears in "
                            "two shares (double allocation)"
                        ),
                    )
                    owned.add(gpu_id)
                    self._assert(
                        0 <= gpu_id < node.total_gpus
                        and node.gpus[gpu_id].owner == job_id,
                        "IV001",
                        lambda node=node, gpu_id=gpu_id, job_id=job_id: (
                            f"node {node.node_id} GPU {gpu_id} share/owner "
                            f"mismatch for job {job_id}"
                        ),
                    )
            self._assert(
                len(owned) == node.used_gpus,
                "IV001",
                lambda node=node, owned=owned: (
                    f"node {node.node_id} owns {node.used_gpus} GPUs but "
                    f"shares cover {len(owned)}"
                ),
            )
            self._assert(
                node.is_up or not node.jobs_here(),
                "IV001",
                lambda node=node: (
                    f"downed node {node.node_id} still hosts "
                    f"{sorted(node.jobs_here())}"
                ),
            )

    # -- IV002 ---------------------------------------------------------- #

    def _check_conservation(self, cluster: Cluster) -> None:
        try:
            total, used, free = cluster.total, cluster.used, cluster.free
        except ValueError as error:
            # ResourceVector refuses negative totals outright, so badly
            # corrupted counters surface here instead of as a comparison.
            self._assert(
                False,
                "IV002",
                lambda error=error: f"cluster usage unrepresentable: {error}",
            )
            return
        self._assert(
            used.cpus >= 0 and used.gpus >= 0,
            "IV002",
            lambda: f"cluster usage went negative: {used}",
        )
        self._assert(
            used.cpus + free.cpus == total.cpus
            and used.gpus + free.gpus == total.gpus,
            "IV002",
            lambda: (
                f"resources not conserved: used {used} + free {free} != "
                f"total {total}"
            ),
        )
        alloc_cpus = alloc_gpus = 0
        for allocation in cluster.allocations().values():
            for share in allocation.shares:
                alloc_cpus += share.cpus
                alloc_gpus += len(share.gpu_ids)
        self._assert(
            alloc_cpus == used.cpus and alloc_gpus == used.gpus,
            "IV002",
            lambda alloc_cpus=alloc_cpus, alloc_gpus=alloc_gpus: (
                f"allocation ledger ({alloc_cpus}c/{alloc_gpus}g) "
                f"disagrees with node usage ({used.cpus}c/{used.gpus}g)"
            ),
        )

    # -- IV004 ---------------------------------------------------------- #

    def _check_allocation_residency(self, cluster: Cluster) -> None:
        for job_id, allocation in sorted(cluster.allocations().items()):
            for share in allocation.shares:
                node = cluster.node(share.node_id)
                self._assert(
                    node.holds(job_id)
                    and node.share_of(job_id).cpus == share.cpus
                    and node.share_of(job_id).gpu_ids == share.gpu_ids,
                    "IV004",
                    lambda job_id=job_id, share=share: (
                        f"allocation of {job_id} not mirrored on node "
                        f"{share.node_id}"
                    ),
                )
        for node in cluster.nodes:
            for job_id in sorted(node.jobs_here()):
                self._assert(
                    cluster.has_allocation(job_id),
                    "IV004",
                    lambda node=node, job_id=job_id: (
                        f"node {node.node_id} hosts {job_id} which has no "
                        "cluster allocation (orphaned resident)"
                    ),
                )

    # -- IV005 ---------------------------------------------------------- #

    def _check_drf_shares(self, scheduler: DrfScheduler, cluster: Cluster) -> None:
        total = cluster.total
        ledger = scheduler._ledger
        tenant_ids = sorted(ledger._usage)
        for tenant_id in tenant_ids:
            usage = ledger.usage_of(tenant_id)
            self._assert(
                usage.cpus >= 0 and usage.gpus >= 0,
                "IV005",
                lambda tenant_id=tenant_id, usage=usage: (
                    f"tenant {tenant_id} ledger usage negative: "
                    f"{usage.cpus}c/{usage.gpus}g"
                ),
            )
            share = ledger.dominant_share(tenant_id, total.cpus, total.gpus)
            self._assert(
                -_EPS <= share <= 1.0 + _EPS,
                "IV005",
                lambda tenant_id=tenant_id, share=share: (
                    f"tenant {tenant_id} dominant share out of [0, 1]: "
                    f"{share}"
                ),
            )

    # -- IV006 ---------------------------------------------------------- #

    def _check_throttle_states(self, cluster: Cluster) -> None:
        for node in cluster.nodes:
            throttled = node.mba.throttled_jobs()
            if not throttled:
                continue
            self._assert(
                node.mba.supported,
                "IV006",
                lambda node=node: (
                    f"node {node.node_id} has MBA throttles but no MBA "
                    "hardware support"
                ),
            )
            for job_id, level in sorted(throttled.items()):
                self._assert(
                    any(abs(level - known) < _EPS for known in MBA_LEVELS),
                    "IV006",
                    lambda job_id=job_id, level=level: (
                        f"job {job_id} throttled at {level}, not a "
                        "hardware MBA level"
                    ),
                )
                self._assert(
                    node.holds(job_id),
                    "IV006",
                    lambda node=node, job_id=job_id: (
                        f"node {node.node_id} throttles {job_id} which is "
                        "not resident there"
                    ),
                )

    # -- IV007 ---------------------------------------------------------- #

    def _check_quarantine_residency(self, cluster: Cluster) -> None:
        """No job may run on a quarantined node.

        ``quarantined_nodes`` is a pure deadline query — the tracker's
        state transitions anchor to times fixed at quarantine entry — so
        this sweep observes without perturbing the run.
        """
        now = self._engine.now if self._engine is not None else 0.0
        for node_id in cluster.health.quarantined_nodes(now):
            node = cluster.node(node_id)
            self._assert(
                not node.jobs_here(),
                "IV007",
                lambda node=node: (
                    f"quarantined node {node.node_id} still hosts "
                    f"{sorted(node.jobs_here())}"
                ),
            )

    # ------------------------------------------------------------------ #

    def report(self) -> str:
        """Human-readable audit summary (one line, plus any violations)."""
        sweeps, assertions, violations = self.stats.summary()
        lines = [
            f"invariant audit: {sweeps} sweep(s), {assertions} assertion(s), "
            f"{violations} violation(s)"
        ]
        lines.extend(v.render() for v in self.stats.violations)
        return "\n".join(lines)
