"""Simulation clock.

Time in this library is a float number of **seconds** since the start of the
simulation.  A handful of helpers convert to the human units that the paper
uses (minutes for queueing-time CDFs, hours for runtimes, days for the
week-long utilization trend of Fig. 1).

Example::

    >>> clock = Clock()
    >>> clock.advance_to(90.0)
    >>> clock.now
    90.0
    >>> fmt_duration(90.0)
    '1.5min'
    >>> clock.advance_to(30.0)
    Traceback (most recent call last):
        ...
    ValueError: time cannot move backwards: now=90.0, requested=30.0
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY


class Clock:
    """Monotonic simulation clock.

    The clock only moves forward, and only the :class:`~repro.sim.engine.Engine`
    advances it.  ``now`` is a plain attribute — the single hottest read in
    the simulator (~900k per paper-scale run), so it must not cost a property
    call — but it is *written* only through :meth:`advance_to`, which keeps
    the monotonicity guarantee.  Components read ``clock.now`` (or the
    engine's mirror ``engine.now``) and must never cache it across events.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self.now = float(start)

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ValueError: if ``when`` is in the past.  A discrete-event engine
                that tries to move time backwards has a corrupted queue, and
                silently accepting it would invalidate every time-weighted
                metric, so this is fatal.
        """
        if when < self.now:
            raise ValueError(
                f"time cannot move backwards: now={self.now}, requested={when}"
            )
        self.now = float(when)

    def __repr__(self) -> str:
        return f"Clock(now={self.now:.3f})"


def fmt_duration(seconds: float) -> str:
    """Render a duration the way the paper quotes them (s / min / h)."""
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}min"
    if seconds < DAY:
        return f"{seconds / HOUR:.2f}h"
    return f"{seconds / DAY:.2f}d"
