"""Discrete-event simulation substrate.

This package provides the minimal but complete machinery the rest of the
library runs on: a simulation clock, an event queue with stable ordering and
cancellation, and named seeded random-number streams.

The design goal is determinism: two runs with the same configuration and
seed produce byte-identical schedules, which is what makes the experiment
harness reproducible.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.events import Event, EventHandle
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "EventHandle",
    "RngRegistry",
    "derive_seed",
]
