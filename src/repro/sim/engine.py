"""The discrete-event engine.

A thin, fast event loop: a binary heap of :class:`~repro.sim.events.Event`
records, a :class:`~repro.sim.clock.Clock`, and a run loop with optional
horizon and step limits.  Everything else in the library (jobs arriving,
training iterations completing, profiling steps firing, bandwidth monitors
sampling) is expressed as events against this engine.

Example — same-time events fire in schedule order, time advances with the
head of the queue::

    >>> engine = Engine()
    >>> order = []
    >>> _ = engine.schedule(2.0, lambda: order.append("late"))
    >>> _ = engine.schedule(1.0, lambda: order.append("early"))
    >>> engine.run()
    2
    >>> order
    ['early', 'late']
    >>> engine.now
    2.0
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.profiling import perf_counter as _perf_counter
from repro.sim.clock import Clock
from repro.sim.events import Event, EventHandle, EventPriority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.profiling import Profiler

#: An engine observer: called after each fired event with the event record.
Observer = Callable[[Event], None]


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        #: Current simulation time (seconds).  A plain attribute mirroring
        #: ``clock.now``: it is the hottest read in the simulator, and the
        #: old two-property chain (``Engine.now`` -> ``Clock.now``) cost two
        #: descriptor calls per read.  Only the engine advances the clock,
        #: so the mirror is re-synced at the three advance sites (event
        #: dispatch, the final horizon advance in :meth:`run`, and
        #: :meth:`begin_restore`) and can never go stale.
        self.now: float = self.clock.now
        # Heap entries are (time, priority, seq, event) tuples rather than
        # Event records: tuple comparison short-circuits in C, and seq is
        # unique so the Event field is never compared.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._fired = 0
        self._live = 0
        self._running = False
        self._observers: list[Observer] = []
        self._profiler: Optional["Profiler"] = None
        # The profiler category of the event currently executing, so the
        # action can re-attribute itself (see recategorize_current_event).
        self._current_category: Optional[str] = None
        # Checkpoint-restore bookkeeping: tag -> (time, priority, seq) of
        # snapshotted live events awaiting a rearm() claim.  None outside
        # a begin_restore()/finish_restore() window.
        self._pending_rearm: Optional[Dict[str, Tuple[float, int, int]]] = None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as a counter incremented on schedule and
        decremented on cancel/pop, never by scanning the heap.
        """
        return self._live

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule(
        self,
        when: float,
        action: Callable[[], Any],
        *,
        priority: int = EventPriority.SCHEDULE,
        tag: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run at absolute time ``when``.

        Returns:
            A handle whose :meth:`~repro.sim.events.EventHandle.cancel`
            removes the event (lazily).

        Raises:
            ValueError: when scheduling in the past.
        """
        if when < self.now:
            raise ValueError(
                f"cannot schedule event {tag!r} at {when} (now={self.now})"
            )
        event = Event(
            time=float(when),
            priority=int(priority),
            seq=self._seq,
            action=action,
            tag=tag,
        )
        self._seq += 1
        heapq.heappush(
            self._queue, (event.time, event.priority, event.seq, event)
        )
        self._live += 1
        return EventHandle(event, self)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = EventPriority.SCHEDULE,
        tag: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay for event {tag!r}: {delay}")
        return self.schedule(
            self.now + delay, action, priority=priority, tag=tag
        )

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is drained."""
        self._discard_dead()
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Fire the single next live event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        self._discard_dead()
        if not self._queue:
            return False
        self._fire(heapq.heappop(self._queue)[3])
        return True

    def _fire(self, event: Event) -> None:
        """Execute one just-popped live event."""
        self._live -= 1
        event.fired = True
        self.clock.advance_to(event.time)
        self.now = event.time
        self._fired += 1
        profiler = self._profiler
        if profiler is None:
            # Zero-cost-when-off, literally: no section object, no host
            # clock read, nothing but this None check.
            event.action()
        else:
            # Time each event under its tag category ("gpu-done:j17" ->
            # "gpu-done"), giving disjoint per-subsystem wall-time shares.
            # The category string (not a per-event section object — that
            # allocation showed up in profiles) is the mutable handle
            # recategorize_current_event renames.
            self._current_category = event.tag.partition(":")[0] or "untagged"
            t0 = _perf_counter()
            try:
                event.action()
            finally:
                elapsed = _perf_counter() - t0
                profiler.add_time(self._current_category, elapsed)
                self._current_category = None
            profiler.count("events")
        if self._observers:
            for observer in tuple(self._observers):
                observer(event)

    def recategorize_current_event(self, category: str) -> None:
        """Re-attribute the currently executing event's profiler time.

        Called from *inside* an event action when it resolves to a
        distinct fast path (the runner books a skipped scheduling pass
        under ``schedule-skip`` instead of ``schedule-pass``, and a stale
        completion timer under ``completion-stale``, keeping the reported
        time shares honest).  A no-op when profiling is off.
        """
        if self._current_category is not None:
            self._current_category = category

    def set_profiler(self, profiler: Optional["Profiler"]) -> None:
        """Attach (or with ``None``, detach) a wall-clock profiler.

        When attached, each event's action is timed under its tag category
        and an ``events`` counter is kept.  Profiling reads the host clock
        only — it never advances simulation time or fires events, so a
        profiled run is byte-identical to an unprofiled one.
        """
        self._profiler = profiler

    def add_observer(self, observer: Observer) -> None:
        """Register a post-event callback (e.g. the invariant auditor).

        Observers run after each event's action returns; they fire no
        events and do not advance the clock, so an observed run stays
        byte-identical to an unobserved one.
        """
        if observer in self._observers:
            raise ValueError("observer already registered")
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        """Unregister a previously-added observer. Idempotent."""
        if observer in self._observers:
            self._observers.remove(observer)

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the loop until the queue drains, ``until``, or ``max_events``.

        Events scheduled exactly at ``until`` still fire; the first event
        strictly beyond ``until`` stops the loop (and stays queued).  When a
        horizon is given the clock is advanced to it on exit so that
        time-weighted metrics cover the full window.

        Returns:
            The number of events fired by this call.
        """
        if self._running:
            raise RuntimeError("engine.run() is not reentrant")
        self._running = True
        fired_before = self._fired
        queue = self._queue
        try:
            while True:
                if max_events is not None and self._fired - fired_before >= max_events:
                    break
                while queue and queue[0][3].cancelled:
                    heapq.heappop(queue)
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    break
                self._fire(heapq.heappop(queue)[3])
        finally:
            self._running = False
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
            self.now = until
        return self._fired - fired_before

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    #
    # Events hold closures, so the heap itself is never serialized.  A
    # snapshot records the *inventory* of live events — ``(time,
    # priority, seq, tag)`` — and restore expects each owning subsystem
    # to re-arm its own timers by tag, reconstructing the closure from
    # its restored state.  Preserving the original seq numbers (and the
    # pre-crash ``_seq`` counter) keeps same-time tie-breaking, and thus
    # the whole remaining run, byte-identical to the uninterrupted one.

    def snapshot(self) -> Dict[str, Any]:
        """Serializable engine state: clock, counters, live-event inventory."""
        live: List[List[Any]] = sorted(
            [event.time, event.priority, event.seq, event.tag]
            for _, _, _, event in self._queue
            if not event.cancelled and not event.fired
        )
        return {
            "now": self.clock.now,
            "seq": self._seq,
            "fired": self._fired,
            "live": live,
        }

    def begin_restore(self, state: Dict[str, Any]) -> None:
        """Enter restore mode: adopt counters, clear the heap.

        Every event scheduled before this call (construction-time
        arrivals, monitors, fault arms) is discarded; subsystems must
        claim their snapshotted events back via :meth:`rearm` before
        :meth:`finish_restore` seals the window.
        """
        if self._pending_rearm is not None:
            raise RuntimeError("engine restore already in progress")
        self._queue.clear()
        self._live = 0
        self._seq = int(state["seq"])
        self._fired = int(state["fired"])
        now = float(state["now"])
        if now > self.clock.now:
            self.clock.advance_to(now)
        self.now = self.clock.now
        pending: Dict[str, Tuple[float, int, int]] = {}
        for time, priority, seq, tag in state["live"]:
            if tag in pending:
                raise RuntimeError(
                    f"snapshot has duplicate live event tag {tag!r}"
                )
            pending[str(tag)] = (float(time), int(priority), int(seq))
        self._pending_rearm = pending

    def rearm(self, tag: str, action: Callable[[], Any]) -> EventHandle:
        """Re-schedule one snapshotted live event under its original
        ``(time, priority, seq)``, claiming it from the restore inventory."""
        if self._pending_rearm is None:
            raise RuntimeError("rearm() outside an engine restore")
        entry = self._pending_rearm.pop(tag, None)
        if entry is None:
            raise RuntimeError(
                f"no snapshotted live event with tag {tag!r} to re-arm"
            )
        time, priority, seq = entry
        event = Event(
            time=time, priority=priority, seq=seq, action=action, tag=tag
        )
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def pending_rearm_tags(self) -> Tuple[str, ...]:
        """Tags snapshotted live but not yet claimed by :meth:`rearm`."""
        if self._pending_rearm is None:
            return ()
        return tuple(sorted(self._pending_rearm))

    def finish_restore(self) -> None:
        """Seal the restore window; every snapshotted event must be claimed."""
        if self._pending_rearm is None:
            raise RuntimeError("finish_restore() outside an engine restore")
        unclaimed = sorted(self._pending_rearm)
        self._pending_rearm = None
        if unclaimed:
            raise RuntimeError(
                "restore left snapshotted events unclaimed: "
                + ", ".join(repr(tag) for tag in unclaimed)
            )

    def _on_handle_cancelled(self, event: Event) -> None:
        """EventHandle callback: a queued live event just went dead."""
        self._live -= 1

    def _discard_dead(self) -> None:
        # Dead events were already removed from the live count at cancel
        # time; here they only leave the heap.
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.clock.now:.3f}, pending={self.pending}, "
            f"fired={self._fired})"
        )
