"""Named, seeded random-number streams.

Every source of randomness in the library (arrival processes, job sizing,
duration sampling, measurement noise) draws from its own named stream,
derived deterministically from a single root seed.  This keeps experiments
reproducible *and* decoupled: adding draws to one stream does not perturb
any other stream, so, e.g., enabling measurement noise does not change the
generated trace.

Example — streams are cached per name, and child seeds are stable across
processes (BLAKE2b, not the salted built-in ``hash``)::

    >>> registry = RngRegistry(root_seed=7)
    >>> registry.stream("arrivals") is registry.stream("arrivals")
    True
    >>> derive_seed(7, "arrivals") == derive_seed(7, "arrivals")
    True
    >>> derive_seed(7, "arrivals") != derive_seed(7, "durations")
    True
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses BLAKE2b rather than ``hash()`` because the latter is salted per
    process and would destroy reproducibility.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """A factory of independent named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same name always maps to the same stream object, so sequential
        draws across call sites interleave deterministically in program
        order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.root_seed, name))
        self._streams[name] = rng
        return rng

    def snapshot(self) -> Dict[str, Any]:
        """Serializable state of every stream created so far.

        ``random.Random.getstate()`` is a nested tuple of ints; tuples are
        converted to lists so the snapshot round-trips through JSON.
        """

        def _listify(value: Any) -> Any:
            if isinstance(value, tuple):
                return [_listify(item) for item in value]
            return value

        return {
            "root_seed": self.root_seed,
            "streams": {
                name: _listify(rng.getstate())
                for name, rng in self._streams.items()
            },
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rewind every stream to a :meth:`snapshot`'s exact position.

        Streams absent from the snapshot (created after it was taken) are
        dropped; re-creating them from the root seed reproduces their
        pre-snapshot draws exactly.
        """
        if int(state["root_seed"]) != self.root_seed:
            raise ValueError(
                f"rng snapshot root seed {state['root_seed']} does not "
                f"match registry root seed {self.root_seed}"
            )

        def _tuplify(value: Any) -> Any:
            if isinstance(value, list):
                return tuple(_tuplify(item) for item in value)
            return value

        self._streams.clear()
        for name, raw in state["streams"].items():
            self.stream(name).setstate(_tuplify(raw))

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g., one per tenant) from this one."""
        return RngRegistry(derive_seed(self.root_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(root_seed={self.root_seed}, "
            f"streams={sorted(self._streams)})"
        )
