"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned by the engine at scheduling time, which makes ordering of
same-time, same-priority events FIFO and therefore deterministic.

Cancellation uses the *tombstone* idiom: an :class:`EventHandle` marks the
event dead, and the engine discards dead events when they surface.  This is
O(1) per cancellation and avoids re-heapifying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Completions run before arrivals so that resources freed at time ``t`` are
    visible to jobs arriving at ``t``; scheduler passes run last so they see
    a settled cluster state.

    >>> EventPriority.COMPLETION < EventPriority.ARRIVAL < EventPriority.SCHEDULE
    True
    """

    COMPLETION = 0
    MONITOR = 1
    ARRIVAL = 2
    SCHEDULE = 3


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which to fire.
        priority: tie-break class, see :class:`EventPriority`.
        seq: engine-assigned sequence number (FIFO within ties).
        action: zero-argument callable invoked when the event fires.
        tag: free-form label used in error messages and engine traces.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle returned by :meth:`Engine.schedule`.

    ``owner`` (when given) is notified on the cancelled→dead transition so
    the engine can keep a live-event counter without scanning its heap.
    """

    __slots__ = ("_event", "_owner")

    def __init__(self, event: Event, owner: Any = None) -> None:
        self._event = event
        self._owner = owner

    @property
    def time(self) -> float:
        """The time the event is (or was) scheduled to fire."""
        return self._event.time

    @property
    def tag(self) -> str:
        return self._event.tag

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event dead; the engine will skip it. Idempotent.

        Cancelling an event that already fired is a no-op: the callback
        cannot be un-run, and the owner's live count must not drift.
        """
        if self._event.cancelled or self._event.fired:
            return
        self._event.cancelled = True
        if self._owner is not None:
            self._owner._on_handle_cancelled(self._event)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time:.3f}, tag={self.tag!r}, {state})"
