"""Fault-injection configuration.

All channels are opt-in: a rate of ``None`` disables that channel, and the
default config injects nothing, so failure-free runs are byte-identical to
the library without this package.  Mean times are per *unit* (per node,
per GPU); event gaps are drawn exponentially, the standard memoryless
failure model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault injector; see :class:`~repro.faults.injector.FaultInjector`."""

    #: Root seed of the injector's RNG streams (independent of the trace
    #: seed, so the same workload can be replayed under many failure
    #: schedules and vice versa).
    seed: int = 0

    #: Mean time between crashes, per node.  None disables node crashes.
    node_mtbf_s: Optional[float] = None
    #: Repair time of a crashed node.
    node_mttr_s: float = 1800.0

    #: Mean time between failures, per GPU.  None disables GPU failures.
    gpu_mtbf_s: Optional[float] = None
    #: Repair (swap) time of a failed GPU.
    gpu_mttr_s: float = 3600.0

    #: Mean time between MBM telemetry dropouts, per node.  None disables.
    telemetry_mtbf_s: Optional[float] = None
    #: Length of one telemetry blackout window.
    telemetry_outage_s: float = 120.0

    #: Mean time between straggler episodes, cluster-wide.  None disables.
    straggler_interval_s: Optional[float] = None
    #: Speed multiplier applied to the afflicted CPU job (0 < factor < 1).
    straggler_factor: float = 0.25
    #: How long one straggler episode lasts.
    straggler_duration_s: float = 600.0

    def __post_init__(self) -> None:
        for name in ("node_mtbf_s", "gpu_mtbf_s", "telemetry_mtbf_s",
                     "straggler_interval_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None: {value}")
        if self.node_mttr_s <= 0 or self.gpu_mttr_s <= 0:
            raise ValueError("repair times must be positive")
        if self.telemetry_outage_s <= 0:
            raise ValueError(
                f"non-positive telemetry outage: {self.telemetry_outage_s}"
            )
        if not 0.0 < self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor out of (0, 1): {self.straggler_factor}"
            )
        if self.straggler_duration_s <= 0:
            raise ValueError(
                f"non-positive straggler duration: {self.straggler_duration_s}"
            )

    @property
    def any_channel_active(self) -> bool:
        """True when at least one fault channel will ever fire."""
        return any(
            rate is not None
            for rate in (
                self.node_mtbf_s,
                self.gpu_mtbf_s,
                self.telemetry_mtbf_s,
                self.straggler_interval_s,
            )
        )
