"""The seeded fault injector.

The injector is a pure event generator: it decides *when and where* faults
happen, while the :class:`~repro.experiments.runner.SimulationRunner`
executes *what they mean* (evictions, checkpoint restarts, telemetry
blackouts, repricing).  One independent RNG stream per (channel, node)
keeps the schedule deterministic and decoupled: changing the node-crash
MTBF does not move a single telemetry dropout.

Channel processes (all renewal processes with exponential gaps):

* ``node:<i>``      — crash node *i*, recover after ``node_mttr_s``, repeat;
* ``gpu:<i>``       — fail one random healthy GPU of node *i*;
* ``mbm:<i>``       — blind node *i*'s bandwidth monitor for a window;
* ``straggler``     — slow one random running CPU job for a while.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.faults.config import FaultConfig
from repro.sim.events import EventPriority
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import SimulationRunner

#: One injected-fault log entry: (sim time, channel kind, detail fields).
InjectedEvent = Tuple[float, str, Dict[str, object]]


class FaultInjector:
    """Schedules failure/recovery events against a simulation runner."""

    def __init__(
        self, config: Optional[FaultConfig] = None, *, seed: Optional[int] = None
    ) -> None:
        self.config = config or FaultConfig()
        self.rng = RngRegistry(seed if seed is not None else self.config.seed)
        self._runner: Optional["SimulationRunner"] = None
        #: Injected-event log for tests and reports: (time, kind, detail).
        self.injected: List[InjectedEvent] = []

    @property
    def _attached(self) -> "SimulationRunner":
        if self._runner is None:
            raise RuntimeError("fault injector is not attached to a runner")
        return self._runner

    # ------------------------------------------------------------------ #
    # Wiring

    def attach(self, runner: "SimulationRunner") -> None:
        """Arm every configured channel against ``runner``'s engine.

        Idempotent per runner; attaching twice would double the failure
        rate, so it is refused.
        """
        if self._runner is not None:
            raise RuntimeError("fault injector already attached")
        self._runner = runner
        config = self.config
        num_nodes = len(runner.cluster.nodes)
        if config.node_mtbf_s is not None:
            for node_id in range(num_nodes):
                self._arm_node_crash(node_id)
        if config.gpu_mtbf_s is not None:
            for node_id in range(num_nodes):
                self._arm_gpu_failure(node_id)
        if config.telemetry_mtbf_s is not None:
            for node_id in range(num_nodes):
                self._arm_telemetry(node_id)
        if config.straggler_interval_s is not None:
            self._arm_straggler()

    def _schedule(
        self, delay: float, action: Callable[[], None], tag: str
    ) -> None:
        self._attached.engine.schedule_in(
            delay, action, priority=EventPriority.MONITOR, tag=tag
        )

    def _exp(self, stream: str, mean: float) -> float:
        return self.rng.stream(stream).expovariate(1.0 / mean)

    def _log(self, kind: str, **detail: object) -> None:
        self.injected.append((self._attached.engine.now, kind, detail))

    # ------------------------------------------------------------------ #
    # Node crash / recover

    def _arm_node_crash(self, node_id: int) -> None:
        delay = self._exp(f"node:{node_id}", self.config.node_mtbf_s)
        self._schedule(
            delay,
            lambda: self._crash_node(node_id),
            tag=f"fault:crash:{node_id}",
        )

    def _crash_node(self, node_id: int) -> None:
        self._log("node-crash", node_id=node_id)
        self._attached.fail_node(node_id)
        self._schedule(
            self.config.node_mttr_s,
            lambda: self._recover_node(node_id),
            tag=f"fault:recover:{node_id}",
        )

    def _recover_node(self, node_id: int) -> None:
        self._log("node-recover", node_id=node_id)
        self._attached.recover_node(node_id)
        self._arm_node_crash(node_id)

    # ------------------------------------------------------------------ #
    # Single-GPU failure / repair

    def _arm_gpu_failure(self, node_id: int) -> None:
        node = self._attached.cluster.node(node_id)
        per_device = self.config.gpu_mtbf_s
        if node.total_gpus == 0:
            return
        # N devices with independent Exp(mtbf) lifetimes fail as a merged
        # Poisson process of rate N/mtbf.
        delay = self._exp(f"gpu:{node_id}", per_device / node.total_gpus)
        self._schedule(
            delay,
            lambda: self._fail_gpu(node_id),
            tag=f"fault:gpu:{node_id}",
        )

    def _fail_gpu(self, node_id: int) -> None:
        node = self._attached.cluster.node(node_id)
        healthy = [gpu.gpu_id for gpu in node.gpus if not gpu.failed]
        if node.is_up and healthy:
            gpu_id = self.rng.stream(f"gpu:{node_id}").choice(healthy)
            self._log("gpu-fail", node_id=node_id, gpu_id=gpu_id)
            self._attached.fail_gpu(node_id, gpu_id)
            # The gpu id rides in the tag so a checkpoint restore can
            # rebuild this closure from the live-event inventory alone
            # (and so two pending repairs on one node cannot collide).
            self._schedule(
                self.config.gpu_mttr_s,
                lambda: self._repair_gpu(node_id, gpu_id),
                tag=f"fault:gpu-repair:{node_id}:{gpu_id}",
            )
        self._arm_gpu_failure(node_id)

    def _repair_gpu(self, node_id: int, gpu_id: int) -> None:
        self._log("gpu-repair", node_id=node_id, gpu_id=gpu_id)
        self._attached.repair_gpu(node_id, gpu_id)

    # ------------------------------------------------------------------ #
    # MBM telemetry dropout

    def _arm_telemetry(self, node_id: int) -> None:
        delay = self._exp(f"mbm:{node_id}", self.config.telemetry_mtbf_s)
        self._schedule(
            delay,
            lambda: self._drop_telemetry(node_id),
            tag=f"fault:mbm:{node_id}",
        )

    def _drop_telemetry(self, node_id: int) -> None:
        self._log("telemetry-dropout", node_id=node_id)
        self._attached.begin_telemetry_outage(
            node_id, self.config.telemetry_outage_s
        )
        self._arm_telemetry(node_id)

    # ------------------------------------------------------------------ #
    # CPU-job straggler

    def _arm_straggler(self) -> None:
        delay = self._exp("straggler", self.config.straggler_interval_s)
        self._schedule(delay, self._straggle, tag="fault:straggler")

    def _straggle(self) -> None:
        candidates = sorted(self._attached.running_cpu_job_ids())
        if candidates:
            job_id = self.rng.stream("straggler").choice(candidates)
            self._log("straggler", job_id=job_id)
            self._attached.apply_cpu_straggler(
                job_id,
                factor=self.config.straggler_factor,
                duration_s=self.config.straggler_duration_s,
            )
        self._arm_straggler()

    # ------------------------------------------------------------------ #
    # Checkpoint / restore

    def snapshot(self) -> Dict[str, Any]:
        """Serializable injector state: RNG positions and the event log.

        The pending fault *timers* are not stored here — they live in the
        engine's event inventory, and :meth:`rearm` rebuilds their
        closures from the tags alone.
        """
        return {
            "rng": self.rng.snapshot(),
            "injected": [
                [time, kind, dict(detail)] for time, kind, detail in self.injected
            ],
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.rng.restore(state["rng"])
        self.injected = [
            (float(time), str(kind), dict(detail))
            for time, kind, detail in state["injected"]
        ]

    def rearm(self, engine: Any) -> None:
        """Re-claim every snapshotted ``fault:*`` event from ``engine``.

        Runs inside an engine restore window: the construction-time arms
        scheduled by :meth:`attach` were discarded with the rest of the
        heap, and each live fault timer is rebuilt under its original
        ``(time, priority, seq)`` from the information in its tag.
        """
        for tag in engine.pending_rearm_tags():
            if not tag.startswith("fault:"):
                continue
            parts = tag.split(":")
            kind = parts[1]
            if kind == "crash":
                node_id = int(parts[2])
                engine.rearm(
                    tag, lambda node_id=node_id: self._crash_node(node_id)
                )
            elif kind == "recover":
                node_id = int(parts[2])
                engine.rearm(
                    tag, lambda node_id=node_id: self._recover_node(node_id)
                )
            elif kind == "gpu":
                node_id = int(parts[2])
                engine.rearm(
                    tag, lambda node_id=node_id: self._fail_gpu(node_id)
                )
            elif kind == "gpu-repair":
                node_id, gpu_id = int(parts[2]), int(parts[3])
                engine.rearm(
                    tag,
                    lambda node_id=node_id, gpu_id=gpu_id: self._repair_gpu(
                        node_id, gpu_id
                    ),
                )
            elif kind == "mbm":
                node_id = int(parts[2])
                engine.rearm(
                    tag, lambda node_id=node_id: self._drop_telemetry(node_id)
                )
            elif kind == "straggler":
                engine.rearm(tag, self._straggle)
            else:
                raise RuntimeError(f"cannot re-arm unknown fault tag {tag!r}")
