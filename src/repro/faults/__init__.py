"""Deterministic fault injection.

CODA's production setting (Sec. VI) is an 80-node cluster where hardware
breaks: the Philly trace study (Jeon et al.) found infrastructure failures
to be a dominant source of wasted GPU-hours in exactly this class of
cluster.  This package injects that reality into the simulation:

* **node crashes** — every resident job is killed and re-queued at its
  array head; training jobs restart from their last checkpoint, CPU jobs
  from scratch; the node returns after a repair delay;
* **single-GPU failures** — the owning job (if any) is killed the same
  way; the device alone leaves the free pool until repaired;
* **MBM telemetry dropouts** — a node's bandwidth monitor goes blind for a
  while; the contention eliminator degrades gracefully, skipping nodes
  whose last sample is stale beyond its trust window;
* **CPU-job stragglers** — a running CPU job's speed collapses for a
  while, the way a failing disk or a noisy neighbour manifests in
  practice.

Everything is driven by named seeded RNG streams
(:mod:`repro.sim.rng`), so a given ``(trace seed, fault seed)`` pair
replays the exact same failure schedule — restart counts, makespans, and
queue contents included.
"""

from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector

__all__ = ["FaultConfig", "FaultInjector"]
