"""Arrival processes.

CPU-job arrivals in the paper's cluster are diurnal (Fig. 1: the CPU active
rate swings daily and hits 100 % at peaks, driven by user-facing inference),
while GPU training submissions are flatter.  Arrivals are generated as a
non-homogeneous Poisson process via thinning, which keeps the process exact
for any bounded rate function.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.sim.clock import DAY, WEEK


@dataclass(frozen=True)
class DiurnalRate:
    """A sinusoidal daily rate profile with an optional weekend dip.

    ``rate(t) = base * daily(t) * weekly(t)`` where ``daily`` swings
    sinusoidally with ``amplitude`` around 1 (clipped at zero) and
    ``weekly`` scales the last two days of each 7-day cycle by
    ``weekend_factor`` (1.0 = no weekly structure; a user-facing inference
    fleet might use ~0.6).
    """

    base_per_s: float
    amplitude: float = 0.0
    phase_s: float = 0.0
    period_s: float = DAY
    weekend_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.base_per_s < 0:
            raise ValueError(f"negative base rate: {self.base_per_s}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude out of [0, 1]: {self.amplitude}")
        if self.period_s <= 0:
            raise ValueError(f"non-positive period: {self.period_s}")
        if not 0.0 < self.weekend_factor <= 1.0:
            raise ValueError(
                f"weekend_factor out of (0, 1]: {self.weekend_factor}"
            )

    def __call__(self, t: float) -> float:
        swing = math.sin(2.0 * math.pi * (t - self.phase_s) / self.period_s)
        daily = max(0.0, self.base_per_s * (1.0 + self.amplitude * swing))
        return daily * self._weekly(t)

    def _weekly(self, t: float) -> float:
        if self.weekend_factor >= 1.0:
            return 1.0
        day_in_week = (t % WEEK) / DAY
        return self.weekend_factor if day_in_week >= 5.0 else 1.0

    @property
    def max_rate(self) -> float:
        return self.base_per_s * (1.0 + self.amplitude)


def poisson_arrivals(
    rate: Callable[[float], float],
    max_rate: float,
    horizon_s: float,
    rng: random.Random,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Non-homogeneous Poisson arrival times on [start, horizon) by thinning.

    Args:
        rate: instantaneous rate function (events per second).
        max_rate: an upper bound on ``rate`` over the window (the thinning
            envelope); must actually bound it or the process is biased.
        horizon_s: end of the window.
        rng: the stream to draw from.
        start_s: start of the window.
    """
    if max_rate <= 0:
        return
    if horizon_s <= start_s:
        return
    t = start_s
    while True:
        t += rng.expovariate(max_rate)
        if t >= horizon_s:
            return
        instantaneous = rate(t)
        if instantaneous > max_rate * (1.0 + 1e-9):
            raise ValueError(
                f"rate {instantaneous} exceeds thinning envelope {max_rate} "
                f"at t={t}"
            )
        if rng.random() * max_rate < instantaneous:
            yield t
