"""Job records.

Jobs are immutable *specifications* — what the tenant submitted.  Runtime
state (queueing, placement, progress, retuned cores) lives in the
simulation runner's execution records, so a trace can be replayed under
any scheduler without cross-contamination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.resources import ResourceVector
from repro.perfmodel.catalog import get_model
from repro.perfmodel.stages import TrainSetup


class JobKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class JobHints:
    """Optional tenant-provided model information (Sec. V-B1).

    Tenants "provided at least the categories of their models, and may
    provide" three extras; each field is ``None`` when not provided.
    """

    category_provided: bool = True
    uses_pipeline: Optional[bool] = None
    many_weights: Optional[bool] = None
    complex_inter_iteration: Optional[bool] = None


@dataclass(frozen=True)
class Job:
    """Fields common to both job kinds."""

    job_id: str
    tenant_id: int
    submit_time: float

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"{self.job_id}: negative submit time")
        if self.tenant_id < 0:
            raise ValueError(f"{self.job_id}: negative tenant id")

    @property
    def kind(self) -> JobKind:
        raise NotImplementedError


@dataclass(frozen=True)
class CpuJob(Job):
    """A traditional CPU job (inference, ETL, auxiliary tasks).

    Attributes:
        cores: requested core count, all on one node.
        duration_s: execution time at full speed (no throttling).
        bw_demand_gbps: memory-bandwidth demand while running.
        llc_mb: LLC footprint.
        is_heat: True for HEAT-like bandwidth-intensive jobs (Sec. IV-C2);
            only these meaningfully slow when the eliminator throttles
            their bandwidth.
        is_inference: True for user-facing inference jobs, which outrank
            even DNN training ("DNN training jobs have higher priority
            than all CPU jobs on GPU clusters except the user-facing
            inference jobs", Sec. V-A): the eliminator never throttles
            them and the multi-array scheduler never aborts them.
    """

    cores: int = 1
    duration_s: float = 60.0
    bw_demand_gbps: float = 0.5
    llc_mb: float = 1.0
    is_heat: bool = False
    is_inference: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cores < 1:
            raise ValueError(f"{self.job_id}: CPU job needs at least one core")
        if self.duration_s <= 0:
            raise ValueError(f"{self.job_id}: non-positive duration")
        if self.bw_demand_gbps < 0 or self.llc_mb < 0:
            raise ValueError(f"{self.job_id}: negative resource demand")
        if self.is_heat and self.is_inference:
            raise ValueError(
                f"{self.job_id}: a job cannot be both HEAT and inference"
            )

    @property
    def kind(self) -> JobKind:
        return JobKind.CPU

    @property
    def requested(self) -> ResourceVector:
        return ResourceVector(cpus=self.cores, gpus=0)


@dataclass(frozen=True)
class GpuJob(Job):
    """A DNN training job.

    Attributes:
        model_name: a Table-I model (see :mod:`repro.perfmodel.catalog`).
        setup: the aNbG configuration and batch size.
        requested_cpus: cores the owner asked for **per node** — this is
            what FIFO/DRF grant; CODA's allocator overrides it.
        total_iterations: training length; wall time follows from the
            performance model at whatever allocation the job runs with.
        hints: optional model information for N_start (Sec. V-B1).
        checkpoint_interval_iters: the job writes a checkpoint every this
            many iterations; after an infrastructure failure it restarts
            from the last completed checkpoint boundary (work past it is
            lost).  0 means no checkpointing — a failed job restarts from
            scratch.  Irrelevant while nothing fails, so the default does
            not perturb failure-free runs.
    """

    model_name: str = "resnet50"
    setup: TrainSetup = field(default_factory=TrainSetup)
    requested_cpus: int = 2
    total_iterations: int = 1000
    hints: JobHints = field(default_factory=JobHints)
    checkpoint_interval_iters: int = 100

    def __post_init__(self) -> None:
        super().__post_init__()
        get_model(self.model_name)  # validates the name
        if self.requested_cpus < 1:
            raise ValueError(f"{self.job_id}: need at least one core per node")
        if self.total_iterations < 1:
            raise ValueError(f"{self.job_id}: need at least one iteration")
        if self.checkpoint_interval_iters < 0:
            raise ValueError(
                f"{self.job_id}: negative checkpoint interval"
            )

    def checkpointed_iterations(self, work_done: float) -> float:
        """Progress that survives a failure at ``work_done`` iterations."""
        interval = self.checkpoint_interval_iters
        if interval <= 0:
            return 0.0
        return float(int(work_done // interval) * interval)

    @property
    def kind(self) -> JobKind:
        return JobKind.GPU

    @property
    def requested(self) -> ResourceVector:
        """Total requested resources across all nodes."""
        return ResourceVector(
            cpus=self.requested_cpus * self.setup.num_nodes,
            gpus=self.setup.total_gpus,
        )

    @property
    def category(self) -> str:
        """The model category string the tenant reports (Speech/CV/NLP)."""
        return get_model(self.model_name).domain.value
