"""Synthetic trace generation.

Reproduces the published marginal distributions of the paper's one-month
trace (Sec. VI-A and Sec. III):

* 75,000 CPU jobs and 25,000 DNN training jobs over 30 days (2,500 and
  ~833 per day respectively) — both rates scale with the configured
  duration;
* requested CPU cores of GPU jobs (Fig. 2d): 76.1 % ask for 1-2 cores,
  15.3 % for more than 10, the rest in between;
* training-job runtimes (Sec. VI-F): 68.5 % run longer than one hour,
  39.6 % longer than two — a lognormal with median ~1.57 h, sigma 0.93;
* diurnal CPU arrivals (Fig. 1), flatter GPU arrivals;
* tenant mix per Fig. 2a / Fig. 12 (research lab GPU-heavy, companies
  CPU-heavy, users 15-20 CPU-only);
* a small fraction of CPU jobs are HEAT-like bandwidth hogs — the
  eliminator evaluation reports "0.5 % of CPU tasks have high memory
  bandwidth requirements" (Sec. VI-E).

All draws flow through named streams of a :class:`repro.sim.rng.RngRegistry`
so the trace is a pure function of its config.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perfmodel.catalog import Domain, ModelProfile, models_in_domain
from repro.perfmodel.speed import iteration_time
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import optimal_cores
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.sim.rng import RngRegistry
from repro.workload.arrivals import DiurnalRate, poisson_arrivals
from repro.workload.job import CpuJob, GpuJob, Job, JobHints
from repro.workload.tenants import TenantProfile, paper_tenants

#: Fig. 2d requested-core buckets: (low, high, probability), **per GPU** —
#: "many DNN training jobs apply for one or two cores for each GPU"
#: (Sec. VI-D); the per-node request scales with the local GPU count.
REQUESTED_CPU_BUCKETS: Tuple[Tuple[int, int, float], ...] = (
    (1, 2, 0.761),
    (3, 10, 0.086),
    (11, 24, 0.153),
)

#: Per-node core requests are capped just below a whole node so that a
#: greedy request can still be placed (the paper's 28-core nodes) while
#: stranding that node's remaining GPUs — the Sec. III "insufficient CPU
#: cores" fragmentation mechanism.
MAX_REQUESTED_CPUS_PER_NODE = 26

#: Training configurations and their trace shares.  Jobs demanding four or
#: more GPUs are the multi-array scheduler's 4-GPU sub-array clientele.
#: The testbed's servers are mostly 4-GPU (Sec. III-A), so jobs beyond
#: four GPUs run multi-node, as in Sec. IV-B2.
SETUP_MIX: Tuple[Tuple[int, int, float], ...] = (
    # (num_nodes, gpus_per_node, probability)
    (1, 1, 0.45),
    (1, 2, 0.27),
    (1, 4, 0.18),
    (2, 2, 0.05),
    (2, 4, 0.05),
)

#: GPU-job runtime lognormal, calibrated to Sec. VI-F's tail fractions
#: (P[>1h] = 68.5 %, P[>2h] = 39.6 %).
GPU_RUNTIME_MEDIAN_S = 5645.0
GPU_RUNTIME_SIGMA = 0.93

#: CPU-job shape: inference/auxiliary tasks are small and short — most of
#: the cluster's core pressure comes from the training jobs themselves
#: (Sec. III: the >10-core GPU requests are what exhausts node CPUs).
CPU_CORE_CHOICES: Tuple[int, ...] = (1, 2, 4, 6, 8)
CPU_CORE_WEIGHTS: Tuple[float, ...] = (0.20, 0.25, 0.25, 0.15, 0.15)
CPU_RUNTIME_MEDIAN_S = 1800.0
CPU_RUNTIME_SIGMA = 1.0


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace."""

    duration_days: float = 30.0
    gpu_jobs_per_day: float = 25000.0 / 30.0
    cpu_jobs_per_day: float = 75000.0 / 30.0
    heat_fraction: float = 0.005
    #: Fraction of CPU jobs that are user-facing inference — the AI
    #: companies "choose to run the model inference job on the CPU"
    #: (Sec. I); these are short, small, and outrank training (Sec. V-A).
    inference_fraction: float = 0.3
    hint_probability: float = 0.5
    default_batch_probability: float = 0.8
    #: Weekend scaling of the CPU-job (user-facing) arrival rate; 1.0
    #: disables weekly structure.  Fig. 1 spans a week of production
    #: traffic, which carries a visible weekend dip.
    weekend_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ValueError(f"non-positive duration: {self.duration_days}")
        if self.gpu_jobs_per_day < 0 or self.cpu_jobs_per_day < 0:
            raise ValueError("job rates must be non-negative")
        if not 0.0 <= self.heat_fraction <= 1.0:
            raise ValueError(f"heat_fraction out of [0, 1]: {self.heat_fraction}")
        if not 0.0 <= self.inference_fraction <= 1.0:
            raise ValueError(
                f"inference_fraction out of [0, 1]: {self.inference_fraction}"
            )
        if self.heat_fraction + self.inference_fraction > 1.0:
            raise ValueError("heat and inference fractions exceed 1.0")
        if not 0.0 <= self.hint_probability <= 1.0:
            raise ValueError(f"hint_probability out of [0, 1]")
        if not 0.0 <= self.default_batch_probability <= 1.0:
            raise ValueError(f"default_batch_probability out of [0, 1]")

    @property
    def duration_s(self) -> float:
        return self.duration_days * DAY


@dataclass
class Trace:
    """A generated (or loaded) job trace, sorted by submit time."""

    config: TraceConfig
    tenants: List[TenantProfile]
    jobs: List[Job] = field(default_factory=list)

    @property
    def gpu_jobs(self) -> List[GpuJob]:
        return [job for job in self.jobs if isinstance(job, GpuJob)]

    @property
    def cpu_jobs(self) -> List[CpuJob]:
        return [job for job in self.jobs if isinstance(job, CpuJob)]

    def jobs_of_tenant(self, tenant_id: int) -> List[Job]:
        return [job for job in self.jobs if job.tenant_id == tenant_id]

    def __len__(self) -> int:
        return len(self.jobs)


def _weighted_choice(
    rng, items: Sequence, weights: Sequence[float]
):
    """Deterministic weighted choice via a single uniform draw."""
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point <= acc:
            return item
    return items[-1]


def sample_requested_cpus(rng, gpus_per_node: int = 1) -> int:
    """Draw an owner-requested per-node core count per the Fig. 2d buckets.

    The bucket draw is per GPU; the node request multiplies it by the
    local GPU count, capped at :data:`MAX_REQUESTED_CPUS_PER_NODE`.
    """
    if gpus_per_node < 1:
        raise ValueError(f"gpus_per_node must be >= 1: {gpus_per_node}")
    low, high, _ = _weighted_choice(
        rng,
        REQUESTED_CPU_BUCKETS,
        [p for _, _, p in REQUESTED_CPU_BUCKETS],
    )
    per_gpu = rng.randint(low, high)
    return min(per_gpu * gpus_per_node, MAX_REQUESTED_CPUS_PER_NODE)


def sample_gpu_runtime_s(rng) -> float:
    """Training wall time *at the optimal allocation*, Sec. VI-F shape."""
    draw = rng.lognormvariate(math.log(GPU_RUNTIME_MEDIAN_S), GPU_RUNTIME_SIGMA)
    return min(max(draw, 10 * MINUTE), 24 * HOUR)


def sample_cpu_runtime_s(rng) -> float:
    draw = rng.lognormvariate(math.log(CPU_RUNTIME_MEDIAN_S), CPU_RUNTIME_SIGMA)
    return min(max(draw, 30.0), 12 * HOUR)


class _IterTimeCache:
    """Optimal-allocation iteration times, memoized per (model, setup)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int, int, Optional[int]], float] = {}

    def iter_time(self, profile: ModelProfile, setup: TrainSetup) -> float:
        key = (profile.name, setup.num_nodes, setup.gpus_per_node, setup.batch)
        cached = self._cache.get(key)
        if cached is None:
            best = optimal_cores(profile, setup)
            cached = iteration_time(profile, setup, best).total_s
            self._cache[key] = cached
        return cached


def _gpu_job(
    job_id: str,
    tenant: TenantProfile,
    submit_time: float,
    rng,
    config: TraceConfig,
    cache: _IterTimeCache,
) -> GpuJob:
    domain = _weighted_choice(
        rng,
        [d for d, _ in tenant.domain_mix],
        [w for _, w in tenant.domain_mix],
    )
    profile = rng.choice(models_in_domain(domain))
    num_nodes, gpus_per_node, _ = _weighted_choice(
        rng, SETUP_MIX, [p for _, _, p in SETUP_MIX]
    )
    if rng.random() < config.default_batch_probability:
        batch = profile.default_batch
    else:
        batch = profile.max_batch
    setup = TrainSetup(
        num_nodes=num_nodes, gpus_per_node=gpus_per_node, batch=batch
    )
    runtime_s = sample_gpu_runtime_s(rng)
    iterations = max(1, round(runtime_s / cache.iter_time(profile, setup)))
    give_hints = rng.random() < config.hint_probability
    hints = JobHints(
        category_provided=True,
        uses_pipeline=profile.pipelined if give_hints else None,
        many_weights=(profile.weight_mb > 200) if give_hints else None,
        complex_inter_iteration=(
            (profile.domain is Domain.NLP) if give_hints else None
        ),
    )
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant.tenant_id,
        submit_time=submit_time,
        model_name=profile.name,
        setup=setup,
        requested_cpus=sample_requested_cpus(rng, gpus_per_node),
        total_iterations=iterations,
        hints=hints,
    )


def _cpu_job(
    job_id: str,
    tenant: TenantProfile,
    submit_time: float,
    rng,
    config: TraceConfig,
) -> CpuJob:
    kind_draw = rng.random()
    if kind_draw < config.heat_fraction:
        threads = rng.randint(8, 12)
        return CpuJob(
            job_id=job_id,
            tenant_id=tenant.tenant_id,
            submit_time=submit_time,
            cores=threads,
            duration_s=sample_cpu_runtime_s(rng),
            bw_demand_gbps=8.0 * threads,
            llc_mb=1.8 * threads,
            is_heat=True,
        )
    if kind_draw < config.heat_fraction + config.inference_fraction:
        # User-facing inference: short, narrow, latency-critical.
        duration = min(
            max(rng.lognormvariate(math.log(60.0), 0.8), 5.0), 30 * MINUTE
        )
        return CpuJob(
            job_id=job_id,
            tenant_id=tenant.tenant_id,
            submit_time=submit_time,
            cores=rng.randint(1, 2),
            duration_s=duration,
            bw_demand_gbps=rng.uniform(0.2, 1.0),
            llc_mb=rng.uniform(0.5, 2.0),
            is_inference=True,
        )
    cores = _weighted_choice(rng, CPU_CORE_CHOICES, CPU_CORE_WEIGHTS)
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant.tenant_id,
        submit_time=submit_time,
        cores=cores,
        duration_s=sample_cpu_runtime_s(rng),
        bw_demand_gbps=rng.uniform(0.2, 2.0),
        llc_mb=rng.uniform(0.5, 4.0),
        is_heat=False,
    )


def generate_trace(
    config: Optional[TraceConfig] = None,
    tenants: Optional[List[TenantProfile]] = None,
) -> Trace:
    """Generate the synthetic multi-tenant trace.

    Arrival times come from per-kind non-homogeneous Poisson processes (CPU
    arrivals diurnal, GPU arrivals mildly so); each arrival is then
    attributed to a tenant by the Fig. 2a weights and fleshed out into a
    job spec.
    """
    config = config or TraceConfig()
    tenants = tenants if tenants is not None else paper_tenants()
    registry = RngRegistry(config.seed)
    cache = _IterTimeCache()

    gpu_tenants = [t for t in tenants if t.gpu_job_weight > 0]
    cpu_tenants = [t for t in tenants if t.cpu_job_weight > 0]
    jobs: List[Job] = []

    if config.gpu_jobs_per_day > 0 and gpu_tenants:
        rate = DiurnalRate(
            base_per_s=config.gpu_jobs_per_day / DAY,
            amplitude=0.25,
            phase_s=-6 * HOUR,
        )
        arrivals_rng = registry.stream("gpu-arrivals")
        body_rng = registry.stream("gpu-jobs")
        for index, when in enumerate(
            poisson_arrivals(rate, rate.max_rate, config.duration_s, arrivals_rng)
        ):
            tenant = _weighted_choice(
                body_rng, gpu_tenants, [t.gpu_job_weight for t in gpu_tenants]
            )
            jobs.append(
                _gpu_job(f"gpu-{index:06d}", tenant, when, body_rng, config, cache)
            )

    if config.cpu_jobs_per_day > 0 and cpu_tenants:
        rate = DiurnalRate(
            base_per_s=config.cpu_jobs_per_day / DAY,
            amplitude=0.85,
            phase_s=-6 * HOUR,
            weekend_factor=config.weekend_factor,
        )
        arrivals_rng = registry.stream("cpu-arrivals")
        body_rng = registry.stream("cpu-jobs")
        for index, when in enumerate(
            poisson_arrivals(rate, rate.max_rate, config.duration_s, arrivals_rng)
        ):
            tenant = _weighted_choice(
                body_rng, cpu_tenants, [t.cpu_job_weight for t in cpu_tenants]
            )
            jobs.append(
                _cpu_job(f"cpu-{index:06d}", tenant, when, body_rng, config)
            )

    jobs.sort(key=lambda job: (job.submit_time, job.job_id))
    return Trace(config=config, tenants=tenants, jobs=jobs)
