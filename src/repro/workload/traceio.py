"""Trace persistence as JSON Lines.

The first line is a header with the trace config; every following line is
one job.  The format is line-oriented so multi-gigabyte traces can be
streamed, diffed, and sampled with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.perfmodel.stages import TrainSetup
from repro.workload.job import CpuJob, GpuJob, Job, JobHints
from repro.workload.tenants import paper_tenants
from repro.workload.tracegen import Trace, TraceConfig

_FORMAT_VERSION = 1


def _job_to_dict(job: Job) -> dict:
    if isinstance(job, GpuJob):
        return {
            "kind": "gpu",
            "job_id": job.job_id,
            "tenant_id": job.tenant_id,
            "submit_time": job.submit_time,
            "model_name": job.model_name,
            "num_nodes": job.setup.num_nodes,
            "gpus_per_node": job.setup.gpus_per_node,
            "batch": job.setup.batch,
            "requested_cpus": job.requested_cpus,
            "total_iterations": job.total_iterations,
            "checkpoint_interval_iters": job.checkpoint_interval_iters,
            "hints": {
                "category_provided": job.hints.category_provided,
                "uses_pipeline": job.hints.uses_pipeline,
                "many_weights": job.hints.many_weights,
                "complex_inter_iteration": job.hints.complex_inter_iteration,
            },
        }
    if isinstance(job, CpuJob):
        return {
            "kind": "cpu",
            "job_id": job.job_id,
            "tenant_id": job.tenant_id,
            "submit_time": job.submit_time,
            "cores": job.cores,
            "duration_s": job.duration_s,
            "bw_demand_gbps": job.bw_demand_gbps,
            "llc_mb": job.llc_mb,
            "is_heat": job.is_heat,
            "is_inference": job.is_inference,
        }
    raise TypeError(f"unknown job type: {type(job).__name__}")


def _job_from_dict(record: dict) -> Job:
    kind = record.get("kind")
    if kind == "gpu":
        return GpuJob(
            job_id=record["job_id"],
            tenant_id=record["tenant_id"],
            submit_time=record["submit_time"],
            model_name=record["model_name"],
            setup=TrainSetup(
                num_nodes=record["num_nodes"],
                gpus_per_node=record["gpus_per_node"],
                batch=record["batch"],
            ),
            requested_cpus=record["requested_cpus"],
            total_iterations=record["total_iterations"],
            hints=JobHints(**record["hints"]),
            checkpoint_interval_iters=record.get(
                "checkpoint_interval_iters", 100
            ),
        )
    if kind == "cpu":
        return CpuJob(
            job_id=record["job_id"],
            tenant_id=record["tenant_id"],
            submit_time=record["submit_time"],
            cores=record["cores"],
            duration_s=record["duration_s"],
            bw_demand_gbps=record["bw_demand_gbps"],
            llc_mb=record["llc_mb"],
            is_heat=record["is_heat"],
            is_inference=record.get("is_inference", False),
        )
    raise ValueError(f"unknown job kind in trace file: {kind!r}")


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` as JSONL (header line + one job per line)."""
    path = Path(path)
    header = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "duration_days": trace.config.duration_days,
            "gpu_jobs_per_day": trace.config.gpu_jobs_per_day,
            "cpu_jobs_per_day": trace.config.cpu_jobs_per_day,
            "heat_fraction": trace.config.heat_fraction,
            "hint_probability": trace.config.hint_probability,
            "default_batch_probability": trace.config.default_batch_probability,
            "weekend_factor": trace.config.weekend_factor,
            "seed": trace.config.seed,
        },
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for job in trace.jobs:
            handle.write(json.dumps(_job_to_dict(job)) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version!r} in {path}"
            )
        config = TraceConfig(**header["config"])
        jobs = [_job_from_dict(json.loads(line)) for line in handle if line.strip()]
    jobs.sort(key=lambda job: (job.submit_time, job.job_id))
    return Trace(config=config, tenants=paper_tenants(), jobs=jobs)
