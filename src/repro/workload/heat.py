"""The HEAT memory-pressure benchmark (Sec. IV-C2).

The paper inflicts controlled LLC and memory-bandwidth pressure on a node
by running HEAT, a memory-intensive CPU benchmark, and "adjusting the
thread number of the program".  This module is its synthetic stand-in: a
CPU-job template whose bandwidth demand scales with its thread count.
"""

from __future__ import annotations

from repro.workload.job import CpuJob

#: Streaming bandwidth one HEAT thread sustains on the modeled Xeon.
HEAT_GBPS_PER_THREAD = 8.0

#: LLC footprint per HEAT thread (streaming working sets evict broadly).
HEAT_LLC_MB_PER_THREAD = 1.8


def heat_job(
    job_id: str,
    submit_time: float,
    threads: int,
    duration_s: float = 3600.0,
    tenant_id: int = 20,
    gbps_per_thread: float = HEAT_GBPS_PER_THREAD,
) -> CpuJob:
    """Build a HEAT instance with ``threads`` worker threads.

    One core per thread; bandwidth demand and LLC footprint scale linearly
    with the thread count, which is exactly the knob Fig. 7 sweeps.
    """
    if threads < 1:
        raise ValueError(f"HEAT needs at least one thread, got {threads}")
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant_id,
        submit_time=submit_time,
        cores=threads,
        duration_s=duration_s,
        bw_demand_gbps=gbps_per_thread * threads,
        llc_mb=HEAT_LLC_MB_PER_THREAD * threads,
        is_heat=True,
    )
