"""Tenant profiles.

The cluster is shared by one AI research institution and several AI
companies (Sec. III-A).  Fig. 2a: the research lab contributes most of the
GPU (training) jobs; the companies contribute most of the CPU jobs
(user-facing inference, bursty and diurnal).  Fig. 12 plots 20 users, of
which users 15-20 submit only CPU jobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.perfmodel.catalog import Domain


class TenantKind(enum.Enum):
    RESEARCH_LAB = "research_lab"
    AI_COMPANY = "ai_company"
    CPU_ONLY = "cpu_only"


@dataclass(frozen=True)
class TenantProfile:
    """One user of the cluster.

    Attributes:
        tenant_id: 1-based user id, matching the x-axis of Fig. 12.
        kind: which party this user belongs to.
        gpu_job_weight: relative share of the cluster's GPU jobs this user
            submits (zero for CPU-only users).
        cpu_job_weight: relative share of CPU jobs.
        domain_mix: probability over model categories for this user's
            training jobs.  "Most of the GPU jobs are training NLP and
            SPEECH models" (Sec. VI-A); the research lab also trains CV.
        diurnal_amplitude: how bursty/daytime-shaped this user's CPU-job
            arrivals are (companies are user-facing, hence diurnal).
    """

    tenant_id: int
    kind: TenantKind
    gpu_job_weight: float
    cpu_job_weight: float
    domain_mix: Tuple[Tuple[Domain, float], ...]
    diurnal_amplitude: float

    def __post_init__(self) -> None:
        if self.tenant_id < 1:
            raise ValueError(f"tenant ids are 1-based: {self.tenant_id}")
        if self.gpu_job_weight < 0 or self.cpu_job_weight < 0:
            raise ValueError(f"negative job weight for tenant {self.tenant_id}")
        if self.kind is TenantKind.CPU_ONLY and self.gpu_job_weight > 0:
            raise ValueError(
                f"CPU-only tenant {self.tenant_id} cannot submit GPU jobs"
            )
        if self.gpu_job_weight > 0:
            total = sum(weight for _, weight in self.domain_mix)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"tenant {self.tenant_id}: domain mix sums to {total}"
                )
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError(
                f"tenant {self.tenant_id}: diurnal amplitude out of [0, 1]"
            )


#: Research-lab training mix: all three categories, CV-leaning.
_LAB_MIX = ((Domain.CV, 0.40), (Domain.NLP, 0.30), (Domain.SPEECH, 0.30))
#: Company training mix: the cluster owner works in ASR/NLP/CV startups and
#: mostly trains NLP and Speech models (Sec. VI-A).
_COMPANY_MIX = ((Domain.CV, 0.15), (Domain.NLP, 0.40), (Domain.SPEECH, 0.45))


def paper_tenants() -> List[TenantProfile]:
    """The 20 users of Fig. 12.

    Users 1-4: research-lab members (GPU-heavy, little CPU work).
    Users 5-14: AI-company users (some training, most of the CPU jobs).
    Users 15-20: CPU-only users (Fig. 12's note on ids 15-20).
    """
    tenants: List[TenantProfile] = []
    for tenant_id in range(1, 5):
        tenants.append(
            TenantProfile(
                tenant_id=tenant_id,
                kind=TenantKind.RESEARCH_LAB,
                gpu_job_weight=1.6,
                cpu_job_weight=0.2,
                domain_mix=_LAB_MIX,
                diurnal_amplitude=0.2,
            )
        )
    for tenant_id in range(5, 15):
        tenants.append(
            TenantProfile(
                tenant_id=tenant_id,
                kind=TenantKind.AI_COMPANY,
                gpu_job_weight=0.36,
                cpu_job_weight=0.8,
                domain_mix=_COMPANY_MIX,
                diurnal_amplitude=0.6,
            )
        )
    for tenant_id in range(15, 21):
        tenants.append(
            TenantProfile(
                tenant_id=tenant_id,
                kind=TenantKind.CPU_ONLY,
                gpu_job_weight=0.0,
                cpu_job_weight=1.0,
                domain_mix=(),
                diurnal_amplitude=0.7,
            )
        )
    return tenants


def weights_by_tenant(
    tenants: List[TenantProfile],
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """(gpu_weights, cpu_weights) keyed by tenant id, for sampling."""
    gpu = {t.tenant_id: t.gpu_job_weight for t in tenants}
    cpu = {t.tenant_id: t.cpu_job_weight for t in tenants}
    return gpu, cpu
