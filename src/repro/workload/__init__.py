"""Jobs, tenants, and trace generation.

This package substitutes for the paper's one-month production trace from
the AISpeech multi-tenant cluster (Sec. VI-A): 100,000 jobs — 75,000 CPU
jobs and 25,000 DNN training jobs — from 20 tenants, with the published
marginal distributions (requested-core breakdown of Fig. 2d, runtimes of
Sec. VI-F, diurnal CPU arrivals of Fig. 1, tenant mix of Fig. 2a).
"""

from repro.workload.job import CpuJob, GpuJob, Job, JobHints, JobKind
from repro.workload.tenants import TenantKind, TenantProfile, paper_tenants
from repro.workload.arrivals import DiurnalRate, poisson_arrivals
from repro.workload.tracegen import Trace, TraceConfig, generate_trace
from repro.workload.heat import heat_job
from repro.workload.traceio import load_trace, save_trace

__all__ = [
    "CpuJob",
    "DiurnalRate",
    "GpuJob",
    "Job",
    "JobHints",
    "JobKind",
    "TenantKind",
    "TenantProfile",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "heat_job",
    "load_trace",
    "paper_tenants",
    "poisson_arrivals",
    "save_trace",
]
