"""Docs link checker.

Walks every Markdown file under ``docs/`` plus the top-level ``README.md``
and verifies that each *relative* link target resolves to a real file (or
directory) in the repository.  External links (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#section``) are out of scope — this guards
against the cheap-and-common failure of renaming a doc page and leaving a
dangling cross-reference behind.

Usage::

    python tools/check_docs_links.py          # check docs/ and README.md
    python tools/check_docs_links.py a.md ...  # check the given files

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link, ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target).  Images ![alt](target) match the
#: same tail.  Reference-style definitions ([name]: target) are rare in
#: this repo's docs and intentionally unsupported.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def default_files() -> List[Path]:
    files = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def broken_links(path: Path) -> List[Tuple[int, str]]:
    """(line number, target) for every unresolvable relative link."""
    bad: List[Tuple[int, str]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                bad.append((lineno, target))
    return bad


def main(argv: Iterable[str] = ()) -> int:
    args = list(argv)
    files = [Path(arg) for arg in args] if args else default_files()
    failures = 0
    for path in files:
        if not path.exists():
            print(f"{path}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in broken_links(path):
            print(
                f"{path.relative_to(REPO_ROOT) if path.is_absolute() else path}"
                f":{lineno}: broken link target: {target}",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs links OK ({len(files)} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
