"""CI gate: a sweep must survive injected worker failures and resume to
a no-op.

Drives ``repro-sim sweep`` as a subprocess (the real user surface) with
chaos injection armed through the ``REPRO_TEST_*`` environment hooks:

1. **Chaos pass** — one grid cell's worker is SIGKILLed on its first
   attempt (``REPRO_TEST_CRASH_ONCE_DIR`` makes it a transient crash).
   The sweep must exit 0, report at least one retry, and complete every
   cell.
2. **Restore pass** — a checkpointing sweep (``--checkpoint-interval``)
   whose long cell is SIGKILLed *mid-simulation* after N fired events
   (``REPRO_TEST_CRASH_MODE=midrun``).  The retry must resume from the
   cell's durable checkpoint (the ledger journals ``restored_from=``)
   and every cell's cached ``RunResult`` document must be byte-identical
   to an uninterrupted reference sweep of the same grid.
3. **Poison pass** (``--poison``) — a second sweep adds a cell that
   crashes on *every* attempt.  The sweep must exit 1, quarantine
   exactly that cell, and still complete the rest.
4. **Resume pass** — re-invoking with ``--resume`` must execute **zero**
   new simulations: everything is served from the ledger + result cache.

``REPRO_SWEEP_FORCE_SPAWN=1`` keeps the process pool even on a 1-CPU
runner — the chaos hooks fire inside spawned workers, so the process
boundary is the thing under test.  Exit 0 on success, 1 with a
diagnostic otherwise.

Usage::

    PYTHONPATH=src python tools/check_sweep_chaos.py
    PYTHONPATH=src python tools/check_sweep_chaos.py --poison --days 0.02
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

#: The summary line ``repro-sim sweep`` always prints.
_EXECUTED_RE = re.compile(r"executed (\d+) new simulation run\(s\)")
_RETRIES_RE = re.compile(r"retries spent: (\d+)")
_QUARANTINED_RE = re.compile(r"quarantined (\d+)")


def _run_sweep(
    cli_args: List[str], env: dict, label: str
) -> "subprocess.CompletedProcess[str]":
    command = [sys.executable, "-m", "repro.cli", "sweep"] + cli_args
    print(f"[sweep-chaos] {label}: {' '.join(command)}", flush=True)
    proc = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=1800
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return proc


def _cache_documents(root: Path) -> dict:
    """Relative path -> raw bytes for every cached RunResult document."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.glob("*/*.json"))
    }


def _check_restore_pass(
    base: Path, env: dict, args: argparse.Namespace, failures: List[str]
) -> None:
    """Midrun-kill + checkpoint-restore gate (pass 2).

    A reference sweep and a midrun-killed sweep run the same grid into
    separate caches; resumed cells must leave byte-identical cached
    documents, and the killed sweep's ledger must journal the restore.
    """
    common = [
        "--days", f"{args.days:g}",
        "--policies", args.policies,
        "--seeds", "0",
        "--jobs", "2",
        "--retries", "2",
        "--backoff-base", "0.1",
        "--run-timeout", "600",
    ]
    env_ref = dict(env)
    for name in (
        "REPRO_TEST_CRASH_SPEC",
        "REPRO_TEST_CRASH_MODE",
        "REPRO_TEST_CRASH_ONCE_DIR",
        "REPRO_TEST_CRASH_EVENT",
    ):
        env_ref.pop(name, None)
    reference = _run_sweep(
        common
        + [
            "--out", str(base / "ref"),
            "--cache-dir", str(base / "ref-cache"),
        ],
        env_ref,
        "restore pass (reference)",
    )
    if reference.returncode != 0:
        failures.append(
            f"restore reference sweep exited {reference.returncode}"
        )
        return

    env_midrun = dict(env_ref)
    env_midrun["REPRO_TEST_CRASH_SPEC"] = args.restore_cell
    env_midrun["REPRO_TEST_CRASH_MODE"] = "midrun"
    env_midrun["REPRO_TEST_CRASH_EVENT"] = str(args.crash_event)
    env_midrun["REPRO_TEST_CRASH_ONCE_DIR"] = str(base / "midrun-once")
    midrun = _run_sweep(
        common
        + [
            "--checkpoint-interval", str(args.checkpoint_interval),
            "--out", str(base / "restore"),
            "--cache-dir", str(base / "restore-cache"),
        ],
        env_midrun,
        "restore pass (midrun kill)",
    )
    if midrun.returncode != 0:
        failures.append(
            f"midrun-kill sweep exited {midrun.returncode}; expected 0 "
            "(the killed worker should have restored and finished)"
        )
        return
    if _summary_int(_RETRIES_RE, midrun.stdout) < 1:
        failures.append(
            "midrun-kill sweep spent no retries — the injected kill "
            f"never fired for {args.restore_cell!r}"
        )
    ledger_text = (base / "restore" / "ledger.jsonl").read_text()
    if "restored_from=" not in ledger_text:
        failures.append(
            "midrun-kill sweep's ledger never journalled "
            "'restored_from=' — the retry ran from scratch instead of "
            "resuming the cell's checkpoint"
        )
    reference_docs = _cache_documents(base / "ref-cache")
    restored_docs = _cache_documents(base / "restore-cache")
    if set(reference_docs) != set(restored_docs):
        failures.append(
            "restore pass cached a different cell set than the "
            f"reference ({sorted(restored_docs)} vs "
            f"{sorted(reference_docs)})"
        )
        return
    for rel_path, payload in reference_docs.items():
        if restored_docs[rel_path] != payload:
            failures.append(
                f"cached document {rel_path} differs between the "
                "resumed and uninterrupted sweeps — restore is not "
                "byte-identical"
            )


def _summary_int(pattern: "re.Pattern[str]", output: str) -> int:
    match = pattern.search(output)
    if match is None:
        raise AssertionError(
            f"sweep output lacks the summary field {pattern.pattern!r}"
        )
    return int(match.group(1))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=float, default=0.02, help="trace length")
    parser.add_argument(
        "--policies", default="fifo,coda",
        help="grid policies (default: fifo,coda)",
    )
    parser.add_argument(
        "--crash-cell", default="fifo:s0", metavar="LABEL",
        help="cell whose worker is SIGKILLed once (default: fifo:s0)",
    )
    parser.add_argument(
        "--restore-cell", default="coda:s0", metavar="LABEL",
        help="cell SIGKILLed mid-simulation in the restore pass "
        "(default: coda:s0 — the long cell)",
    )
    parser.add_argument(
        "--crash-event", type=int, default=150,
        help="fired-event count at which the midrun kill lands "
        "(default: 150)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=60,
        help="checkpoint cadence (events) for the restore pass "
        "(default: 60)",
    )
    parser.add_argument(
        "--skip-restore", action="store_true",
        help="skip the midrun-kill + checkpoint-restore pass",
    )
    parser.add_argument(
        "--poison", action="store_true",
        help="also run the poison-cell pass (crashes every attempt; "
        "must be quarantined)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-sweep-chaos-") as root:
        base = Path(root)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path("src").resolve())]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env["REPRO_SWEEP_FORCE_SPAWN"] = "1"
        env["REPRO_TEST_CRASH_SPEC"] = args.crash_cell
        env["REPRO_TEST_CRASH_MODE"] = "kill"
        env["REPRO_TEST_CRASH_ONCE_DIR"] = str(base / "once")
        common = [
            "--days", f"{args.days:g}",
            "--policies", args.policies,
            "--seeds", "0",
            "--jobs", "2",
            "--retries", "2",
            "--backoff-base", "0.1",
            "--run-timeout", "600",
            "--cache-dir", str(base / "cache"),
        ]

        chaos = _run_sweep(
            common + ["--out", str(base / "sweep")], env, "chaos pass"
        )
        if chaos.returncode != 0:
            failures.append(
                f"chaos pass exited {chaos.returncode}; expected 0 "
                "(the crashed worker should have been retried)"
            )
        else:
            if _summary_int(_RETRIES_RE, chaos.stdout) < 1:
                failures.append(
                    "chaos pass spent no retries — the injected crash "
                    f"never fired for {args.crash_cell!r}"
                )
            if _summary_int(_QUARANTINED_RE, chaos.stdout) != 0:
                failures.append("chaos pass quarantined a cell; expected none")

        if not args.skip_restore and not failures:
            _check_restore_pass(base, env, args, failures)

        if args.poison and not failures:
            env_poison = dict(env)
            # No once-dir: the poison cell dies on *every* attempt.  A
            # fresh cache keeps all cells pending so the spawn path (and
            # its quarantine machinery) is what executes them.
            env_poison["REPRO_TEST_CRASH_SPEC"] = "drf:s0"
            del env_poison["REPRO_TEST_CRASH_ONCE_DIR"]
            poison = _run_sweep(
                [
                    "--days", f"{args.days:g}",
                    "--policies", args.policies + ",drf",
                    "--seeds", "0",
                    "--jobs", "2",
                    "--retries", "1",
                    "--backoff-base", "0.1",
                    "--run-timeout", "600",
                    "--cache-dir", str(base / "poison-cache"),
                    "--out", str(base / "poison"),
                ],
                env_poison,
                "poison pass",
            )
            if poison.returncode != 1:
                failures.append(
                    f"poison pass exited {poison.returncode}; expected 1 "
                    "(the poison cell must be quarantined)"
                )
            elif _summary_int(_QUARANTINED_RE, poison.stdout) != 1:
                failures.append(
                    "poison pass quarantined "
                    f"{_summary_int(_QUARANTINED_RE, poison.stdout)} "
                    "cell(s); expected exactly the poison cell"
                )

        if not failures:
            resume = _run_sweep(
                ["--resume", str(base / "sweep")]
                + ["--cache-dir", str(base / "cache")],
                env,
                "resume pass",
            )
            if resume.returncode != 0:
                failures.append(f"resume pass exited {resume.returncode}")
            elif _summary_int(_EXECUTED_RE, resume.stdout) != 0:
                failures.append(
                    "resume executed "
                    f"{_summary_int(_EXECUTED_RE, resume.stdout)} "
                    "simulation(s); a completed sweep must resume to a no-op"
                )

    if failures:
        for failure in failures:
            print(f"[sweep-chaos] FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "[sweep-chaos] OK: crash retried, checkpoint restore "
        "byte-identical, resume was a no-op"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
