"""CI gate: a sweep must survive injected worker failures and resume to
a no-op.

Drives ``repro-sim sweep`` as a subprocess (the real user surface) with
chaos injection armed through the ``REPRO_TEST_*`` environment hooks:

1. **Chaos pass** — one grid cell's worker is SIGKILLed on its first
   attempt (``REPRO_TEST_CRASH_ONCE_DIR`` makes it a transient crash).
   The sweep must exit 0, report at least one retry, and complete every
   cell.
2. **Poison pass** (``--poison``) — a second sweep adds a cell that
   crashes on *every* attempt.  The sweep must exit 1, quarantine
   exactly that cell, and still complete the rest.
3. **Resume pass** — re-invoking with ``--resume`` must execute **zero**
   new simulations: everything is served from the ledger + result cache.

``REPRO_SWEEP_FORCE_SPAWN=1`` keeps the process pool even on a 1-CPU
runner — the chaos hooks fire inside spawned workers, so the process
boundary is the thing under test.  Exit 0 on success, 1 with a
diagnostic otherwise.

Usage::

    PYTHONPATH=src python tools/check_sweep_chaos.py
    PYTHONPATH=src python tools/check_sweep_chaos.py --poison --days 0.02
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

#: The summary line ``repro-sim sweep`` always prints.
_EXECUTED_RE = re.compile(r"executed (\d+) new simulation run\(s\)")
_RETRIES_RE = re.compile(r"retries spent: (\d+)")
_QUARANTINED_RE = re.compile(r"quarantined (\d+)")


def _run_sweep(
    cli_args: List[str], env: dict, label: str
) -> "subprocess.CompletedProcess[str]":
    command = [sys.executable, "-m", "repro.cli", "sweep"] + cli_args
    print(f"[sweep-chaos] {label}: {' '.join(command)}", flush=True)
    proc = subprocess.run(
        command, env=env, capture_output=True, text=True, timeout=1800
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return proc


def _summary_int(pattern: "re.Pattern[str]", output: str) -> int:
    match = pattern.search(output)
    if match is None:
        raise AssertionError(
            f"sweep output lacks the summary field {pattern.pattern!r}"
        )
    return int(match.group(1))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=float, default=0.02, help="trace length")
    parser.add_argument(
        "--policies", default="fifo,coda",
        help="grid policies (default: fifo,coda)",
    )
    parser.add_argument(
        "--crash-cell", default="fifo:s0", metavar="LABEL",
        help="cell whose worker is SIGKILLed once (default: fifo:s0)",
    )
    parser.add_argument(
        "--poison", action="store_true",
        help="also run the poison-cell pass (crashes every attempt; "
        "must be quarantined)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-sweep-chaos-") as root:
        base = Path(root)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path("src").resolve())]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env["REPRO_SWEEP_FORCE_SPAWN"] = "1"
        env["REPRO_TEST_CRASH_SPEC"] = args.crash_cell
        env["REPRO_TEST_CRASH_MODE"] = "kill"
        env["REPRO_TEST_CRASH_ONCE_DIR"] = str(base / "once")
        common = [
            "--days", f"{args.days:g}",
            "--policies", args.policies,
            "--seeds", "0",
            "--jobs", "2",
            "--retries", "2",
            "--backoff-base", "0.1",
            "--run-timeout", "600",
            "--cache-dir", str(base / "cache"),
        ]

        chaos = _run_sweep(
            common + ["--out", str(base / "sweep")], env, "chaos pass"
        )
        if chaos.returncode != 0:
            failures.append(
                f"chaos pass exited {chaos.returncode}; expected 0 "
                "(the crashed worker should have been retried)"
            )
        else:
            if _summary_int(_RETRIES_RE, chaos.stdout) < 1:
                failures.append(
                    "chaos pass spent no retries — the injected crash "
                    f"never fired for {args.crash_cell!r}"
                )
            if _summary_int(_QUARANTINED_RE, chaos.stdout) != 0:
                failures.append("chaos pass quarantined a cell; expected none")

        if args.poison and not failures:
            env_poison = dict(env)
            # No once-dir: the poison cell dies on *every* attempt.  A
            # fresh cache keeps all cells pending so the spawn path (and
            # its quarantine machinery) is what executes them.
            env_poison["REPRO_TEST_CRASH_SPEC"] = "drf:s0"
            del env_poison["REPRO_TEST_CRASH_ONCE_DIR"]
            poison = _run_sweep(
                [
                    "--days", f"{args.days:g}",
                    "--policies", args.policies + ",drf",
                    "--seeds", "0",
                    "--jobs", "2",
                    "--retries", "1",
                    "--backoff-base", "0.1",
                    "--run-timeout", "600",
                    "--cache-dir", str(base / "poison-cache"),
                    "--out", str(base / "poison"),
                ],
                env_poison,
                "poison pass",
            )
            if poison.returncode != 1:
                failures.append(
                    f"poison pass exited {poison.returncode}; expected 1 "
                    "(the poison cell must be quarantined)"
                )
            elif _summary_int(_QUARANTINED_RE, poison.stdout) != 1:
                failures.append(
                    "poison pass quarantined "
                    f"{_summary_int(_QUARANTINED_RE, poison.stdout)} "
                    "cell(s); expected exactly the poison cell"
                )

        if not failures:
            resume = _run_sweep(
                ["--resume", str(base / "sweep")]
                + ["--cache-dir", str(base / "cache")],
                env,
                "resume pass",
            )
            if resume.returncode != 0:
                failures.append(f"resume pass exited {resume.returncode}")
            elif _summary_int(_EXECUTED_RE, resume.stdout) != 0:
                failures.append(
                    "resume executed "
                    f"{_summary_int(_EXECUTED_RE, resume.stdout)} "
                    "simulation(s); a completed sweep must resume to a no-op"
                )

    if failures:
        for failure in failures:
            print(f"[sweep-chaos] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[sweep-chaos] OK: crash retried, resume was a no-op")
    return 0


if __name__ == "__main__":
    sys.exit(main())
