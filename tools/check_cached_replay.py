"""CI gate: the result cache must actually replay.

Runs the three-policy comparison twice against a scratch cache directory.
The first pass simulates and stores; the second must be served entirely
from the cache — at least one hit, zero misses, byte-identical results —
and finish in well under the cold wall time.  Exit 0 on success, 1 with a
diagnostic otherwise.

This is a harness that *measures* the host clock on purpose, like the
benchmark suite; the simulator itself stays wall-clock-free (CL001).

Usage::

    PYTHONPATH=src python tools/check_cached_replay.py
    PYTHONPATH=src python tools/check_cached_replay.py --days 0.1 --max-warm-fraction 0.1
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=float, default=0.05, help="trace length")
    parser.add_argument("--seed", type=int, default=1, help="trace seed")
    parser.add_argument(
        "--max-warm-fraction", type=float, default=0.25, metavar="F",
        help="warm wall time must be below F x cold wall time "
        "(default: 0.25)",
    )
    args = parser.parse_args(argv)

    from repro.experiments.scenarios import run_comparison, small_scenario
    from repro.metrics.serialize import run_result_to_dict
    from repro.parallel import ResultCache, SimPool

    scenario = small_scenario(duration_days=args.days, seed=args.seed)
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as root:
        cold_pool = SimPool(cache=ResultCache(root))
        start = time.perf_counter()  # codalint: disable=CL001
        cold = run_comparison(scenario, executor=cold_pool.map)
        cold_s = time.perf_counter() - start  # codalint: disable=CL001

        warm_pool = SimPool(cache=ResultCache(root))
        start = time.perf_counter()  # codalint: disable=CL001
        warm = run_comparison(scenario, executor=warm_pool.map)
        warm_s = time.perf_counter() - start  # codalint: disable=CL001

    print(
        f"[cached-replay] cold {cold_s:.2f}s ({cold_pool.stats.render()}); "
        f"warm {warm_s:.2f}s ({warm_pool.stats.render()})"
    )
    failures = []
    if warm_pool.stats.hits < 1:
        failures.append("warm run had no cache hits")
    if warm_pool.stats.misses != 0:
        failures.append(f"warm run missed {warm_pool.stats.misses} time(s)")
    for name in cold:
        if json.dumps(run_result_to_dict(cold[name]), sort_keys=True) != json.dumps(
            run_result_to_dict(warm[name]), sort_keys=True
        ):
            failures.append(f"cached {name} result differs from cold run")
    if warm_s >= cold_s * args.max_warm_fraction:
        failures.append(
            f"warm run took {warm_s / cold_s:.1%} of cold "
            f"(limit {args.max_warm_fraction:.0%})"
        )
    for failure in failures:
        print(f"[cached-replay] FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("[cached-replay] cache replay gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
