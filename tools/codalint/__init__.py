"""codalint — simulator-specific static analysis.

A small AST lint pass encoding the determinism and resource-safety rules
this reproduction depends on (see ``docs/static-analysis.md``).  Generic
style belongs to ruff; codalint checks the things a generic linter cannot
know about a discrete-event simulator:

* wall-clock time would silently break replay (CL001);
* process-global randomness bypasses the seeded stream registry (CL002);
* set iteration order is salted per process and must never feed event
  scheduling or tie-breaking (CL003);
* swallowed exceptions hide corrupted resource bookkeeping (CL004);
* mutable default arguments alias state across calls (CL005);
* float accumulation into integer resource counters drifts (CL006).

Run as ``python -m tools.codalint src/``.
"""

from tools.codalint.checker import check_file, check_paths, check_source
from tools.codalint.rules import ALL_RULES, Rule, Violation

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "check_file",
    "check_paths",
    "check_source",
]
