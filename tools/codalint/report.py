"""Output formats and the baseline mechanism, shared by CLxxx and EFxxx.

SARIF (2.1.0, minimal subset) lets CI annotate PR diffs instead of
printing walls of text; the baseline file lets a repo adopt a rule with
existing findings by freezing them (``--update-baseline``) and failing
only on *new* ones (``--baseline``).

Baseline entries are keyed ``(path, code, message)`` — deliberately not
on line numbers, so unrelated edits that shift a known finding up or
down the file do not resurrect it.  Two identical findings in one file
are matched by count: three known, four found → one new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from tools.codalint.rules import KNOWN_RULES_BY_CODE, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]


def _baseline_key(violation: Violation) -> BaselineKey:
    return (violation.path, violation.code, violation.message)


def render_text(violations: Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    if violations:
        lines.append(f"codalint: {len(violations)} violation(s)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
    )


def render_sarif(violations: Sequence[Violation]) -> str:
    """Minimal SARIF 2.1.0 document for CI code-scanning upload."""
    used_codes = sorted({violation.code for violation in violations})
    rules = []
    for code in used_codes:
        rule = KNOWN_RULES_BY_CODE.get(code)
        descriptor: Dict[str, object] = {"id": code}
        if rule is not None:
            descriptor["shortDescription"] = {"text": rule.summary}
            descriptor["fullDescription"] = {"text": rule.rationale}
        else:  # CL000 syntax errors have no catalogue entry
            descriptor["shortDescription"] = {"text": "syntax error"}
        rules.append(descriptor)
    rule_index = {code: i for i, code in enumerate(used_codes)}

    results = []
    for violation in violations:
        result: Dict[str, object] = {
            "ruleId": violation.code,
            "ruleIndex": rule_index[violation.code],
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(violation.path).as_posix(),
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": max(violation.col, 0) + 1,
                        },
                    }
                }
            ],
        }
        if violation.symbol:
            result["properties"] = {"symbol": violation.symbol}
        results.append(result)

    document = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "codalint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


# --------------------------------------------------------------------- #
# Baseline


class BaselineError(ValueError):
    """Raised for an unreadable or malformed baseline file."""


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    entries = sorted(
        (
            {"path": v.path, "code": v.code, "message": v.message}
            for v in violations
        ),
        key=lambda e: (e["path"], e["code"], e["message"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> Counter:
    """Baseline as a multiset of (path, code, message) keys."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"malformed baseline {path}: {error}") from error
    if not isinstance(raw, dict) or "findings" not in raw:
        raise BaselineError(
            f"malformed baseline {path}: expected {{version, findings}}"
        )
    known: Counter = Counter()
    for entry in raw["findings"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"malformed baseline entry in {path}")
        try:
            key = (
                str(entry["path"]),
                str(entry["code"]),
                str(entry["message"]),
            )
        except KeyError as error:
            raise BaselineError(
                f"baseline entry missing {error} in {path}"
            ) from error
        known[key] += 1
    return known


def apply_baseline(
    violations: Sequence[Violation], known: Counter
) -> Tuple[List[Violation], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    budget = Counter(known)
    fresh: List[Violation] = []
    suppressed = 0
    for violation in violations:
        key = _baseline_key(violation)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed
