"""EF001–EF004: contract checks over the interprocedural effect analysis.

Each rule consumes the whole-program :class:`~tools.codalint.effects.
EffectAnalysis` plus the declared :class:`~tools.codalint.contracts.
Contracts` and emits :class:`~tools.codalint.rules.Violation` records
anchored at the blamed function's ``def`` line (so the existing
``# codalint: disable=EFxxx`` suppression comments work unchanged).

Blame placement is deliberate.  EF001 blames the *direct writer* of a
tracked attribute, not every transitive caller: when ``Node.allocate``
forgets its ``bump()``, the fix belongs in ``Node.allocate``, and a
mutation that deletes one bump call must light up exactly one function.
For classes that have no path to the counter at all (``blame =
"caller"``, e.g. ``Gpu``), the class's own mutators are exempt and each
*direct caller* of a mutating method carries the obligation instead.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.codalint.callgraph import Program, build_program
from tools.codalint.checker import _Suppressions
from tools.codalint.contracts import Contracts
from tools.codalint.effects import EffectAnalysis
from tools.codalint.rules import Violation

#: Attribute names that look like memoized state (EF002 detection).
CACHE_NAME_RE = re.compile(r"(^|_)(cache[sd]?|memo(ized|s)?)($|_)", re.I)

#: Decorators that create function-level caches (EF002 detection).
CACHE_DECORATORS = {
    "lru_cache",
    "functools.lru_cache",
    "cache",
    "functools.cache",
    "cached_property",
    "functools.cached_property",
}

_CONSTRUCTORS = ("__init__", "__post_init__", "__new__")


def _is_constructor_of(
    program: Program, func_id: str, class_name: str
) -> bool:
    info = program.functions[func_id]
    if info.name not in _CONSTRUCTORS or info.class_id is None:
        return False
    cls = program.classes.get(info.class_id)
    return cls is not None and cls.name == class_name


def _is_method_of(program: Program, func_id: str, class_name: str) -> bool:
    info = program.functions[func_id]
    if info.class_id is None:
        return False
    cls = program.classes.get(info.class_id)
    return cls is not None and cls.name == class_name


def _violation(
    program: Program, func_id: str, code: str, message: str
) -> Violation:
    info = program.functions[func_id]
    return Violation(
        path=str(info.path),
        line=info.lineno,
        col=0,
        code=code,
        message=message,
        symbol=func_id,
    )


def _resolve_all(
    program: Program, names: Iterable[str]
) -> Tuple[Set[str], List[str]]:
    """Resolve contract function references; collect unresolvable ones."""
    resolved: Set[str] = set()
    missing: List[str] = []
    for name in names:
        found = program.resolve_qualname(name)
        if found:
            resolved |= found
        else:
            missing.append(name)
    return resolved, missing


# --------------------------------------------------------------------- #
# EF001 — tracked writes must reach the invalidation hook


def check_ef001(
    program: Program, analysis: EffectAnalysis, contracts: Contracts
) -> List[Violation]:
    violations: List[Violation] = []
    hooks, missing = _resolve_all(program, contracts.hooks)
    for name in missing:
        violations.append(
            Violation(
                path=contracts.path or "contracts.toml",
                line=1,
                col=0,
                code="EF001",
                message=f"declared hook {name!r} not found in program",
            )
        )
    if not hooks:
        return violations
    reaching = analysis.functions_reaching(hooks)
    tracked = contracts.tracked_attrs()

    # Pass 1: writer-blame, and collect caller-blame mutators.
    caller_blamed: Dict[str, Set[str]] = {}  # mutator func -> attrs touched
    for func_id, effects in sorted(analysis.effects.items()):
        for class_name, attr in sorted(effects.writes):
            entry = tracked.get((class_name, attr))
            if entry is None:
                continue
            if _is_constructor_of(program, func_id, class_name):
                continue  # constructing the object that owns the counter
            if entry.blame == "caller":
                if _is_method_of(program, func_id, class_name):
                    caller_blamed.setdefault(func_id, set()).add(
                        f"{class_name}.{attr}"
                    )
                    continue
                # Writes from outside the class are ordinary writer-blame.
            if func_id not in reaching:
                violations.append(
                    _violation(
                        program,
                        func_id,
                        "EF001",
                        f"writes tracked state {class_name}.{attr} but "
                        "never (transitively) calls the invalidation "
                        f"hook ({', '.join(sorted(contracts.hooks))})",
                    )
                )

    # Pass 2: each direct caller of a caller-blame mutator must reach
    # the hook (unless it is itself a method of the same class, in which
    # case its own callers inherit the obligation via pass 2 again —
    # handled by walking up through same-class frames).
    seen: Set[Tuple[str, str]] = set()
    for mutator, attrs in sorted(caller_blamed.items()):
        class_name = mutator and attrs and sorted(attrs)[0].split(".")[0]
        frontier = sorted(analysis.callers.get(mutator, ()))
        visited: Set[str] = {mutator}
        while frontier:
            caller = frontier.pop()
            if caller in visited:
                continue
            visited.add(caller)
            if _is_method_of(program, caller, class_name) or (
                _is_constructor_of(program, caller, class_name)
            ):
                frontier.extend(sorted(analysis.callers.get(caller, ())))
                continue
            if caller in reaching:
                continue
            key = (caller, ",".join(sorted(attrs)))
            if key in seen:
                continue
            seen.add(key)
            violations.append(
                _violation(
                    program,
                    caller,
                    "EF001",
                    f"calls {program.functions[mutator].short_qualname} "
                    f"which mutates tracked state "
                    f"({', '.join(sorted(attrs))}) but never "
                    "(transitively) calls the invalidation hook "
                    f"({', '.join(sorted(contracts.hooks))})",
                )
            )
    return _root_cause_only(analysis, violations)


def _root_cause_only(
    analysis: EffectAnalysis, violations: List[Violation]
) -> List[Violation]:
    """Keep only root-cause EF001 findings.

    When ``Node.release`` loses its bump, ``Cluster.release`` (which
    writes ``_allocations`` and relied on that bump transitively) also
    stops reaching the hook.  Both findings are true, but the fix lives
    in one place; reporting the callee alone keeps the signal at one
    finding per missing bump (fixing it re-exposes any caller that is
    independently broken).  A caller's finding is dropped iff another
    flagged function is forward-reachable from it; cycles keep their
    lexicographically-first member so a mutually-recursive pair cannot
    suppress itself into silence.
    """
    flagged = {v.symbol for v in violations if v.symbol}
    if len(flagged) <= 1:
        return violations
    keep: List[Violation] = []
    for violation in violations:
        func_id = violation.symbol
        if not func_id:
            keep.append(violation)
            continue
        downstream = analysis.reachable_from([func_id]) - {func_id}
        culprits = downstream & flagged
        suppress = False
        for other in culprits:
            back = analysis.reachable_from([other])
            if func_id not in back or other < func_id:
                suppress = True
                break
        if not suppress:
            keep.append(violation)
    return keep


# --------------------------------------------------------------------- #
# EF002 — every detected cache needs a contract


def check_ef002(
    program: Program, analysis: EffectAnalysis, contracts: Contracts
) -> List[Violation]:
    violations: List[Violation] = []

    # Attribute caches: cache-looking attrs that something writes.
    first_writer: Dict[Tuple[str, str], str] = {}
    for func_id in sorted(analysis.effects):
        for pair in sorted(analysis.effects[func_id].writes):
            if CACHE_NAME_RE.search(pair[1]):
                first_writer.setdefault(pair, func_id)
    for (class_name, attr), func_id in sorted(first_writer.items()):
        if contracts.cache_declared(class_name, attr):
            continue
        violations.append(
            _violation(
                program,
                func_id,
                "EF002",
                f"memo/cache attribute {class_name}.{attr} has no "
                "[[cache]] contract in contracts.toml (declare owner, "
                "attr, and what invalidates it)",
            )
        )

    # Decorator caches: lru_cache / cache / cached_property functions.
    for func_id in sorted(program.functions):
        info = program.functions[func_id]
        decorated = set(info.decorators) & CACHE_DECORATORS
        if not decorated:
            continue
        if contracts.cache_function_declared(func_id):
            continue
        violations.append(
            _violation(
                program,
                func_id,
                "EF002",
                f"function {info.short_qualname} is cached via "
                f"@{sorted(decorated)[0]} but has no [[cache]] contract "
                "in contracts.toml",
            )
        )
    return violations


# --------------------------------------------------------------------- #
# EF003 — observer closure must not write read-only state


def check_ef003(
    program: Program, analysis: EffectAnalysis, contracts: Contracts
) -> List[Violation]:
    violations: List[Violation] = []
    roots, missing = _resolve_all(program, contracts.observer_roots)
    for name in missing:
        violations.append(
            Violation(
                path=contracts.path or "contracts.toml",
                line=1,
                col=0,
                code="EF003",
                message=f"declared observer root {name!r} not found",
            )
        )
    readonly = contracts.readonly_attrs()
    if not roots or not readonly:
        return violations
    root_names = sorted(
        program.functions[r].short_qualname for r in roots
    )
    for func_id in sorted(analysis.reachable_from(roots)):
        effects = analysis.effects[func_id]
        for class_name, attr in sorted(effects.writes):
            if (class_name, attr) not in readonly:
                continue
            violations.append(
                _violation(
                    program,
                    func_id,
                    "EF003",
                    f"writes {class_name}.{attr} (declared read-only for "
                    "observers) while reachable from observer root(s) "
                    f"{', '.join(root_names)}",
                )
            )
    return violations


# --------------------------------------------------------------------- #
# EF004 — cross-thread shared attrs need declared ownership


def check_ef004(
    program: Program, analysis: EffectAnalysis, contracts: Contracts
) -> List[Violation]:
    violations: List[Violation] = []
    declared = contracts.shared_attrs()
    for spawner_id in sorted(analysis.effects):
        spawner = analysis.effects[spawner_id]
        if not spawner.thread_targets:
            continue
        closure = analysis.reachable_from(spawner.thread_targets)
        thread_writes: Set[Tuple[str, str]] = set()
        for func_id in closure:
            thread_writes |= analysis.effects[func_id].writes
        if not thread_writes:
            continue
        # Attributes the rest of the program (outside the thread body)
        # also touches are shared mutable state.
        shared_hits: Dict[Tuple[str, str], str] = {}
        for func_id, effects in analysis.effects.items():
            if func_id in closure:
                continue
            touched = (effects.reads | effects.writes) & thread_writes
            for pair in touched:
                shared_hits.setdefault(pair, func_id)
        targets = sorted(
            program.functions[t].short_qualname
            for t in spawner.thread_targets
            if t in program.functions
        )
        for pair, other in sorted(shared_hits.items()):
            if pair in declared:
                continue
            class_name, attr = pair
            violations.append(
                _violation(
                    program,
                    spawner_id,
                    "EF004",
                    f"{class_name}.{attr} is written by thread target "
                    f"{', '.join(targets)} and touched by "
                    f"{program.functions[other].short_qualname} on "
                    "another thread, but has no [[shared]] ownership "
                    "entry in contracts.toml",
                )
            )
    return violations


# --------------------------------------------------------------------- #
# Driver

_CHECKS = {
    "EF001": check_ef001,
    "EF002": check_ef002,
    "EF003": check_ef003,
    "EF004": check_ef004,
}


def _apply_suppressions(
    violations: List[Violation],
) -> List[Violation]:
    """Honour ``# codalint: disable=EFxxx`` comments at the def line."""
    sources: Dict[str, Optional[_Suppressions]] = {}
    kept: List[Violation] = []
    for violation in violations:
        if violation.path not in sources:
            try:
                text = Path(violation.path).read_text(encoding="utf-8")
                sources[violation.path] = _Suppressions(text)
            except OSError:
                sources[violation.path] = None
        suppressions = sources[violation.path]
        if suppressions is not None and suppressions.active(
            violation.line, violation.code
        ):
            continue
        kept.append(violation)
    return kept


def analyze_paths(
    paths: Sequence[object],
    contracts: Contracts,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Tuple[List[Violation], EffectAnalysis]:
    """Run the effect analysis and all EF rules over ``paths``."""
    program = build_program(paths)
    analysis = EffectAnalysis(program).run()
    selected = {code.upper() for code in select} if select else None
    ignored = {code.upper() for code in ignore} if ignore else set()
    violations: List[Violation] = []
    for code, check in _CHECKS.items():
        if selected is not None and code not in selected:
            continue
        if code in ignored:
            continue
        violations.extend(check(program, analysis, contracts))
    violations = _apply_suppressions(violations)
    violations.sort(key=lambda v: (v.path, v.line, v.code, v.message))
    return violations, analysis


def effects_dump(analysis: EffectAnalysis) -> Dict[str, Dict[str, object]]:
    """Per-function effect table for ``--effects-dump`` (JSON-ready)."""
    return analysis.effects_table()


__all__ = [
    "analyze_paths",
    "check_ef001",
    "check_ef002",
    "check_ef003",
    "check_ef004",
    "effects_dump",
    "CACHE_DECORATORS",
    "CACHE_NAME_RE",
]
