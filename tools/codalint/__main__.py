"""``python -m tools.codalint`` entry point."""

import sys

from tools.codalint.cli import main

sys.exit(main())
