"""Invalidation-contract manifest (``contracts.toml``) loader.

The effect-analysis rules (EF001–EF004) are *contract checks*: the code
declares, in a TOML manifest at the repo root, which attributes are
generation-tracked, which caches exist and what invalidates them, which
attributes observers must treat as read-only, and which attributes may
legitimately be shared across threads.  The analysis then proves the
code against those declarations.

The manifest is parsed with :mod:`tomllib` where available (Python
3.11+).  CI also runs on 3.10, so a minimal fallback parser handles the
subset this schema actually uses: ``[table]`` headers, ``[[array of
tables]]`` headers, and ``key = value`` lines whose values are strings,
booleans, integers, or single-line arrays of strings.  Keep
``contracts.toml`` inside that subset.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None  # type: ignore[assignment]

DEFAULT_CONTRACTS_NAME = "contracts.toml"


class ContractError(ValueError):
    """Raised for a missing, unparseable, or malformed manifest."""


@dataclass(frozen=True)
class TrackedState:
    """One ``[[tracked]]`` entry: attrs whose writes require the hook.

    ``blame`` selects who EF001 holds responsible:

    * ``"writer"`` — the function that performs the write must itself
      transitively reach the hook (constructors of ``class_name`` are
      exempt: they build the object the counter belongs to).
    * ``"caller"`` — methods of ``class_name`` are exempt (the class has
      no path to the counter, e.g. ``Gpu``), and every *direct caller*
      of those mutating methods must reach the hook instead.
    """

    class_name: str
    attrs: Tuple[str, ...]
    blame: str = "writer"
    reason: str = ""


@dataclass(frozen=True)
class CacheContract:
    """One ``[[cache]]`` entry: a registered memo and its invalidation."""

    owner: str = ""  # class name for attribute caches
    attr: str = ""
    function: str = ""  # module:qualname for decorator caches
    invalidation: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.owner, self.attr, self.function)


@dataclass(frozen=True)
class ReadonlyState:
    """One ``[[readonly]]`` entry: attrs observers must not write."""

    class_name: str
    attrs: Tuple[str, ...]
    reason: str = ""


@dataclass(frozen=True)
class SharedState:
    """One ``[[shared]]`` entry: a declared cross-thread attribute."""

    class_name: str
    attrs: Tuple[str, ...]
    guard: str = ""


@dataclass(frozen=True)
class Contracts:
    """The parsed manifest."""

    path: str = ""
    hooks: Tuple[str, ...] = ()
    tracked: Tuple[TrackedState, ...] = ()
    caches: Tuple[CacheContract, ...] = ()
    observer_roots: Tuple[str, ...] = ()
    readonly: Tuple[ReadonlyState, ...] = ()
    shared: Tuple[SharedState, ...] = ()

    def tracked_attrs(self) -> Dict[Tuple[str, str], TrackedState]:
        """(class, attr) -> entry, for EF001 lookups."""
        table: Dict[Tuple[str, str], TrackedState] = {}
        for entry in self.tracked:
            for attr in entry.attrs:
                table[(entry.class_name, attr)] = entry
        return table

    def readonly_attrs(self) -> Dict[Tuple[str, str], ReadonlyState]:
        table: Dict[Tuple[str, str], ReadonlyState] = {}
        for entry in self.readonly:
            for attr in entry.attrs:
                table[(entry.class_name, attr)] = entry
        return table

    def shared_attrs(self) -> Dict[Tuple[str, str], SharedState]:
        table: Dict[Tuple[str, str], SharedState] = {}
        for entry in self.shared:
            for attr in entry.attrs:
                table[(entry.class_name, attr)] = entry
        return table

    def cache_declared(self, owner: str, attr: str) -> bool:
        return any(
            c.owner == owner and c.attr == attr for c in self.caches
        )

    def cache_function_declared(self, func_id: str) -> bool:
        """Match a declared function cache by id or bare qualname."""
        for contract in self.caches:
            if not contract.function:
                continue
            if contract.function == func_id:
                return True
            if ":" not in contract.function and func_id.endswith(
                ":" + contract.function
            ):
                return True
        return False


# --------------------------------------------------------------------- #
# Minimal TOML-subset parser (3.10 fallback)

_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_scalar(text: str, lineno: int) -> object:
    text = text.strip()
    if text.startswith('"'):
        match = _STRING_RE.match(text)
        if match is None or match.end() != len(text):
            raise ContractError(f"line {lineno}: malformed string: {text}")
        return match.group(1).replace('\\"', '"').replace("\\\\", "\\")
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ContractError(
            f"line {lineno}: unsupported value {text!r} "
            "(fallback parser: strings, bools, numbers, string arrays)"
        ) from None


def _parse_array(text: str, lineno: int) -> List[object]:
    inner = text.strip()[1:-1].strip()
    if not inner:
        return []
    items: List[object] = []
    # Split on commas outside quoted strings.
    part = ""
    in_string = False
    escaped = False
    for char in inner:
        if in_string:
            part += char
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == '"':
            in_string = True
            part += char
        elif char == ",":
            if part.strip():
                items.append(_parse_scalar(part, lineno))
            part = ""
        else:
            part += char
    if part.strip():
        items.append(_parse_scalar(part, lineno))
    return items


def _strip_comment(line: str) -> str:
    out = ""
    in_string = False
    escaped = False
    for char in line:
        if in_string:
            out += char
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == '"':
                in_string = False
            continue
        if char == "#":
            break
        if char == '"':
            in_string = True
        out += char
    return out


def parse_minimal_toml(text: str) -> Dict[str, object]:
    """Parse the TOML subset ``contracts.toml`` restricts itself to."""
    root: Dict[str, object] = {}
    current: Dict[str, object] = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ContractError(f"line {lineno}: malformed header {raw!r}")
            name = line[2:-2].strip()
            bucket = root.setdefault(name, [])
            if not isinstance(bucket, list):
                raise ContractError(
                    f"line {lineno}: {name!r} is both table and array"
                )
            current = {}
            bucket.append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise ContractError(f"line {lineno}: malformed header {raw!r}")
            name = line[1:-1].strip()
            table = root.setdefault(name, {})
            if not isinstance(table, dict):
                raise ContractError(
                    f"line {lineno}: {name!r} is both table and array"
                )
            current = table
        else:
            key, sep, value = line.partition("=")
            if not sep:
                raise ContractError(f"line {lineno}: expected key = value")
            key = key.strip()
            value = value.strip()
            if value.startswith("["):
                current[key] = _parse_array(value, lineno)
            else:
                current[key] = _parse_scalar(value, lineno)
    return root


# --------------------------------------------------------------------- #
# Manifest -> Contracts


def _str_list(raw: object, where: str) -> Tuple[str, ...]:
    if raw is None:
        return ()
    if not isinstance(raw, list) or not all(
        isinstance(item, str) for item in raw
    ):
        raise ContractError(f"{where} must be an array of strings")
    return tuple(raw)


def _class_attr_entries(raw: object, section: str) -> List[Dict[str, object]]:
    if raw is None:
        return []
    if not isinstance(raw, list):
        raise ContractError(f"[[{section}]] must be an array of tables")
    for entry in raw:
        if not isinstance(entry, dict):
            raise ContractError(f"[[{section}]] must be an array of tables")
    return raw


def contracts_from_mapping(data: Dict[str, object], path: str) -> Contracts:
    generation = data.get("generation") or {}
    if not isinstance(generation, dict):
        raise ContractError("[generation] must be a table")
    hooks = _str_list(generation.get("hooks"), "[generation] hooks")

    tracked = []
    for entry in _class_attr_entries(data.get("tracked"), "tracked"):
        blame = str(entry.get("blame", "writer"))
        if blame not in ("writer", "caller"):
            raise ContractError(
                f"[[tracked]] blame must be 'writer' or 'caller', got {blame!r}"
            )
        tracked.append(
            TrackedState(
                class_name=str(entry.get("class", "")),
                attrs=_str_list(entry.get("attrs"), "[[tracked]] attrs"),
                blame=blame,
                reason=str(entry.get("reason", "")),
            )
        )

    caches = []
    for entry in _class_attr_entries(data.get("cache"), "cache"):
        contract = CacheContract(
            owner=str(entry.get("owner", "")),
            attr=str(entry.get("attr", "")),
            function=str(entry.get("function", "")),
            invalidation=str(entry.get("invalidation", "")),
        )
        if not contract.invalidation:
            raise ContractError(
                "[[cache]] entries must document their 'invalidation'"
            )
        if not (contract.function or (contract.owner and contract.attr)):
            raise ContractError(
                "[[cache]] needs owner+attr (attribute cache) or "
                "function (decorator cache)"
            )
        caches.append(contract)

    observers = data.get("observers") or {}
    if not isinstance(observers, dict):
        raise ContractError("[observers] must be a table")
    roots = _str_list(observers.get("roots"), "[observers] roots")

    readonly = [
        ReadonlyState(
            class_name=str(entry.get("class", "")),
            attrs=_str_list(entry.get("attrs"), "[[readonly]] attrs"),
            reason=str(entry.get("reason", "")),
        )
        for entry in _class_attr_entries(data.get("readonly"), "readonly")
    ]
    shared = [
        SharedState(
            class_name=str(entry.get("class", "")),
            attrs=_str_list(entry.get("attrs"), "[[shared]] attrs"),
            guard=str(entry.get("guard", "")),
        )
        for entry in _class_attr_entries(data.get("shared"), "shared")
    ]
    return Contracts(
        path=path,
        hooks=hooks,
        tracked=tuple(tracked),
        caches=tuple(caches),
        observer_roots=roots,
        readonly=tuple(readonly),
        shared=tuple(shared),
    )


def load_contracts(path: Path) -> Contracts:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as error:
        raise ContractError(f"cannot read {path}: {error}") from error
    if tomllib is not None:
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ContractError(f"{path}: {error}") from error
    else:  # pragma: no cover - 3.10 fallback, tested directly
        data = parse_minimal_toml(text)
    return contracts_from_mapping(data, str(path))


def find_contracts_file(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` (default: cwd) looking for contracts.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in [current] + list(current.parents):
        manifest = candidate / DEFAULT_CONTRACTS_NAME
        if manifest.is_file():
            return manifest
    return None
