"""Rule registry and the violation record.

Every rule has a stable code (``CLxxx``), a one-line summary, and a longer
rationale rendered by ``--list-rules`` and mirrored in
``docs/static-analysis.md``.  The checker in :mod:`tools.codalint.checker`
emits :class:`Violation` records tagged with these codes; suppression
comments (``# codalint: disable=CL001`` or ``disable=all``) are matched
against them by code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code plus human-readable documentation."""

    code: str
    summary: str
    rationale: str


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what exactly was seen."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        code="CL001",
        summary="wall-clock time source",
        rationale=(
            "time.time()/datetime.now() and friends read the host clock; "
            "simulation code must read time from the engine's Clock so a "
            "replayed run is bit-identical regardless of the machine."
        ),
    ),
    Rule(
        code="CL002",
        summary="unseeded process-global randomness",
        rationale=(
            "random.random()/choice()/... draw from the interpreter-global "
            "generator whose state any import can perturb; all randomness "
            "must come from named repro.sim.rng.RngRegistry streams (or an "
            "explicitly seeded random.Random(seed))."
        ),
    ),
    Rule(
        code="CL003",
        summary="iteration over an unordered set",
        rationale=(
            "Set iteration order depends on per-process string-hash "
            "salting; feeding it into event scheduling or tie-breaking "
            "makes runs irreproducible.  Iterate sorted(the_set) instead "
            "(dicts are insertion-ordered and exempt)."
        ),
    ),
    Rule(
        code="CL004",
        summary="bare or overly-broad except clause",
        rationale=(
            "except:/except Exception: swallows the guarded resource "
            "errors (over-allocation, double release) this simulator "
            "raises on purpose; catch the narrow types you can handle."
        ),
    ),
    Rule(
        code="CL005",
        summary="mutable default argument",
        rationale=(
            "A list/dict/set default is evaluated once and shared across "
            "every call, silently coupling unrelated invocations; default "
            "to None (or a dataclass default_factory)."
        ),
    ),
    Rule(
        code="CL006",
        summary="float accumulation into an integer resource counter",
        rationale=(
            "Augmenting an int-annotated counter with a float-valued "
            "expression rebinds it to float; core/GPU counters must stay "
            "exact integers or conservation checks start failing on "
            "epsilon drift."
        ),
    ),
    Rule(
        code="CL007",
        summary="multiprocessing join without a timeout",
        rationale=(
            "Process.join()/Pool.join() with no timeout blocks forever "
            "when the child hangs or dies mid-handshake — precisely the "
            "failures the sweep supervisor exists to contain; pass an "
            "explicit timeout and handle the still-alive case."
        ),
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
