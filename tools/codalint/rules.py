"""Rule registry and the violation record.

Every rule has a stable code (``CLxxx``), a one-line summary, and a longer
rationale rendered by ``--list-rules`` and mirrored in
``docs/static-analysis.md``.  The checker in :mod:`tools.codalint.checker`
emits :class:`Violation` records tagged with these codes; suppression
comments (``# codalint: disable=CL001`` or ``disable=all``) are matched
against them by code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code plus human-readable documentation."""

    code: str
    summary: str
    rationale: str


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what exactly was seen.

    ``symbol`` is filled by the effect analysis (EFxxx) with the blamed
    function's ``module:qualname`` so tooling can key findings to a
    function rather than a line; the CLxxx passes leave it empty.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    symbol: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
        if self.symbol:
            record["symbol"] = self.symbol
        return record


ALL_RULES: Tuple[Rule, ...] = (
    Rule(
        code="CL001",
        summary="wall-clock time source",
        rationale=(
            "time.time()/datetime.now() and friends read the host clock; "
            "simulation code must read time from the engine's Clock so a "
            "replayed run is bit-identical regardless of the machine."
        ),
    ),
    Rule(
        code="CL002",
        summary="unseeded process-global randomness",
        rationale=(
            "random.random()/choice()/... draw from the interpreter-global "
            "generator whose state any import can perturb; all randomness "
            "must come from named repro.sim.rng.RngRegistry streams (or an "
            "explicitly seeded random.Random(seed))."
        ),
    ),
    Rule(
        code="CL003",
        summary="iteration over an unordered set",
        rationale=(
            "Set iteration order depends on per-process string-hash "
            "salting; feeding it into event scheduling or tie-breaking "
            "makes runs irreproducible.  Iterate sorted(the_set) instead "
            "(dicts are insertion-ordered and exempt)."
        ),
    ),
    Rule(
        code="CL004",
        summary="bare or overly-broad except clause",
        rationale=(
            "except:/except Exception: swallows the guarded resource "
            "errors (over-allocation, double release) this simulator "
            "raises on purpose; catch the narrow types you can handle."
        ),
    ),
    Rule(
        code="CL005",
        summary="mutable default argument",
        rationale=(
            "A list/dict/set default is evaluated once and shared across "
            "every call, silently coupling unrelated invocations; default "
            "to None (or a dataclass default_factory)."
        ),
    ),
    Rule(
        code="CL006",
        summary="float accumulation into an integer resource counter",
        rationale=(
            "Augmenting an int-annotated counter with a float-valued "
            "expression rebinds it to float; core/GPU counters must stay "
            "exact integers or conservation checks start failing on "
            "epsilon drift."
        ),
    ),
    Rule(
        code="CL007",
        summary="multiprocessing join without a timeout",
        rationale=(
            "Process.join()/Pool.join() with no timeout blocks forever "
            "when the child hangs or dies mid-handshake — precisely the "
            "failures the sweep supervisor exists to contain; pass an "
            "explicit timeout and handle the still-alive case."
        ),
    ),
)

#: Interprocedural effect-analysis rules (``--analyze``).  Kept separate
#: from :data:`ALL_RULES` because they are not per-file AST passes — they
#: need the whole-program call graph from :mod:`tools.codalint.effects`.
EFFECT_RULES: Tuple[Rule, ...] = (
    Rule(
        code="EF001",
        summary="generation-tracked state mutated without invalidation",
        rationale=(
            "Writing a tracked attribute (Node capacity fields, Cluster "
            "allocation maps, Gpu ownership) without transitively calling "
            "the declared generation.bump() hook leaves memoized snapshots "
            "(FreeState.of, best-fit orderings) stale, silently forking "
            "simulation results.  Declared in contracts.toml [[tracked]]."
        ),
    ),
    Rule(
        code="EF002",
        summary="memo/cache attribute without a registered contract",
        rationale=(
            "Every cache-looking attribute (*_cache, *memo*) or lru_cache "
            "function must carry a [[cache]] entry in contracts.toml "
            "documenting what invalidates it; an undeclared cache is an "
            "undeclared staleness bug waiting for the incremental-"
            "scheduler refactor."
        ),
    ),
    Rule(
        code="EF003",
        summary="observer writes sim state declared read-only",
        rationale=(
            "Functions reachable from Engine.run observer hooks (auditor, "
            "profiler, metrics) must stay effect-free on simulation state: "
            "an observer that mutates cluster state makes --audit runs "
            "diverge from unaudited ones.  Read-only attribute sets are "
            "declared in contracts.toml [[readonly]]."
        ),
    ),
    Rule(
        code="EF004",
        summary="cross-thread shared attribute without declared ownership",
        rationale=(
            "An attribute written inside a threading.Thread(target=...) "
            "body and touched by code outside it is shared mutable state; "
            "it must appear in contracts.toml [[shared]] with its lock or "
            "ownership story, or the heartbeat/main-thread split in the "
            "sweep supervisor rots into a data race."
        ),
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}

#: Every rule either front end can select/suppress, keyed by code.
ALL_KNOWN_RULES: Tuple[Rule, ...] = ALL_RULES + EFFECT_RULES
KNOWN_RULES_BY_CODE: Dict[str, Rule] = {
    rule.code: rule for rule in ALL_KNOWN_RULES
}
