"""The AST walk behind codalint.

One :class:`_FileChecker` per file, two passes:

1. a symbol pass records import aliases plus every name/attribute the file
   annotates or assigns as a ``set`` (for CL003) or annotates as ``int``
   (for CL006);
2. a rule pass walks the tree and emits :class:`~tools.codalint.rules.Violation`
   records.

The symbol table is file-global and keyed by spelling (``node_ids``,
``self._seen``), not scope-aware — for a lint pass over a codebase with
descriptive names that trade-off buys simplicity and has not produced a
false positive yet; ``# codalint: disable=...`` exists for when it does.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from tools.codalint.rules import KNOWN_RULES_BY_CODE, Violation

#: time-module members that read the host clock.
_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "ctime",
    "asctime",
}

#: datetime members (on the class, not the module) that read the host clock.
_DATETIME_FNS = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: random.Random methods/functions that are fine *only* on a seeded stream;
#: called on the module they draw from the process-global generator.
_RANDOM_SAFE = {"Random", "SystemRandom"}

#: builtins whose result does not depend on iteration order, so a set
#: argument (or a generator over a set) is harmless.
_ORDER_INSENSITIVE = {
    "sorted",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
}

#: builtins that freeze iteration order into a sequence.
_ORDER_FREEZING = {"list", "tuple"}

_SET_ANNOTATION = re.compile(
    r"^(typing\.)?(Set|FrozenSet|MutableSet|AbstractSet)\[|^(set|frozenset)(\[|$)"
)

_LINE_DISABLE = re.compile(r"#\s*codalint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_DISABLE = re.compile(r"#\s*codalint:\s*disable-file=([A-Za-z0-9_,\s]+)")

_MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}


def _parse_codes(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


class _Suppressions:
    """Per-line and per-file ``# codalint: disable`` comments."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _LINE_DISABLE.search(line)
            if match:
                self._by_line[lineno] = _parse_codes(match.group(1))
            match = _FILE_DISABLE.search(line)
            if match:
                self._file_wide |= _parse_codes(match.group(1))

    def active(self, line: int, code: str) -> bool:
        for codes in (self._file_wide, self._by_line.get(line, set())):
            if "ALL" in codes or code in codes:
                return True
        return False


class _SymbolPass(ast.NodeVisitor):
    """Collects import aliases and set-/int-typed symbol spellings."""

    def __init__(self) -> None:
        #: local name -> dotted module path, e.g. {"dt": "datetime"}.
        self.module_aliases: Dict[str, str] = {}
        #: local name -> dotted origin, e.g. {"choice": "random.choice"}.
        self.from_imports: Dict[str, str] = {}
        self.set_symbols: Set[str] = set()
        self.int_symbols: Set[str] = set()
        #: names bound to multiprocessing Process/Pool objects (CL007).
        self.process_symbols: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- annotations --------------------------------------------------- #

    def _record_annotation(self, target: ast.expr, annotation: ast.expr) -> None:
        key = _symbol_key(target)
        if key is None:
            return
        try:
            ann = ast.unparse(annotation)
        except Exception:  # pragma: no cover  # codalint: disable=CL004
            # ast.unparse is total on parser output; this guard only keeps
            # a hypothetical malformed annotation from killing the lint run.
            return
        if _SET_ANNOTATION.match(ann):
            self.set_symbols.add(key)
        elif ann == "int":
            self.int_symbols.add(key)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_annotation(node.target, node.annotation)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None:
            self._record_annotation(ast.Name(id=node.arg), node.annotation)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_literalish(node.value):
            for target in node.targets:
                key = _symbol_key(target)
                if key is not None:
                    self.set_symbols.add(key)
        if self._is_process_factory(node.value):
            for target in node.targets:
                key = _symbol_key(target)
                if key is not None:
                    self.process_symbols.add(key)
        self.generic_visit(node)

    def _is_process_factory(self, node: ast.expr) -> bool:
        """Whether the expression constructs a multiprocessing worker.

        Matches ``Process(...)``/``Pool(...)`` by name (covering context
        objects like ``ctx.Process``) and anything whose resolved dotted
        origin mentions ``multiprocessing``.
        """
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted(node.func)
        if dotted is None:
            return False
        last = dotted.rsplit(".", 1)[-1]
        if last in {"Process", "Pool"}:
            return True
        root = dotted.split(".", 1)[0]
        origin = self.from_imports.get(root, self.module_aliases.get(root, ""))
        return "multiprocessing" in origin


def _symbol_key(node: ast.expr) -> Optional[str]:
    """Spelling key for a Name or a ``self.x``-style attribute."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _is_set_literalish(node: ast.expr) -> bool:
    """Syntactically-obvious set expressions (no symbol table needed)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    return False


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _RulePass(ast.NodeVisitor):
    def __init__(self, path: str, symbols: _SymbolPass) -> None:
        self.path = path
        self.symbols = symbols
        self.violations: List[Violation] = []
        #: comprehension nodes exempt from CL003 because they feed an
        #: order-insensitive consumer like sorted().
        self._exempt: Set[int] = set()

    def _violate(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- set-ness ------------------------------------------------------- #

    def _is_set_expr(self, node: ast.expr) -> bool:
        if _is_set_literalish(node):
            return True
        key = _symbol_key(node)
        if key is not None and key in self.symbols.set_symbols:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            } and self._is_set_expr(node.func.value):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    # -- CL001 / CL002 -------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        self._check_clock_and_random(node)
        self._check_order_sensitive_consumers(node)
        self._check_unbounded_join(node)
        self.generic_visit(node)

    def _resolve_call(self, node: ast.Call) -> Optional[str]:
        """Dotted origin of the callee, through import aliases."""
        if isinstance(node.func, ast.Name):
            return self.symbols.from_imports.get(node.func.id)
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        origin = self.symbols.from_imports.get(
            root, self.symbols.module_aliases.get(root, root)
        )
        return f"{origin}.{rest}" if rest else origin

    def _check_clock_and_random(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is None:
            return
        module, _, member = resolved.rpartition(".")
        if module == "time" and member in _TIME_FNS:
            self._violate(
                node,
                "CL001",
                f"call to wall-clock source time.{member}(); simulation "
                "code must read the engine Clock",
            )
        if (
            resolved.startswith("datetime.")
            and resolved[len("datetime."):] in _DATETIME_FNS
        ):
            self._violate(
                node,
                "CL001",
                f"call to wall-clock source {resolved}(); simulation code "
                "must read the engine Clock",
            )
        if module == "random" or module.endswith(".random"):
            if member in _RANDOM_SAFE:
                if not node.args and not node.keywords:
                    self._violate(
                        node,
                        "CL002",
                        f"{member}() without a seed falls back to OS "
                        "entropy; pass a seed derived from "
                        "repro.sim.rng.derive_seed",
                    )
            else:
                self._violate(
                    node,
                    "CL002",
                    f"process-global randomness random.{member}(); draw "
                    "from a named repro.sim.rng.RngRegistry stream",
                )

    # -- CL007 ---------------------------------------------------------- #

    def _check_unbounded_join(self, node: ast.Call) -> None:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        ):
            return
        key = _symbol_key(node.func.value)
        if key is None or key not in self.symbols.process_symbols:
            return
        if node.args:
            return  # join(5.0) — positional timeout
        if any(kw.arg == "timeout" for kw in node.keywords):
            return
        self._violate(
            node,
            "CL007",
            f"{key}.join() without a timeout can block the supervisor "
            "forever on a hung or half-dead worker; pass timeout= and "
            "handle the still-alive case",
        )

    # -- CL003 ---------------------------------------------------------- #

    def _check_order_sensitive_consumers(self, node: ast.Call) -> None:
        func_name = node.func.id if isinstance(node.func, ast.Name) else None
        if func_name in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._exempt.add(id(arg))
            return
        if func_name in _ORDER_FREEZING:
            for arg in node.args:
                if self._is_set_expr(arg):
                    self._violate(
                        arg,
                        "CL003",
                        f"{func_name}() over a set freezes salted hash "
                        "order; use sorted(...) instead",
                    )
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
            for arg in node.args:
                if self._is_set_expr(arg):
                    self._violate(
                        arg,
                        "CL003",
                        "join() over a set depends on salted hash order; "
                        "use sorted(...) instead",
                    )

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._violate(
                node.iter,
                "CL003",
                "iteration over an unordered set; iterate sorted(...) so "
                "downstream scheduling and tie-breaking stay deterministic",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        if id(node) in self._exempt or isinstance(node, ast.SetComp):
            return
        for gen in node.generators:  # type: ignore[attr-defined]
            if self._is_set_expr(gen.iter):
                self._violate(
                    gen.iter,
                    "CL003",
                    "comprehension over an unordered set; iterate "
                    "sorted(...) instead",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    # -- CL004 ---------------------------------------------------------- #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = self._broad_exception_name(node.type)
        if node.type is None:
            self._violate(
                node, "CL004", "bare except: catches everything including "
                "the simulator's own bookkeeping guards; name the "
                "exception types you can actually handle"
            )
        elif broad is not None:
            self._violate(
                node,
                "CL004",
                f"overly-broad except {broad}:; catch the narrow exception "
                "types this block can actually handle",
            )
        self.generic_visit(node)

    @staticmethod
    def _broad_exception_name(node: Optional[ast.expr]) -> Optional[str]:
        if isinstance(node, ast.Name) and node.id in {"Exception", "BaseException"}:
            return node.id
        if isinstance(node, ast.Tuple):
            for element in node.elts:
                if isinstance(element, ast.Name) and element.id in {
                    "Exception",
                    "BaseException",
                }:
                    return element.id
        return None

    # -- CL005 ---------------------------------------------------------- #

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable_default(default):
                self._violate(
                    default,
                    "CL005",
                    "mutable default argument is shared across calls; "
                    "default to None and build inside the function",
                )

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_FACTORIES:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTABLE_FACTORIES
            ):
                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- CL006 ---------------------------------------------------------- #

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            key = _symbol_key(node.target)
            if key in self.symbols.int_symbols and self._is_floatish(node.value):
                self._violate(
                    node,
                    "CL006",
                    f"float-valued accumulation into int counter {key!r}; "
                    "integer resource counters must stay exact",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_floatish(node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False


def check_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one unit of python source, honouring suppression comments."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                code="CL000",
                message=f"syntax error: {error.msg}",
            )
        ]
    symbols = _SymbolPass()
    symbols.visit(tree)
    rules = _RulePass(path, symbols)
    rules.visit(tree)
    suppressions = _Suppressions(source)
    kept = [
        violation
        for violation in rules.violations
        if not suppressions.active(violation.line, violation.code)
    ]
    kept.sort(key=lambda v: (v.line, v.col, v.code))
    return kept


def check_file(path: Path) -> List[Violation]:
    return check_source(path.read_text(encoding="utf-8"), str(path))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def check_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` with optional code filters."""
    selected = {code.upper() for code in select} if select else None
    ignored = {code.upper() for code in ignore} if ignore else set()
    unknown = (selected or set()) | ignored
    unknown -= set(KNOWN_RULES_BY_CODE) | {"CL000"}
    if unknown:
        raise ValueError(f"unknown rule codes: {', '.join(sorted(unknown))}")
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        for violation in check_file(file_path):
            if violation.code == "CL000":
                violations.append(violation)
                continue
            if selected is not None and violation.code not in selected:
                continue
            if violation.code in ignored:
                continue
            violations.append(violation)
    return violations
