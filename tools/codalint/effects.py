"""Per-function effect inference and transitive (fixpoint) propagation.

For every function indexed by :mod:`tools.codalint.callgraph` this module
computes an *effect set*:

* ``reads``  — ``(ClassName, attr)`` pairs the function reads directly;
* ``writes`` — pairs it writes directly, including subscript stores
  (``self._shares[k] = v``), ``del``, augmented assignment, and
  collection-mutator calls (``self._shares.pop(k)``,
  ``self._records.setdefault(...)``);
* ``calls``  — resolved callee function ids, with class-hierarchy
  dispatch for method calls, ``super()``, properties (reading ``obj.p``
  where ``p`` is a property is a call to the getter), constructor calls,
  and ``functools.partial`` references;
* ``thread_targets`` — functions handed to ``threading.Thread(target=…)``
  (these are *not* call edges: the body runs concurrently, which is
  exactly the distinction rule EF004 needs).

``propagate()`` then closes reads/writes transitively over the call graph
with a worklist fixpoint, so ``transitive_writes("Cluster.allocate")``
includes everything ``Node.allocate`` and ``Gpu.assign`` touch.

Unresolvable receivers (untyped locals, values from unindexed libraries)
contribute *nothing* to effect sets — the analysis only reasons about
attributes whose owning class it can name.  The per-function
``unresolved_calls`` counter is surfaced in ``--effects-dump`` so a
reviewer can see where the model is blind.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.codalint.callgraph import (
    COLLECTION_MUTATORS,
    ExprTyper,
    FunctionInfo,
    Program,
    _dotted_source,
)

Effect = Tuple[str, str]  # (class name, attribute)


@dataclass
class FunctionEffects:
    """Direct and transitive effects of one function."""

    func_id: str
    reads: Set[Effect] = field(default_factory=set)
    writes: Set[Effect] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)
    thread_targets: Set[str] = field(default_factory=set)
    unresolved_calls: int = 0
    transitive_reads: Set[Effect] = field(default_factory=set)
    transitive_writes: Set[Effect] = field(default_factory=set)

    def as_dict(self) -> Dict[str, object]:
        def pairs(effects: Set[Effect]) -> List[str]:
            return sorted(f"{cls}.{attr}" for cls, attr in effects)

        return {
            "reads": pairs(self.reads),
            "writes": pairs(self.writes),
            "calls": sorted(self.calls),
            "thread_targets": sorted(self.thread_targets),
            "unresolved_calls": self.unresolved_calls,
            "transitive_reads": pairs(self.transitive_reads),
            "transitive_writes": pairs(self.transitive_writes),
        }


class _FunctionScanner(ast.NodeVisitor):
    """Walks one function body (lambdas included, nested defs excluded)."""

    def __init__(
        self,
        program: Program,
        info: FunctionInfo,
        env_chain: Sequence[Dict[str, Set[str]]],
        effects: FunctionEffects,
    ) -> None:
        self.program = program
        self.info = info
        self.effects = effects
        self.typer = ExprTyper(program, info.module, info.class_id, env_chain)

    # -- helpers -------------------------------------------------------- #

    def _record_attr_effect(
        self, node: ast.Attribute, *, write: bool
    ) -> None:
        owner_classes = self.typer.classes_of(node.value)
        for class_name in sorted(owner_classes):
            for cls in self.program.classes_named(class_name):
                if write:
                    self.effects.writes.add((class_name, node.attr))
                    continue
                if self.program.is_property(cls.class_id, node.attr):
                    # Reading a property is calling its getter.
                    method = self.program.find_method(cls.class_id, node.attr)
                    if method is not None:
                        self.effects.calls.add(method)
                    self.effects.reads.add((class_name, node.attr))
                elif node.attr in cls.declared_attrs or self._declared_anywhere(
                    cls.class_id, node.attr
                ):
                    self.effects.reads.add((class_name, node.attr))

    def _declared_anywhere(self, class_id: str, attr: str) -> bool:
        for cid in [class_id] + self.program.ancestors.get(class_id, []):
            info = self.program.classes.get(cid)
            if info is not None and attr in info.declared_attrs:
                return True
        return False

    def _write_target(self, target: ast.expr) -> None:
        """Record the write effects of one assignment target."""
        if isinstance(target, ast.Attribute):
            self._record_attr_effect(target, write=True)
        elif isinstance(target, ast.Subscript):
            # x.attr[k] = v mutates x.attr
            if isinstance(target.value, ast.Attribute):
                self._record_attr_effect(target.value, write=True)
            self.visit(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._write_target(element)
        elif isinstance(target, ast.Starred):
            self._write_target(target.value)

    def _callable_ref_targets(self, node: ast.expr) -> Set[str]:
        """Resolve a bare callable reference (not a call)."""
        if isinstance(node, ast.Name):
            return {
                t
                for t in self.typer._resolve_name_callee(node.id)
                if not t.startswith("@class:")
            }
        if isinstance(node, ast.Attribute):
            targets: Set[str] = set()
            for class_name in self.typer.classes_of(node.value):
                for cls in self.program.classes_named(class_name):
                    targets |= self.program.dispatch_targets(
                        cls.class_id, node.attr
                    )
            return targets
        return set()

    # -- statements ----------------------------------------------------- #

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None  # nested defs are separate functions

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._write_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._write_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            self._record_attr_effect(node.target, write=True)
            self._record_attr_effect(node.target, write=False)
        else:
            self._write_target(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._write_target(target)

    # -- expressions ---------------------------------------------------- #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._record_attr_effect(node, write=False)
        else:
            self._record_attr_effect(node, write=True)
        self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = (
            _dotted_source(node.func)
            if isinstance(node.func, (ast.Name, ast.Attribute))
            else None
        )
        origin = self._import_origin(dotted)

        # threading.Thread(target=...) — a concurrency edge, not a call.
        # Process spawns (multiprocessing) share no memory, so they are
        # deliberately NOT thread edges: EF004 is about shared-memory
        # races, and a child process cannot race the parent's attributes.
        if origin == "threading.Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self.effects.thread_targets |= self._callable_ref_targets(
                        keyword.value
                    )
        # functools.partial(f, ...) freezes a future call to f.
        elif origin in ("functools.partial", "functools.partialmethod"):
            if node.args:
                self.effects.calls |= self._callable_ref_targets(node.args[0])

        targets = self.typer.resolve_call_targets(node)
        real_targets = {t for t in targets if not t.startswith("@class:")}
        if real_targets:
            self.effects.calls |= real_targets
        elif not targets:
            # Unresolved — maybe a collection mutator on an attribute.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in COLLECTION_MUTATORS
                and isinstance(func.value, ast.Attribute)
            ):
                self._record_attr_effect(func.value, write=True)
            elif isinstance(func, (ast.Name, ast.Attribute)):
                self.effects.unresolved_calls += 1

        # Receiver and argument sub-expressions still carry reads.
        if isinstance(node.func, ast.Attribute):
            self.visit(node.func.value)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _import_origin(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        imports = self.program.imports.get(self.info.module, {})
        origin = imports.get(root, root)
        return f"{origin}.{rest}" if rest else origin


def _local_env(
    program: Program, info: FunctionInfo, outer: Sequence[Dict[str, Set[str]]]
) -> Dict[str, Set[str]]:
    """Flow-insensitive local type environment for one function."""
    env: Dict[str, Set[str]] = {}
    for param, annotation in info.param_annotations.items():
        classes = program.annotation_classes(annotation.strip("'\""))
        if classes:
            env[param] = classes

    # Nested function definitions are callable bindings.
    body = info.node.body  # type: ignore[attr-defined]
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = f"{info.module}:{info.qualname}.<locals>.{stmt.name}"
            if nested in program.functions:
                env[f"@func:{stmt.name}"] = {nested}

    # Collect simple (name, value-expression) bindings: assignments, loop
    # targets, and comprehension generators.  Resolved over a few rounds
    # so chains like ``node = self.nodes[i]; gpu = node.gpus[j]`` settle.
    bindings: List[Tuple[str, ast.expr]] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            return None

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            return None

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            return None

        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings.append((target.id, node.value))
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if isinstance(node.target, ast.Name):
                classes = program.annotation_classes(
                    ast.unparse(node.annotation)
                )
                if classes:
                    env.setdefault(node.target.id, set()).update(classes)
                if node.value is not None:
                    bindings.append((node.target.id, node.value))
            self.generic_visit(node)

        def visit_For(self, node: ast.For) -> None:
            if isinstance(node.target, ast.Name):
                bindings.append((node.target.id, node.iter))
            self.generic_visit(node)

        def _comprehension(self, generators: List[ast.comprehension]) -> None:
            for gen in generators:
                if isinstance(gen.target, ast.Name):
                    bindings.append((gen.target.id, gen.iter))

        def visit_ListComp(self, node: ast.ListComp) -> None:
            self._comprehension(node.generators)
            self.generic_visit(node)

        def visit_SetComp(self, node: ast.SetComp) -> None:
            self._comprehension(node.generators)
            self.generic_visit(node)

        def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
            self._comprehension(node.generators)
            self.generic_visit(node)

        def visit_DictComp(self, node: ast.DictComp) -> None:
            self._comprehension(node.generators)
            self.generic_visit(node)

        def visit_With(self, node: ast.With) -> None:
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    bindings.append(
                        (item.optional_vars.id, item.context_expr)
                    )
            self.generic_visit(node)

    for stmt in body:
        _Collector().visit(stmt)

    chain = [env] + list(outer)
    typer = ExprTyper(program, info.module, info.class_id, chain)
    for _ in range(3):
        changed = False
        for name, expr in bindings:
            classes = typer.classes_of(expr)
            if classes and not classes <= env.get(name, set()):
                env.setdefault(name, set()).update(classes)
                changed = True
        if not changed:
            break
    return env


class EffectAnalysis:
    """Direct effect scan plus transitive closure over the call graph."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.effects: Dict[str, FunctionEffects] = {}
        self.callers: Dict[str, Set[str]] = {}
        self._envs: Dict[str, Dict[str, Set[str]]] = {}

    # ------------------------------------------------------------------ #
    # Construction

    def run(self) -> "EffectAnalysis":
        for func_id in sorted(self.program.functions):
            self._scan(func_id)
        self._build_reverse_edges()
        self._propagate()
        return self

    def _env_chain(self, func_id: str) -> List[Dict[str, Set[str]]]:
        """This function's env plus every enclosing function's (closures)."""
        info = self.program.functions[func_id]
        chain: List[Dict[str, Set[str]]] = []
        parts = info.qualname.split(".<locals>.")
        # Enclosing qualnames, nearest first: a.b.<locals>.c -> [a.b]
        enclosing = [
            f"{info.module}:" + ".<locals>.".join(parts[:i])
            for i in range(len(parts) - 1, 0, -1)
        ]
        outer: List[Dict[str, Set[str]]] = []
        for parent_id in enclosing:
            parent_env = self._envs.get(parent_id)
            if parent_env is None and parent_id in self.program.functions:
                parent_env = _local_env(
                    self.program, self.program.functions[parent_id], []
                )
                self._envs[parent_id] = parent_env
            if parent_env is not None:
                outer.append(parent_env)
        if func_id not in self._envs:
            self._envs[func_id] = _local_env(
                self.program, info, outer
            )
        chain = [self._envs[func_id]] + outer
        return chain

    def _scan(self, func_id: str) -> None:
        info = self.program.functions[func_id]
        effects = FunctionEffects(func_id=func_id)
        scanner = _FunctionScanner(
            self.program, info, self._env_chain(func_id), effects
        )
        for stmt in info.node.body:  # type: ignore[attr-defined]
            scanner.visit(stmt)
        effects.calls.discard(func_id)
        self.effects[func_id] = effects

    def _build_reverse_edges(self) -> None:
        for func_id in self.effects:
            self.callers.setdefault(func_id, set())
        for func_id, effects in self.effects.items():
            for callee in effects.calls:
                if callee in self.effects:
                    self.callers.setdefault(callee, set()).add(func_id)

    def _propagate(self) -> None:
        """Worklist fixpoint: effects flow from callee to caller."""
        for effects in self.effects.values():
            effects.transitive_reads = set(effects.reads)
            effects.transitive_writes = set(effects.writes)
        worklist = list(self.effects)
        queued = set(worklist)
        while worklist:
            func_id = worklist.pop()
            queued.discard(func_id)
            effects = self.effects[func_id]
            grown = False
            for callee in effects.calls:
                callee_effects = self.effects.get(callee)
                if callee_effects is None:
                    continue
                if not callee_effects.transitive_reads <= effects.transitive_reads:
                    effects.transitive_reads |= callee_effects.transitive_reads
                    grown = True
                if not callee_effects.transitive_writes <= effects.transitive_writes:
                    effects.transitive_writes |= callee_effects.transitive_writes
                    grown = True
            if grown:
                for caller in self.callers.get(func_id, ()):  # codalint: disable=CL003
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)

    # ------------------------------------------------------------------ #
    # Graph queries

    def reachable_from(
        self, roots: Iterable[str], *, follow_threads: bool = False
    ) -> Set[str]:
        """Forward closure over call (and optionally thread) edges."""
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.effects]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            effects = self.effects[current]
            nexts = set(effects.calls)
            if follow_threads:
                nexts |= effects.thread_targets
            for callee in sorted(nexts):
                if callee in self.effects and callee not in seen:
                    frontier.append(callee)
        return seen

    def functions_reaching(self, target_ids: Iterable[str]) -> Set[str]:
        """Every function from which any of ``target_ids`` is reachable."""
        seen: Set[str] = set()
        frontier = [t for t in target_ids if t in self.effects]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for caller in sorted(self.callers.get(current, ())):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        return seen

    def effects_table(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready per-function effect table (``--effects-dump``)."""
        return {
            func_id: self.effects[func_id].as_dict()
            for func_id in sorted(self.effects)
        }
