"""Whole-program indexing and call-graph construction for codalint v2.

This module builds the *static program model* the effect analysis
(:mod:`tools.codalint.effects`) and the contract rules
(:mod:`tools.codalint.analysis_rules`) run on:

* every module under the analyzed roots is parsed once;
* every class and function (methods, nested functions, properties) gets a
  stable id — ``"repro.cluster.node:Node.allocate"`` — plus a short
  *qualname* (``"Node.allocate"``) used by contract files;
* per-class attribute types are inferred from annotations
  (``self.gpus: List[Gpu]``) and constructor assignments
  (``self.generation = GenerationCounter()``);
* :class:`ExprTyper` resolves the class candidates of an expression —
  ``self``, annotated parameters, locals bound to constructor calls,
  container elements, property and call return annotations — which is how
  a call like ``self.gpus[gpu_id].assign(job_id)`` lands on
  ``Gpu.assign``.

Dispatch is class-hierarchy based (CHA): a call through a base-class
receiver (``Scheduler``) resolves to every override in the hierarchy,
which is what makes the ``repro.schedulers`` registry indirection
(``build_scheduler`` returning any policy) analyzable.  The model is
deliberately flow- and path-insensitive: it over-approximates calls and
effects, which is the right direction for an invalidation-contract
checker — a missed edge can hide a bug, an extra edge only widens an
effect set.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Container/collection methods that mutate the receiver in place.  A call
#: ``self._shares.pop(job_id)`` is a *write* to the ``_shares`` attribute
#: unless the receiver resolves to a class that defines the method itself.
COLLECTION_MUTATORS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
    "appendleft",
}


@dataclass
class FunctionInfo:
    """One indexed function, method, or nested function."""

    func_id: str
    module: str
    qualname: str  # e.g. "Node.allocate" or "outer.<locals>.inner"
    name: str
    path: str
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_id: Optional[str] = None
    decorators: List[str] = field(default_factory=list)
    is_property: bool = False
    #: Classes named in the return annotation (resolved lazily).
    return_classes: Set[str] = field(default_factory=set)
    #: Parameter name -> annotation source string.
    param_annotations: Dict[str, str] = field(default_factory=dict)

    @property
    def short_qualname(self) -> str:
        """``Class.method`` / ``function`` — the contract-file spelling."""
        return self.qualname


@dataclass
class ClassInfo:
    """One indexed class."""

    class_id: str
    module: str
    name: str
    path: str
    lineno: int
    base_names: List[str] = field(default_factory=list)
    #: Method name -> func id (own definitions only).
    methods: Dict[str, str] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    #: Attribute name -> candidate class names (from annotations and
    #: constructor assignments anywhere in the class body).
    attr_classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: Every attribute the class ever assigns on ``self`` or annotates.
    declared_attrs: Set[str] = field(default_factory=set)


class Program:
    """The fully-indexed program: modules, classes, functions, hierarchy."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Bare class name -> every class id using it.
        self.class_names: Dict[str, List[str]] = {}
        #: module -> {local name -> dotted origin} for imports.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module -> {function name -> func id} (top level only).
        self.module_functions: Dict[str, Dict[str, str]] = {}
        #: module -> {class name -> class id} (top level only).
        self.module_classes: Dict[str, Dict[str, str]] = {}
        #: module -> source path.
        self.module_paths: Dict[str, str] = {}
        #: class id -> direct base class ids.
        self.bases: Dict[str, List[str]] = {}
        #: class id -> transitive subclass ids.
        self.descendants: Dict[str, Set[str]] = {}
        #: class id -> linearized ancestor ids (nearest first).
        self.ancestors: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # Lookups

    def classes_named(self, name: str) -> List[ClassInfo]:
        return [self.classes[cid] for cid in self.class_names.get(name, ())]

    def mro_attr_classes(self, class_id: str, attr: str) -> Set[str]:
        """Attribute type candidates through the class and its ancestors."""
        for cid in [class_id] + self.ancestors.get(class_id, []):
            info = self.classes.get(cid)
            if info is not None and attr in info.attr_classes:
                return info.attr_classes[attr]
        return set()

    def find_method(self, class_id: str, name: str) -> Optional[str]:
        """Own or inherited definition of ``name``, nearest first."""
        for cid in [class_id] + self.ancestors.get(class_id, []):
            info = self.classes.get(cid)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    def dispatch_targets(self, class_id: str, name: str) -> Set[str]:
        """CHA resolution: the inherited def plus every override below."""
        targets: Set[str] = set()
        inherited = self.find_method(class_id, name)
        if inherited is not None:
            targets.add(inherited)
        for sub in self.descendants.get(class_id, ()):  # codalint: disable=CL003
            info = self.classes.get(sub)
            if info is not None and name in info.methods:
                targets.add(info.methods[name])
        return targets

    def is_property(self, class_id: str, name: str) -> bool:
        for cid in [class_id] + self.ancestors.get(class_id, []):
            info = self.classes.get(cid)
            if info is not None and name in info.properties:
                return True
        return False

    def annotation_classes(self, annotation: str) -> Set[str]:
        """Known class names mentioned in an annotation source string."""
        found: Set[str] = set()
        for token in _IDENTIFIER.findall(annotation):
            if token in self.class_names:
                found.add(token)
        return found

    def resolve_qualname(self, pattern: str) -> Set[str]:
        """Function ids whose qualname matches ``pattern``.

        A pattern is either ``module:qualname`` (exact module) or a bare
        qualname like ``GenerationCounter.bump`` matched in any module.
        """
        if ":" in pattern:
            return {pattern} if pattern in self.functions else set()
        return {
            func_id
            for func_id, info in self.functions.items()
            if info.qualname == pattern
        }


# ---------------------------------------------------------------------- #
# Indexing


def _module_name(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def iter_source_files(paths: Sequence[object]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)  # type: ignore[arg-type]
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _decorator_names(node: ast.AST) -> List[str]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        names.append(_dotted_source(target) or "")
    return names


def _dotted_source(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _ann_source(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover  # codalint: disable=CL004
        # ast.unparse is total on parser output; belt and braces only.
        return ""


class _ModuleIndexer(ast.NodeVisitor):
    """First pass over one module: names, classes, functions, imports."""

    def __init__(self, program: Program, module: str, path: str) -> None:
        self.program = program
        self.module = module
        self.path = path
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[str] = []
        program.imports.setdefault(module, {})
        program.module_functions.setdefault(module, {})
        program.module_classes.setdefault(module, {})
        program.module_paths[module] = path

    # -- imports -------------------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.program.imports[self.module][local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: anchor at this module's package.
            package_parts = self.module.split(".")[: -node.level]
            base = ".".join(package_parts + ([node.module] if node.module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.program.imports[self.module][local] = f"{base}.{alias.name}"

    # -- definitions ---------------------------------------------------- #

    def _qualname(self, name: str) -> str:
        parts: List[str] = []
        if self._func_stack:
            parts.append(self._func_stack[-1] + ".<locals>")
        elif self._class_stack:
            parts.append(self._class_stack[-1].name)
        parts.append(name)
        return ".".join(parts)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        class_id = f"{self.module}:{qualname}"
        info = ClassInfo(
            class_id=class_id,
            module=self.module,
            name=node.name,
            path=self.path,
            lineno=node.lineno,
            base_names=[
                source
                for base in node.bases
                if (source := _dotted_source(base)) is not None
            ],
        )
        self.program.classes[class_id] = info
        self.program.class_names.setdefault(node.name, []).append(class_id)
        if not self._class_stack and not self._func_stack:
            self.program.module_classes[self.module][node.name] = class_id
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.declared_attrs.add(stmt.target.id)
                classes = self.program_annotation_placeholder(
                    _ann_source(stmt.annotation)
                )
                if classes:
                    info.attr_classes.setdefault(stmt.target.id, set()).update(
                        classes
                    )
        self._class_stack.append(info)
        saved_funcs, self._func_stack = self._func_stack, []
        self.generic_visit(node)
        self._func_stack = saved_funcs
        self._class_stack.pop()

    def program_annotation_placeholder(self, annotation: str) -> Set[str]:
        """Annotation class names are resolved after all modules index;
        stash the raw string for the second sweep."""
        return {f"@ann:{annotation}"} if annotation else set()

    def _visit_function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        qualname = self._qualname(name)
        func_id = f"{self.module}:{qualname}"
        in_class = bool(self._class_stack) and not self._func_stack
        decorators = _decorator_names(node)
        info = FunctionInfo(
            func_id=func_id,
            module=self.module,
            qualname=qualname,
            name=name,
            path=self.path,
            lineno=node.lineno,  # type: ignore[attr-defined]
            node=node,
            class_id=self._class_stack[-1].class_id if in_class else None,
            decorators=decorators,
        )
        returns = _ann_source(getattr(node, "returns", None)).strip("'\"")
        if returns:
            info.return_classes = {f"@ann:{returns}"}
        args = node.args  # type: ignore[attr-defined]
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if arg.annotation is not None:
                info.param_annotations[arg.arg] = _ann_source(arg.annotation)
        self.program.functions[func_id] = info
        if in_class:
            owner = self._class_stack[-1]
            owner.methods[name] = func_id
            is_prop = any(
                dec in ("property", "functools.cached_property", "cached_property")
                or dec.endswith(".setter")
                or dec.endswith(".getter")
                for dec in decorators
            )
            if is_prop:
                owner.properties.add(name)
                info.is_property = True
        elif not self._func_stack:
            self.program.module_functions[self.module][name] = func_id
        self._func_stack.append(qualname)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def _link_hierarchy(program: Program) -> None:
    """Resolve base-class names and compute ancestors/descendants."""
    for class_id, info in program.classes.items():
        resolved: List[str] = []
        imports = program.imports.get(info.module, {})
        for base in info.base_names:
            name = base.split(".")[-1]
            origin = imports.get(base)
            candidates = program.class_names.get(name, [])
            if origin is not None:
                # "from x import C" — prefer the class defined in x.
                preferred = [
                    cid for cid in candidates if cid.startswith(origin.rsplit(".", 1)[0])
                ]
                candidates = preferred or candidates
            local = program.module_classes.get(info.module, {}).get(name)
            if local is not None:
                candidates = [local]
            resolved.extend(candidates)
        program.bases[class_id] = resolved
    # Ancestors: BFS up the (possibly multi-) inheritance chain.
    for class_id in program.classes:
        seen: List[str] = []
        frontier = list(program.bases.get(class_id, []))
        while frontier:
            current = frontier.pop(0)
            if current in seen or current == class_id:
                continue
            seen.append(current)
            frontier.extend(program.bases.get(current, []))
        program.ancestors[class_id] = seen
    # Descendants: invert.
    for class_id in program.classes:
        program.descendants.setdefault(class_id, set())
    for class_id, ancestors in program.ancestors.items():
        for ancestor in ancestors:
            program.descendants.setdefault(ancestor, set()).add(class_id)


def _resolve_annotation_placeholders(program: Program) -> None:
    """Second sweep: turn ``@ann:...`` placeholders into class-name sets."""
    for info in program.classes.values():
        for attr, classes in list(info.attr_classes.items()):
            info.attr_classes[attr] = _expand(program, classes)
    for func in program.functions.values():
        func.return_classes = _expand(program, func.return_classes)


def _expand(program: Program, classes: Set[str]) -> Set[str]:
    expanded: Set[str] = set()
    for entry in sorted(classes):
        if entry.startswith("@ann:"):
            expanded |= program.annotation_classes(entry[len("@ann:"):])
        else:
            expanded.add(entry)
    return expanded


def _collect_attr_types(program: Program) -> None:
    """Harvest ``self.x = Cls(...)`` / ``self.x: T`` from method bodies."""
    for func in program.functions.values():
        if func.class_id is None:
            continue
        owner = program.classes[func.class_id]
        imports = program.imports.get(func.module, {})
        for stmt in ast.walk(func.node):
            assign_targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                assign_targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                assign_targets, value = [stmt.target], stmt.value
                annotation = _ann_source(stmt.annotation)
            else:
                continue
            for target in assign_targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")
                ):
                    continue
                owner.declared_attrs.add(target.attr)
                classes: Set[str] = set()
                if isinstance(stmt, ast.AnnAssign):
                    classes |= program.annotation_classes(annotation)
                if isinstance(value, ast.Call):
                    callee = _dotted_source(value.func)
                    if callee is not None:
                        name = callee.split(".")[-1]
                        origin = imports.get(callee, callee)
                        if name in program.class_names or origin.split(".")[
                            -1
                        ] in program.class_names:
                            classes.add(name)
                elif isinstance(value, ast.Name):
                    # self.x = param, where param carries an annotation
                    # (the common dependency-injection constructor shape).
                    annotated = func.param_annotations.get(value.id)
                    if annotated is not None:
                        classes |= program.annotation_classes(
                            annotated.strip("'\"")
                        )
                if classes:
                    owner.attr_classes.setdefault(target.attr, set()).update(
                        classes
                    )


def build_program(paths: Sequence[Path]) -> Program:
    """Parse and index every python file under ``paths``."""
    program = Program()
    for path in iter_source_files(paths):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue  # reported by the lint pass as CL000
        module = _module_name(path)
        _ModuleIndexer(program, module, str(path)).visit(tree)
    _link_hierarchy(program)
    _resolve_annotation_placeholders(program)
    _collect_attr_types(program)
    return program


# ---------------------------------------------------------------------- #
# Expression typing


class ExprTyper:
    """Best-effort class-candidate resolution for expressions.

    One instance per analyzed function; ``env`` chains map local names to
    candidate class-name sets (parameters, constructor-assigned locals,
    loop and comprehension targets), with enclosing-function environments
    visible to nested functions (closures).
    """

    _MAX_DEPTH = 8

    def __init__(
        self,
        program: Program,
        module: str,
        class_id: Optional[str],
        env_chain: Sequence[Dict[str, Set[str]]],
    ) -> None:
        self.program = program
        self.module = module
        self.class_id = class_id
        self.env_chain = list(env_chain)

    def classes_of(self, node: ast.expr, depth: int = 0) -> Set[str]:
        """Candidate class *names* for the value of ``node``."""
        if depth > self._MAX_DEPTH:
            return set()
        program = self.program
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls") and self.class_id is not None:
                return {program.classes[self.class_id].name}
            for env in self.env_chain:
                if node.id in env:
                    return env[node.id]
            if node.id in program.class_names:
                return set()  # a class object, not an instance
            return set()
        if isinstance(node, ast.Attribute):
            value_classes = self.classes_of(node.value, depth + 1)
            found: Set[str] = set()
            for class_name in value_classes:
                for info in program.classes_named(class_name):
                    found |= program.mro_attr_classes(info.class_id, node.attr)
                    if program.is_property(info.class_id, node.attr):
                        method = program.find_method(info.class_id, node.attr)
                        if method is not None:
                            found |= program.functions[method].return_classes
            return found
        if isinstance(node, ast.Subscript):
            # Element access on a typed container: the annotation's class
            # candidates double as the element candidates.
            return self.classes_of(node.value, depth + 1)
        if isinstance(node, ast.Call):
            return self.call_result_classes(node, depth)
        if isinstance(node, (ast.IfExp,)):
            return self.classes_of(node.body, depth + 1) | self.classes_of(
                node.orelse, depth + 1
            )
        if isinstance(node, ast.Await):
            return self.classes_of(node.value, depth + 1)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            merged: Set[str] = set()
            for element in node.elts:
                merged |= self.classes_of(element, depth + 1)
            return merged
        if isinstance(node, ast.ListComp):
            return self.classes_of(node.elt, depth + 1)
        return set()

    def call_result_classes(self, node: ast.Call, depth: int = 0) -> Set[str]:
        """Classes a call expression may evaluate to."""
        results: Set[str] = set()
        for func_id in self.resolve_call_targets(node, depth):
            if func_id.startswith("@class:"):
                results.add(func_id[len("@class:"):])
            else:
                info = self.program.functions.get(func_id)
                if info is not None:
                    if info.name == "__init__" and info.class_id is not None:
                        results.add(self.program.classes[info.class_id].name)
                    else:
                        results |= info.return_classes
        return results

    def resolve_call_targets(
        self, node: ast.Call, depth: int = 0
    ) -> Set[str]:
        """Function ids (or ``@class:Name`` for constructors) of a call."""
        program = self.program
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_name_callee(func.id)
        if isinstance(func, ast.Attribute):
            # super().m(...)
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
                and self.class_id is not None
            ):
                for ancestor in program.ancestors.get(self.class_id, []):
                    info = program.classes.get(ancestor)
                    if info is not None and func.attr in info.methods:
                        return {info.methods[func.attr]}
                return set()
            # module.func(...) through an import alias
            dotted = _dotted_source(func)
            if dotted is not None:
                root = dotted.split(".")[0]
                imports = program.imports.get(self.module, {})
                if root in imports and not self._name_is_value(root):
                    origin = imports[root] + dotted[len(root):]
                    resolved = self._resolve_dotted_origin(origin)
                    if resolved:
                        return resolved
            # obj.m(...) through receiver types (CHA dispatch)
            receiver_classes = self.classes_of(func.value, depth + 1)
            targets: Set[str] = set()
            for class_name in receiver_classes:
                for info in program.classes_named(class_name):
                    targets |= program.dispatch_targets(info.class_id, func.attr)
            return targets
        return set()

    def _name_is_value(self, name: str) -> bool:
        for env in self.env_chain:
            if name in env:
                return True
        return False

    def _resolve_name_callee(self, name: str) -> Set[str]:
        program = self.program
        # Nested function / local binding shadowing? env holds *instances*,
        # not callables, so check definitions first.
        for env in self.env_chain:
            callee = env.get(f"@func:{name}")
            if callee:
                return callee
        local_func = program.module_functions.get(self.module, {}).get(name)
        if local_func is not None:
            return {local_func}
        local_class = program.module_classes.get(self.module, {}).get(name)
        if local_class is not None:
            return self._constructor_targets(local_class)
        origin = program.imports.get(self.module, {}).get(name)
        if origin is not None:
            resolved = self._resolve_dotted_origin(origin)
            if resolved:
                return resolved
        if name in program.class_names:
            merged: Set[str] = set()
            for cid in program.class_names[name]:
                merged |= self._constructor_targets(cid)
            return merged
        if self.class_id is not None:
            # Unqualified reference to a method (rare; e.g. a callback
            # table built inside the class body).
            method = program.find_method(self.class_id, name)
            if method is not None:
                return {method}
        return set()

    def _constructor_targets(self, class_id: str) -> Set[str]:
        program = self.program
        targets = {f"@class:{program.classes[class_id].name}"}
        for method in ("__init__", "__post_init__", "__new__"):
            func_id = program.find_method(class_id, method)
            if func_id is not None:
                targets.add(func_id)
        return targets

    def _resolve_dotted_origin(self, origin: str) -> Set[str]:
        """Resolve ``pkg.module.name`` to a function or constructor."""
        program = self.program
        module, _, name = origin.rpartition(".")
        if not name:
            return set()
        func = program.module_functions.get(module, {}).get(name)
        if func is not None:
            return {func}
        class_id = program.module_classes.get(module, {}).get(name)
        if class_id is not None:
            return self._constructor_targets(class_id)
        # "from pkg import module" followed by module.func — origin is
        # then pkg.module.func with module indexed under pkg.module.
        return set()
