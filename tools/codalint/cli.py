"""Command-line front end: ``python -m tools.codalint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.codalint.checker import check_paths
from tools.codalint.rules import ALL_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codalint",
        description=(
            "simulator-specific determinism and resource-safety lint "
            "(rules CL001-CL006; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
            print(f"       {rule.rationale}")
        return 0
    paths = [Path(path) for path in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"codalint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        violations = check_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as error:
        print(f"codalint: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.as_dict() for v in violations],
                    "count": len(violations),
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"codalint: {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
