"""Command-line front end: ``python -m tools.codalint [paths...]``.

Two layers share one invocation:

* the per-file AST lint (CL001–CL007), always on;
* the interprocedural effect analysis (EF001–EF004), enabled with
  ``--analyze`` — builds the whole-program call graph, infers
  per-function attribute read/write sets to a fixpoint, and checks them
  against the invalidation contracts in ``contracts.toml``.

Exit codes: 0 clean, 1 violations found, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.codalint.checker import check_paths
from tools.codalint.contracts import (
    ContractError,
    find_contracts_file,
    load_contracts,
)
from tools.codalint.report import (
    RENDERERS,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.codalint.rules import ALL_KNOWN_RULES, EFFECT_RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codalint",
        description=(
            "simulator-specific determinism and resource-safety lint "
            "(rules CL001-CL007) plus interprocedural effect analysis "
            "(EF001-EF004 with --analyze; see docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="also run the effect analysis (EF001-EF004) against the "
             "contracts manifest",
    )
    parser.add_argument(
        "--contracts", metavar="FILE", type=Path, default=None,
        help="contracts manifest for --analyze (default: contracts.toml "
             "found walking up from the current directory)",
    )
    parser.add_argument(
        "--effects-dump", metavar="FILE", type=Path, default=None,
        help="with --analyze: write the per-function effect table "
             "(JSON) to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE with the current findings and "
             "exit 0",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_KNOWN_RULES:
            print(f"{rule.code}  {rule.summary}")
            print(f"       {rule.rationale}")
        return 0
    if args.update_baseline and args.baseline is None:
        print(
            "codalint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    paths = [Path(path) for path in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"codalint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    try:
        violations = check_paths(paths, select=select, ignore=ignore)
    except ValueError as error:
        print(f"codalint: {error}", file=sys.stderr)
        return 2

    analysis = None
    if args.analyze:
        manifest = args.contracts or find_contracts_file()
        if manifest is None:
            print(
                "codalint: --analyze needs a contracts manifest "
                "(contracts.toml not found; pass --contracts FILE)",
                file=sys.stderr,
            )
            return 2
        # Lazy import: plain lint runs must not pay for the analysis.
        from tools.codalint.analysis_rules import analyze_paths

        try:
            contracts = load_contracts(manifest)
        except ContractError as error:
            print(f"codalint: {error}", file=sys.stderr)
            return 2
        effect_select = None
        if select is not None:
            effect_select = [
                code
                for code in select
                if code.upper() in {rule.code for rule in EFFECT_RULES}
            ]
            if not effect_select:
                effect_select = ["__none__"]  # CL-only selection
        effect_violations, analysis = analyze_paths(
            paths, contracts, select=effect_select, ignore=ignore
        )
        violations = violations + effect_violations
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))

    if args.effects_dump is not None:
        if analysis is None:
            print(
                "codalint: --effects-dump requires --analyze",
                file=sys.stderr,
            )
            return 2
        dump = json.dumps(analysis.effects_table(), indent=2)
        if str(args.effects_dump) == "-":
            print(dump)
        else:
            args.effects_dump.write_text(dump + "\n", encoding="utf-8")

    if args.baseline is not None:
        if args.update_baseline:
            write_baseline(args.baseline, violations)
            print(
                f"codalint: baseline {args.baseline} updated "
                f"({len(violations)} finding(s))",
                file=sys.stderr,
            )
            return 0
        try:
            known = load_baseline(args.baseline)
        except BaselineError as error:
            print(f"codalint: {error}", file=sys.stderr)
            return 2
        violations, suppressed = apply_baseline(violations, known)
        if suppressed:
            print(
                f"codalint: {suppressed} baselined finding(s) suppressed",
                file=sys.stderr,
            )

    output = RENDERERS[args.format](violations)
    if output:
        print(output)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
