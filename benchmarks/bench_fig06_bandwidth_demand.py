"""Fig. 6 — memory-bandwidth demand per model, configuration, and batch.

Shape expectations (Sec. IV-C1): CV demand anti-correlates with model
complexity; NLP demand is tiny; Wavenet grows with batch while DeepSpeech
does not; demand scales linearly with local GPU count.
"""

from bench_util import once

from repro.experiments.figures import fig6_bandwidth_demand
from repro.metrics.report import render_table


def test_fig6_bandwidth_demand(benchmark, emit):
    rows = once(benchmark, fig6_bandwidth_demand)
    emit(
        "fig06_bandwidth_demand",
        render_table(
            ["model", "config", "batch", "GB/s"],
            [(m, c, b, f"{v:.2f}") for m, c, b, v in rows],
            title="Fig. 6: peak memory-bandwidth demand at the optimum",
        ),
    )
    by_key = {(m, c, b): v for m, c, b, v in rows}
    assert by_key[("alexnet", "1N1G", "default")] > by_key[
        ("resnet50", "1N1G", "default")
    ]
    assert by_key[("bat", "1N1G", "default")] < 1.0
    assert by_key[("wavenet", "1N1G", "max")] > by_key[
        ("wavenet", "1N1G", "default")
    ]
