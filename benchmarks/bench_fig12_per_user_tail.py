"""Fig. 12 — per-user 99 %-ile queueing time under FIFO, DRF, and CODA.

Shape expectations: CODA's tails sit below both baselines for most users;
DRF is fairer than FIFO (a lower worst-user tail); the CPU-only users
(ids 15-20) pay a modest premium under CODA versus DRF for the reserved
GPU-array cores — "still not much different from the DRF" (Sec. VI-C).
"""

from bench_util import once

from repro.experiments.figures import fig12_per_user_tail
from repro.metrics.report import render_table
from repro.metrics.stats import mean, percentile


def test_fig12_per_user_tail(benchmark, emit):
    rows = once(benchmark, fig12_per_user_tail)
    emit(
        "fig12_per_user_tail",
        render_table(
            ["user", "fifo p99 (s)", "drf p99 (s)", "coda p99 (s)"],
            [
                (user, f"{fifo:.0f}", f"{drf:.0f}", f"{coda:.0f}")
                for user, fifo, drf, coda in rows
            ],
            title="Fig. 12: per-user 99%-ile queueing time",
        ),
    )
    # GPU-submitting users (1-14): CODA's tail beats FIFO's essentially
    # everywhere (Fig. 12's main message).
    gpu_users = [(u, f, d, c) for u, f, d, c in rows if u <= 14]
    coda_better = sum(1 for _, f, _, c in gpu_users if c <= f + 1.0)
    assert coda_better >= 0.85 * len(gpu_users)
    # DRF's fairness: *most* users see lighter tails than under FIFO, at
    # the cost of the heaviest submitters ("users who submit a large
    # number of jobs have longer queuing time", Sec. VI-C).
    fifo_p99s = sorted(f for _, f, _, _ in rows)
    drf_p99s = sorted(d for _, _, d, _ in rows)
    assert percentile(drf_p99s, 50) <= percentile(fifo_p99s, 50)
    # CPU-only users (15-20) pay for the reserved GPU-array cores but stay
    # "not much different from the DRF" (Sec. VI-C).
    cpu_only_coda = mean([c for u, _, _, c in rows if u >= 15])
    cpu_only_drf = mean([d for u, _, d, _ in rows if u >= 15])
    assert cpu_only_coda <= max(5 * cpu_only_drf, cpu_only_drf + 900.0)
