"""Fig. 1 — the cluster's CPU/GPU active-rate and utilization trend.

Replays the synthetic trace under the status-quo FIFO policy (the paper's
SLURM deployment) over two simulated days.  Shape expectations: the GPU
active rate is high and comparatively stable; the CPU active rate swings
diurnally; GPU utilization sits well below the active rate.
"""

from bench_util import once

from repro.experiments.figures import fig1_cluster_trend
from repro.metrics.report import render_series
from repro.metrics.stats import mean
from repro.sim.clock import DAY


def test_fig1_cluster_trend(benchmark, emit):
    series = once(benchmark, lambda: fig1_cluster_trend(duration_days=2.0))
    text = "\n\n".join(
        render_series(name, points, max_points=16)
        for name, points in series.items()
    )
    emit("fig01_cluster_trend", "Fig. 1: two-day cluster trend (FIFO)\n" + text)

    cpu = series["cpu_active_rate"]
    gpu = series["gpu_active_rate"]
    util = series["gpu_utilization"]
    # Diurnal CPU swing after the first warm-up day: daily peak window vs
    # trough window differ visibly (GPU-job cores provide a flat floor, so
    # the swing rides on top of it).
    steady_cpu = [(t, v) for t, v in cpu if t >= DAY]
    peak = [v for t, v in steady_cpu if (t % DAY) < DAY / 4 or (t % DAY) >= 3 * DAY / 4]
    trough = [v for t, v in steady_cpu if DAY / 4 <= (t % DAY) < 3 * DAY / 4]
    assert mean(peak) > mean(trough) + 0.04
    # GPUs stay busier than utilized (Sec. III-A1's contradiction).
    steady_gpu = [v for t, v in gpu if t > DAY / 2]
    steady_util = [v for t, v in util if t > DAY / 2]
    assert mean(steady_gpu) > 0.6
    assert mean(steady_util) < mean(steady_gpu)
