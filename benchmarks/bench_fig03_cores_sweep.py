"""Fig. 3 — training speed and GPU utilization vs. allocated cores.

Regenerates the per-model (cores, speed, utilization) series for the 1N1G
and 1N4G configurations.  Shape expectations: utilization rises to a
model-specific knee and declines gently after it; Transformer is the one
model already optimal at two cores in 1N1G.
"""

from bench_util import once

from repro.experiments.figures import fig3_core_sweep
from repro.metrics.report import render_table


def test_fig3_core_sweep(benchmark, emit):
    sweep = once(benchmark, fig3_core_sweep)
    rows = []
    for model, by_setup in sweep.items():
        for label, series in by_setup.items():
            best = max(series, key=lambda row: row[1])
            for cores, speed, util in series:
                if cores in (1, 2, 4, 8, 12, 16):
                    rows.append(
                        (
                            model,
                            label,
                            cores,
                            f"{speed:.4f}",
                            f"{util:.3f}",
                            "*" if cores == best[0] else "",
                        )
                    )
    emit(
        "fig03_cores_sweep",
        render_table(
            ["model", "config", "cores", "iters/s", "gpu util", "opt"],
            rows,
            title="Fig. 3: training speed & GPU utilization vs CPU cores",
        ),
    )
    assert sweep["transformer"]["1N1G"][1][2] == max(
        util for _, _, util in sweep["transformer"]["1N1G"]
    )
