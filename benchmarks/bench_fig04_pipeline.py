"""Fig. 4 — the CPU-GPU collaborative process.

Fig. 4 is a diagram, not a measurement; its quantitative content is the
stage decomposition of one training iteration.  This bench renders the
per-stage breakdown of every model at its optimum and asserts the
structural facts Sec. IV-A states about the stages.
"""

from bench_util import once

from repro.metrics.report import render_table
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model
from repro.perfmodel.speed import iteration_time
from repro.perfmodel.stages import TrainSetup
from repro.perfmodel.utilization import optimal_cores


def _breakdowns():
    rows = []
    for name in ALL_MODEL_NAMES:
        profile = get_model(name)
        setup = TrainSetup(1, 1)
        best = optimal_cores(profile, setup)
        rows.append((profile, best, iteration_time(profile, setup, best)))
    return rows


def test_fig4_stage_breakdown(benchmark, emit):
    rows = once(benchmark, _breakdowns)
    emit(
        "fig04_pipeline",
        render_table(
            [
                "model",
                "cores",
                "prep (s)",
                "gpu (s)",
                "overhead (s)",
                "total (s)",
                "overlapped",
                "in-memory data",
            ],
            [
                (
                    profile.name,
                    cores,
                    f"{b.prep_s:.2f}",
                    f"{b.gpu_s:.2f}",
                    f"{b.overhead_s:.3f}",
                    f"{b.total_s:.2f}",
                    "yes" if b.pipelined else "no (serial)",
                    "yes" if profile.in_memory_dataset else "no",
                )
                for profile, cores, b in rows
            ],
            title="Fig. 4: per-iteration stage breakdown at the optimum (1N1G)",
        ),
    )
    for profile, cores, breakdown in rows:
        # Sec. IV-A: CV/Speech pipelines overlap prep with compute; at the
        # optimum prep hides under the GPU path.  NLP prep is serial and
        # contributes directly.
        if profile.pipelined:
            assert breakdown.prep_s <= breakdown.gpu_s + breakdown.sync_s
            assert not breakdown.prep_bound
        else:
            assert breakdown.total_s > breakdown.gpu_s + breakdown.overhead_s
        # Single-node: no gradient-sync stage.
        assert breakdown.sync_s == 0.0
        # NLP models skip the disk-read stage by loading data into memory.
        if profile.domain.value == "NLP":
            assert profile.in_memory_dataset
