"""Helpers shared by the benchmark suite."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
