"""Helpers shared by the benchmark suite."""

from __future__ import annotations

import resource
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, TypeVar

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult
    from repro.parallel import ResultCache, RunSpec
    from repro.sweep import SupervisorConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent

T = TypeVar("T")


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` once and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def fanout_timed(
    specs: Sequence["RunSpec"],
    *,
    jobs: int,
    cache: Optional["ResultCache"] = None,
    supervisor: Optional["SupervisorConfig"] = None,
) -> Tuple[List["RunResult"], float]:
    """Time a :class:`~repro.parallel.SimPool` execution of ``specs``.

    ``cache=None`` (the default) measures pure compute; pass a cache to
    measure warm-replay behaviour instead.  ``supervisor`` routes the
    multi-process path through the fault-tolerant worker supervisor, so
    the benchmark exercises (and times) the production sweep path.
    """
    from repro.parallel import SimPool

    pool = SimPool(jobs=jobs, cache=cache, supervisor=supervisor)
    return timed(lambda: pool.map(specs))


def peak_rss_kb() -> int:
    """Process-wide peak resident set size so far, in kilobytes.

    ``ru_maxrss`` is a high-water mark for the whole process, so readings
    taken after several scenarios reflect the largest of them, not the
    last one.  On Linux the unit is KB (macOS reports bytes; the benchmark
    suite runs on Linux CI, so no conversion is attempted).
    """
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
