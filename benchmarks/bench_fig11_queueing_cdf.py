"""Fig. 11 — job queueing-time CDFs under FIFO, DRF, and CODA.

Shape expectations against the paper: FIFO's >10-minute GPU tail exceeds
DRF's (43.1 % vs 28.9 %); CODA starts ~92 % of GPU jobs without queueing
and ~94.5 % of CPU jobs within three minutes.
"""

from bench_util import once

from repro.experiments.figures import fig11_queueing
from repro.metrics.report import render_cdf, render_table


def test_fig11_queueing_cdf(benchmark, emit):
    summary = once(benchmark, fig11_queueing)
    table = render_table(
        [
            "policy",
            "gpu >10min",
            "gpu >1h",
            "gpu no-queue",
            "cpu <=10s",
            "cpu <=3min",
        ],
        [
            (
                name,
                f"{stats['gpu_over_10min']:.3f}",
                f"{stats['gpu_over_1h']:.3f}",
                f"{stats['gpu_no_queue']:.3f}",
                f"{stats['cpu_within_10s']:.3f}",
                f"{stats['cpu_within_3min']:.3f}",
            )
            for name, stats in summary.items()
        ],
        title="Fig. 11: queueing-time summary per policy",
    )
    cdfs = "\n\n".join(
        f"[{name}]\n" + render_cdf("gpu queueing (s)", stats["gpu_cdf"])
        for name, stats in summary.items()
    )
    emit("fig11_queueing_cdf", table + "\n\n" + cdfs)

    assert summary["coda"]["gpu_no_queue"] >= 0.85
    assert summary["drf"]["gpu_over_10min"] < summary["fifo"]["gpu_over_10min"]
    assert summary["coda"]["cpu_within_3min"] >= 0.9
    assert summary["coda"]["gpu_over_1h"] < 0.1
