"""Ablations of CODA's design choices (DESIGN.md Sec. 6).

Not figures from the paper — these probe the constants the paper fixes
without ablating: the GPU-array core reservation, the tuning-improvement
epsilon, and the eliminator's bandwidth threshold.
"""

from bench_util import once

from repro.experiments.figures import (
    epsilon_sweep,
    reservation_sweep,
    threshold_sweep,
)
from repro.metrics.report import render_table


def test_reservation_sweep(benchmark, emit):
    rows = once(benchmark, reservation_sweep)
    emit(
        "ablation_reservation",
        render_table(
            ["reserved cores", "gpu util", "gpu no-queue", "cpu <=3min"],
            [
                (reserved, f"{util:.3f}", f"{gpu:.3f}", f"{cpu:.3f}")
                for reserved, util, gpu, cpu in rows
            ],
            title="Ablation: GPU-array CPU reservation per node",
        ),
    )
    by_reserved = {r: (util, gpu, cpu) for r, util, gpu, cpu in rows}
    # More reservation never hurts training starts...
    assert by_reserved[20][1] >= by_reserved[8][1] - 0.03
    # ...and the default (16) keeps CPU jobs fast too.
    assert by_reserved[16][2] >= 0.85


def test_epsilon_sweep(benchmark, emit):
    rows = once(benchmark, epsilon_sweep)
    emit(
        "ablation_epsilon",
        render_table(
            ["epsilon", "model", "settled cores", "steps", "util vs peak"],
            [
                (eps, model, cores, steps, f"{ratio:.3f}")
                for eps, model, cores, steps, ratio in rows
            ],
            title="Ablation: tuning-improvement epsilon",
        ),
    )
    # At the default epsilon every model settles within 1 % of its peak.
    default = [r for r in rows if r[0] == 0.01]
    assert default
    assert all(ratio >= 0.99 for _, _, _, _, ratio in default)
    # A huge epsilon under-allocates at least one model below 95 %.
    sloppy = [r for r in rows if r[0] == 0.15]
    assert any(ratio < 0.95 for _, _, _, _, ratio in sloppy)
    # Steps never exceed the probe range regardless of epsilon.
    assert all(steps <= 8 for _, _, _, steps, _ in rows)


def test_threshold_sweep(benchmark, emit):
    rows = once(benchmark, threshold_sweep)
    emit(
        "ablation_threshold",
        render_table(
            ["bandwidth threshold", "trainer slowdown", "heat throttle level"],
            [
                (f"{threshold:.2f}", f"{slowdown:.2f}x", f"{level:.1f}")
                for threshold, slowdown, level in rows
            ],
            title="Ablation: eliminator bandwidth threshold (NLP + HEAT)",
        ),
    )
    by_threshold = {t: (s, level) for t, s, level in rows}
    # The default threshold protects the trainer...
    assert by_threshold[0.75][0] <= 1.1
    # ...a lax threshold lets it suffer...
    assert by_threshold[0.95][0] > by_threshold[0.75][0]
    # ...and a strict one throttles HEAT harder for no additional benefit.
    assert by_threshold[0.55][1] < by_threshold[0.75][1]