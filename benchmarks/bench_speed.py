"""End-to-end simulator speed benchmark.

Runs four canonical scenarios under fixed seeds and records, per scenario:

* ``events_per_sec`` — fired simulation events over wall time (the headline
  throughput number; higher is better);
* ``peak_rss_kb`` — the process peak resident set size after the scenario
  (a high-water mark: it only grows across scenarios in one invocation);
* ``time_shares`` — per-subsystem wall-time shares from a second, profiled
  run of the same scenario (events/sec always comes from the unprofiled
  run).

The scenarios:

* ``replay_1day`` — the paper-scale (80 nodes / 400 GPUs) 1-day CODA
  replay; the acceptance scenario for speedup claims.
* ``chaos_replay`` — a faulted replay: node crashes, GPU failures, and
  telemetry dropouts with health tracking and restart budgets armed.
* ``tuning_storm`` — a small cluster flooded with GPU jobs so the adaptive
  allocator's tuning/slimming machinery dominates.
* ``replay_1week_200node`` — a week on a 200-node / 1,000-GPU cluster at
  2.5x the paper load: the scale-stress scenario where per-event monitor
  and reschedule costs dominate.

Results land in ``BENCH_speed.json`` at the repo root.  The committed file
holds a ``baseline`` section (captured on the pre-optimization code) and a
``current`` section; CI reruns ``--quick`` and fails when a scenario's
events/sec regresses more than ``--tolerance`` (default 20 %) against the
committed ``current`` numbers.

``--matrix`` switches to the scenario-matrix fan-out benchmark: the
3-policy × 4-seed replica matrix timed at ``--jobs 1`` vs ``--jobs N``
(uncached, byte-identity asserted), recorded under the separate
``matrix`` section of ``BENCH_speed.json`` — informational, never gated
by ``--check-against``, since its speedup depends on the host's core
count.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py              # full
    PYTHONPATH=src python benchmarks/bench_speed.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_speed.py --quick \\
        --check-against BENCH_speed.json                         # gate
    PYTHONPATH=src python benchmarks/bench_speed.py --baseline   # re-pin
    PYTHONPATH=src python benchmarks/bench_speed.py --quick --matrix --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_util import fanout_timed, peak_rss_kb, timed  # noqa: E402

from repro import profiling  # noqa: E402
from repro.config import small_cluster  # noqa: E402
from repro.core.coda import CodaConfig, CodaScheduler  # noqa: E402
from repro.core.eliminator import (  # noqa: E402
    CHAOS_FLAP_COOLDOWN_S,
    EliminatorConfig,
)
from repro.experiments.scenarios import (  # noqa: E402
    Scenario,
    grid_specs,
    paper_scale_scenario,
    run_scenario,
    small_scenario,
    week_scale_scenario,
)
from repro.faults import FaultConfig  # noqa: E402
from repro.health import HealthConfig, RestartPolicy  # noqa: E402
from repro.metrics.report import render_table  # noqa: E402
from repro.metrics.serialize import run_result_to_dict  # noqa: E402
from repro.parallel import SCHEDULER_NAMES  # noqa: E402
from repro.schedulers.base import Scheduler  # noqa: E402
from repro.workload.tracegen import TraceConfig  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_speed.json"
SCHEMA_VERSION = 1

#: A scenario setup: (scenario, scheduler factory, health config).
Setup = Tuple[Scenario, Callable[[], Scheduler], Optional[HealthConfig]]


def _coda() -> Scheduler:
    return CodaScheduler(CodaConfig())


def _chaos_coda() -> Scheduler:
    # Mirror the CLI's chaos construction: flap cooldown armed, restart
    # budget enforced.
    config = CodaConfig(
        eliminator=EliminatorConfig(flap_cooldown_s=CHAOS_FLAP_COOLDOWN_S)
    )
    return CodaScheduler(config, restart_policy=RestartPolicy(max_restarts=3))


def replay_1day(quick: bool) -> Setup:
    """The acceptance scenario: paper-scale 1-day CODA replay."""
    days = 0.1 if quick else 1.0
    return paper_scale_scenario(duration_days=days, seed=0), _coda, None


def chaos_replay(quick: bool) -> Setup:
    """Faulted replay with health tracking and restart budgets armed."""
    if quick:
        scenario = small_scenario(duration_days=0.2, seed=5).with_faults(
            FaultConfig(seed=7, node_mtbf_s=2 * 3600.0)
        )
    else:
        scenario = paper_scale_scenario(duration_days=0.5, seed=0).with_faults(
            FaultConfig(seed=7, node_mtbf_s=6 * 3600.0)
        )
    return scenario, _chaos_coda, HealthConfig(quarantine_threshold=1.0)


def tuning_storm(quick: bool) -> Setup:
    """A small cluster flooded with GPU jobs: the adaptive allocator's
    tuning loop and the placement slimming ladder dominate."""
    scenario = Scenario(
        cluster_config=small_cluster(nodes=8),
        trace_config=TraceConfig(
            duration_days=0.05 if quick else 0.25,
            gpu_jobs_per_day=1600.0,
            cpu_jobs_per_day=400.0,
            seed=0,
        ),
        drain_s=2 * 3600.0,
    )
    return scenario, _coda, None


def replay_1week_200node(quick: bool) -> Setup:
    """Week-long 200-node / 1,000-GPU replay (2.5x paper scale)."""
    days = 0.05 if quick else 7.0
    return week_scale_scenario(duration_days=days, seed=0), _coda, None


SCENARIOS: Dict[str, Callable[[bool], Setup]] = {
    "replay_1day": replay_1day,
    "chaos_replay": chaos_replay,
    "tuning_storm": tuning_storm,
    "replay_1week_200node": replay_1week_200node,
}


def run_one(name: str, *, quick: bool) -> Dict[str, object]:
    """Benchmark one scenario: a timed unprofiled run, then a profiled one."""
    build = SCENARIOS[name]

    scenario, make_scheduler, health = build(quick)
    result, wall_s = timed(
        lambda: run_scenario(scenario, make_scheduler(), health_config=health)
    )
    entry: Dict[str, object] = {
        "events_fired": result.events_fired,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(result.events_fired / wall_s, 1),
        "peak_rss_kb": peak_rss_kb(),
    }

    scenario, make_scheduler, health = build(quick)
    profiler = profiling.enable()
    try:
        _, profiled_wall_s = timed(
            lambda: run_scenario(
                scenario, make_scheduler(), health_config=health
            )
        )
    finally:
        profiling.disable()
    entry["time_shares"] = {
        section: {"seconds": round(seconds, 3), "share": round(share, 4)}
        for section, seconds, share in profiler.time_shares(profiled_wall_s)
    }
    return entry


#: Trace seeds of the matrix mode's replica fan-out.
MATRIX_SEEDS = (0, 1, 2, 3)


def matrix_specs(quick: bool) -> list:
    """The scenario matrix: every policy × every replica seed.

    This is the multi-seed fan-out shape every sweep in the evaluation
    reduces to — independent runs differing only in policy and trace seed.
    """
    days = 0.05 if quick else 0.25
    base = paper_scale_scenario(duration_days=days, seed=0)
    return grid_specs(base, schedulers=SCHEDULER_NAMES, seeds=MATRIX_SEEDS)


def run_matrix(*, quick: bool, jobs: int) -> Dict[str, object]:
    """Aggregate wall-clock of the matrix at jobs=1 vs ``jobs`` workers.

    Both passes run uncached (pure compute); the parallel pass must
    reproduce the serial results byte-for-byte or the benchmark aborts.
    The parallel pass runs under the sweep supervisor — the production
    fan-out path — so its crash/retry machinery's overhead is what gets
    timed, not the bare ``multiprocessing.Pool``.
    """
    from repro.sweep import SupervisorConfig

    specs = matrix_specs(quick)
    print(f"[bench] matrix: {len(specs)} runs serial ...", flush=True)
    serial_results, serial_wall = fanout_timed(specs, jobs=1)
    print(f"[bench] matrix: {len(specs)} runs at --jobs {jobs} ...", flush=True)
    parallel_results, parallel_wall = fanout_timed(
        specs, jobs=jobs, supervisor=SupervisorConfig()
    )
    for spec, serial, parallel in zip(specs, serial_results, parallel_results):
        if json.dumps(run_result_to_dict(serial), sort_keys=True) != json.dumps(
            run_result_to_dict(parallel), sort_keys=True
        ):
            raise RuntimeError(
                f"parallel result diverged from serial for {spec.scheduler} "
                f"seed {spec.seed}"
            )
    return {
        "runs": len(specs),
        "jobs": jobs,
        # Context for the speedup: fan-out cannot beat physical cores, so
        # a 1-core host legitimately records < 1x (spawn overhead, no
        # parallelism) while the byte-identity assertion still bites.
        "host_cpus": os.cpu_count() or 1,
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2),
        "byte_identical": True,
    }


def load_json(path: Path) -> Dict[str, object]:
    if path.exists():
        with path.open() as handle:
            return json.load(handle)
    return {"schema": SCHEMA_VERSION}


def check_regressions(
    fresh: Dict[str, Dict[str, object]],
    committed: Dict[str, object],
    *,
    mode: str,
    tolerance: float,
    rerun: Optional[Callable[[str], Dict[str, object]]] = None,
    retries: int = 2,
) -> int:
    """Compare fresh events/sec against the committed ``current`` numbers.

    Returns the number of regressed scenarios (0 = gate passes).  Missing
    committed entries are skipped with a notice, so adding a scenario does
    not break the gate before its numbers are committed.

    The quick variants finish in tens of milliseconds, where one unlucky
    host-scheduling blip can shave 25 % off a single reading.  When
    ``rerun`` is given, a below-floor scenario is therefore re-measured up
    to ``retries`` more times and only counted as regressed if *every*
    attempt lands below the floor — a genuine regression fails all of
    them, while a noise outlier clears the bar on a repeat.
    """
    reference = committed.get("current", {}).get(mode, {})
    regressions = 0
    for name, entry in fresh.items():
        pinned = reference.get(name)
        if pinned is None:
            print(f"[check] {name}: no committed {mode} number, skipping")
            continue
        pinned_eps = float(pinned["events_per_sec"])
        fresh_eps = float(entry["events_per_sec"])
        floor = pinned_eps * (1.0 - tolerance)
        attempts = 0
        while fresh_eps < floor and rerun is not None and attempts < retries:
            attempts += 1
            print(
                f"[check] {name}: {fresh_eps:.0f} ev/s below floor "
                f"{floor:.0f}, re-measuring (attempt {attempts + 1})"
            )
            fresh_eps = float(rerun(name)["events_per_sec"])
        verdict = "OK" if fresh_eps >= floor else "REGRESSED"
        print(
            f"[check] {name}: {fresh_eps:.0f} ev/s vs committed "
            f"{pinned_eps:.0f} (floor {floor:.0f}) -> {verdict}"
        )
        if fresh_eps < floor:
            regressions += 1
    return regressions


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="run the shortened scenario variants (the CI smoke set)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="record results under the 'baseline' section instead of "
        "'current' (re-pinning the pre-optimization reference)",
    )
    parser.add_argument(
        "--scenario", choices=sorted(SCENARIOS), action="append",
        help="run only the named scenario(s); default: all",
    )
    parser.add_argument(
        "--matrix", action="store_true",
        help="instead of the per-scenario throughput set, time the "
        "policy×seed scenario matrix at --jobs 1 vs --jobs N and record "
        "the aggregate fan-out speedup under the 'matrix' section",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the --matrix parallel pass "
        "(default: the machine's CPU count)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check-against", type=Path, metavar="PATH",
        help="after running, fail if any scenario's events/sec is more "
        "than --tolerance below this file's 'current' numbers",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional events/sec regression (default: 0.2)",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"

    if args.matrix:
        jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
        entry = run_matrix(quick=args.quick, jobs=jobs)
        print(
            render_table(
                ["runs", "jobs", "serial_s", "parallel_s", "speedup"],
                [
                    (
                        entry["runs"],
                        entry["jobs"],
                        entry["serial_wall_s"],
                        entry["parallel_wall_s"],
                        f"{entry['speedup']:.2f}x",
                    )
                ],
                title=f"\nbench_speed matrix ({mode}):",
            )
        )
        data = load_json(args.output)
        data["schema"] = SCHEMA_VERSION
        data.setdefault("matrix", {})[mode] = entry
        args.output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        print(f"\n[bench] wrote matrix/{mode} results to {args.output}")
        return 0

    names = args.scenario or sorted(SCENARIOS)
    fresh: Dict[str, Dict[str, object]] = {}
    for name in names:
        print(f"[bench] {name} ({mode}) ...", flush=True)
        fresh[name] = run_one(name, quick=args.quick)

    rows = [
        (
            name,
            entry["events_fired"],
            entry["wall_s"],
            entry["events_per_sec"],
            entry["peak_rss_kb"],
        )
        for name, entry in fresh.items()
    ]
    print()
    print(
        render_table(
            ["scenario", "events", "wall_s", "events/sec", "peak_rss_kb"],
            rows,
            title=f"bench_speed ({mode}):",
        )
    )

    # Read the committed reference for gating BEFORE overwriting the file
    # (the default output path is also the committed baseline path).
    committed: Optional[Dict[str, object]] = None
    if args.check_against is not None:
        committed = load_json(args.check_against)

    data = load_json(args.output)
    data["schema"] = SCHEMA_VERSION
    section = "baseline" if args.baseline else "current"
    data.setdefault(section, {}).setdefault(mode, {}).update(fresh)
    args.output.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {section}/{mode} results to {args.output}")

    if committed is not None:
        regressions = check_regressions(
            fresh,
            committed,
            mode=mode,
            tolerance=args.tolerance,
            rerun=lambda name: run_one(name, quick=args.quick),
        )
        if regressions:
            print(f"[bench] FAIL: {regressions} scenario(s) regressed")
            return 1
        print("[bench] regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
