"""Fig. 14 — how the adaptive allocator adjusts owner-requested cores.

Shape expectations against the paper: "57.1 % of the GPU jobs are
allocated 1-5 more cores, and 33.6 % of the GPU jobs are allocated 1-20
fewer cores" — i.e., the 1-2-core majority is topped up and the >10-core
tail is slimmed down.
"""

from bench_util import once

from repro.experiments.figures import fig14_tuning_histogram
from repro.metrics.report import render_table


def test_fig14_tuning_histogram(benchmark, emit):
    hist = once(benchmark, fig14_tuning_histogram)
    emit(
        "fig14_tuning_histogram",
        render_table(
            ["bucket", "fraction", "paper"],
            [
                ("1-5 more cores", f"{hist['more_1_5']:.3f}", "0.571"),
                (">5 more cores", f"{hist['more_over_5']:.3f}", "-"),
                ("1-20 fewer cores", f"{hist['fewer_1_20']:.3f}", "0.336"),
                ("unchanged", f"{hist['unchanged']:.3f}", "-"),
                ("jobs measured", f"{hist['count']:.0f}", "-"),
            ],
            title="Fig. 14: core-count adjustment vs owner request (CODA)",
        ),
    )
    more = hist["more_1_5"] + hist["more_over_5"]
    assert more >= 0.40
    assert 0.10 <= hist["fewer_1_20"] <= 0.45
    assert more > hist["fewer_1_20"]
