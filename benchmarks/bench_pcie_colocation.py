"""Sec. IV-C3 — PCIe bandwidth and co-location effects.

Shape expectations: two 1N1G jobs never contend; co-locating with a heavy
CV model in 1N2G costs the neighbour 5-10 %; NLP/speech pairs are free.
"""

from bench_util import once

from repro.experiments.figures import pcie_colocation
from repro.metrics.report import render_table


def test_pcie_colocation(benchmark, emit):
    rows = once(benchmark, pcie_colocation)
    emit(
        "pcie_colocation",
        render_table(
            ["model A", "model B", "config", "PCIe grant", "A's norm. perf"],
            [
                (a, b, c, f"{ratio:.3f}", f"{perf:.3f}")
                for a, b, c, ratio, perf in rows
            ],
            title="Sec. IV-C3: PCIe co-location",
        ),
    )
    by_pair = {(a, b, c): perf for a, b, c, _, perf in rows}
    heavy = by_pair[("alexnet", "resnet50", "1N2G")]
    assert 0.88 <= heavy <= 0.97  # the paper's 5-10 % drop band (loose)
    assert by_pair[("alexnet", "alexnet", "1N1G")] == 1.0
    assert by_pair[("transformer", "deepspeech", "1N2G")] == 1.0
