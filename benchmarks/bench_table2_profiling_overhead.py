"""Table II — profiling steps and iterations to find the optimal cores.

Shape expectations: every model converges in 3-4 profiling steps of 90
seconds, training tens to hundreds of iterations in the process (the paper
reports 4/4/3/3/4/3/3/3 steps and ~260/70/180/150/35/260/28/45 iterations).
"""

from bench_util import once

from repro.experiments.figures import table2_profiling_overhead
from repro.metrics.report import render_table

PAPER_STEPS = {
    "alexnet": 4,
    "vgg16": 4,
    "inception3": 3,
    "resnet50": 3,
    "bat": 4,
    "transformer": 3,
    "wavenet": 3,
    "deepspeech": 3,
}
PAPER_ITERATIONS = {
    "alexnet": 260,
    "vgg16": 70,
    "inception3": 180,
    "resnet50": 150,
    "bat": 35,
    "transformer": 260,
    "wavenet": 28,
    "deepspeech": 45,
}


def test_table2_profiling_overhead(benchmark, emit):
    rows = once(benchmark, table2_profiling_overhead)
    emit(
        "table2_profiling_overhead",
        render_table(
            [
                "model",
                "N_start",
                "optimum",
                "profiling steps",
                "iterations",
                "paper steps",
                "paper iters",
            ],
            [
                (
                    r.model,
                    r.n_start,
                    r.optimal,
                    r.profiling_steps,
                    r.training_iterations,
                    PAPER_STEPS[r.model],
                    f"~{PAPER_ITERATIONS[r.model]}",
                )
                for r in rows
            ],
            title="Table II: overhead of identifying the optimal core number",
        ),
    )
    for row in rows:
        assert row.profiling_steps == PAPER_STEPS[row.model], row.model
        assert row.training_iterations <= PAPER_ITERATIONS[row.model] * 1.15
        assert row.training_iterations >= PAPER_ITERATIONS[row.model] * 0.75
