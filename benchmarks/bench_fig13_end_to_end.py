"""Fig. 13 — end-to-end latency of representative GPU jobs, FIFO vs CODA.

Shape expectations: CODA reduces queueing and processing time
simultaneously for most jobs; a few very short jobs may not amortize the
profiling overhead, but their queueing savings still win end-to-end.
"""

from bench_util import once

from repro.experiments.figures import fig13_end_to_end
from repro.metrics.report import render_table


def test_fig13_end_to_end(benchmark, emit):
    rows = once(benchmark, fig13_end_to_end)
    emit(
        "fig13_end_to_end",
        render_table(
            [
                "job",
                "fifo queue (s)",
                "fifo proc (s)",
                "coda queue (s)",
                "coda proc (s)",
            ],
            [
                (job, f"{fq:.0f}", f"{fp:.0f}", f"{cq:.0f}", f"{cp:.0f}")
                for job, fq, fp, cq, cp in rows
            ],
            title="Fig. 13: end-to-end latency of representative GPU jobs",
        ),
    )
    assert rows, "no jobs finished under both policies"
    wins = sum(
        1 for _, fq, fp, cq, cp in rows if (cq + cp) <= (fq + fp) * 1.05
    )
    assert wins >= 0.7 * len(rows)
    queue_wins = sum(1 for _, fq, _, cq, _ in rows if cq <= fq + 1.0)
    assert queue_wins >= 0.7 * len(rows)
