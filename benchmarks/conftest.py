"""Shared benchmark plumbing.

Every benchmark regenerates one paper figure/table, prints its rows, and
writes them to ``results/<name>.txt`` so the regenerated evaluation can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from bench_util import RESULTS_DIR


@pytest.fixture
def emit(capsys):
    """Print a rendered figure and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n=== {name} ===")
            print(text)

    return _emit
