"""Fig. 5 — the optimal CPU core count per model, configuration, and batch.

Shape expectations (Sec. IV-B): simpler CV nets need more cores; every
model but AlexNet is batch-independent; single-node demand scales linearly
with GPU count; multi-node configurations need at most two cores.
"""

from bench_util import once

from repro.experiments.figures import fig5_optimal_cores
from repro.metrics.report import render_table


def test_fig5_optimal_cores(benchmark, emit):
    rows = once(benchmark, fig5_optimal_cores)
    emit(
        "fig05_optimal_cores",
        render_table(
            ["model", "config", "batch", "optimal cores"],
            rows,
            title="Fig. 5: optimal CPU core count",
        ),
    )
    by_key = {(m, c, b): cores for m, c, b, cores in rows}
    assert by_key[("alexnet", "1N1G", "default")] == 8
    assert by_key[("transformer", "1N1G", "default")] == 2
    assert all(
        by_key[(m, "2N4G", b)] <= 2
        for m, c, b, _ in rows
        if c == "2N4G"
        for b in ("default",)
    )
