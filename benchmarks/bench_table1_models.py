"""Table I — the representative DNN models.

Renders the catalog against the paper's table (model, scenario, type,
dataset) plus the calibration anchors each model carries.
"""

from bench_util import once

from repro.metrics.report import render_table
from repro.perfmodel.catalog import ALL_MODEL_NAMES, get_model

PAPER_TABLE1 = {
    "alexnet": ("CV", "CNN", "ImageNet"),
    "vgg16": ("CV", "CNN", "ImageNet"),
    "inception3": ("CV", "CNN", "ImageNet"),
    "resnet50": ("CV", "CNN", "ImageNet"),
    "bat": ("NLP", "RNN", "SQUAD"),
    "transformer": ("NLP", "-", "WMT16"),
    "wavenet": ("Speech", "CNN", "VCTK"),
    "deepspeech": ("Speech", "RNN", "Common Voice"),
}


def test_table1_models(benchmark, emit):
    profiles = once(
        benchmark, lambda: [get_model(name) for name in ALL_MODEL_NAMES]
    )
    emit(
        "table1_models",
        render_table(
            [
                "model",
                "scenario",
                "type",
                "dataset",
                "default BS",
                "iter time (s)",
                "optimum (1N1G)",
            ],
            [
                (
                    p.name,
                    p.domain.value,
                    p.arch,
                    p.dataset,
                    p.default_batch,
                    f"{p.iter_time_s:.2f}",
                    p.optimal_cores_1g,
                )
                for p in profiles
            ],
            title="Table I: representative DNN models",
        ),
    )
    for profile in profiles:
        scenario, _, _ = PAPER_TABLE1[profile.name]
        assert profile.domain.value.lower() == scenario.lower()
    assert len(profiles) == 8
