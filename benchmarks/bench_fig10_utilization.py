"""Fig. 10 — GPU active rate and utilization: FIFO vs DRF vs CODA.

The headline result.  Shape expectations against the paper's 45.4 / 44.7 /
62.1 % utilization and 83.5 / 83.3 / 91.2 % active rates: the baselines
land in the low-40s and are nearly tied; CODA wins by >= 15 points; during
queueing periods CODA keeps the most GPUs active.
"""

from bench_util import once

from repro.experiments.figures import fig10_utilization
from repro.metrics.report import render_table

PAPER = {
    "fifo": (0.454, 0.835),
    "drf": (0.447, 0.833),
    "coda": (0.621, 0.912),
}


def test_fig10_utilization(benchmark, emit):
    rows = once(benchmark, fig10_utilization)
    emit(
        "fig10_utilization",
        render_table(
            [
                "policy",
                "gpu util",
                "active rate",
                "busy-period active",
                "paper util",
                "paper active",
            ],
            [
                (
                    name,
                    f"{util:.3f}",
                    f"{active:.3f}",
                    f"{busy:.3f}" if busy is not None else "n/a (never queued)",
                    f"{PAPER[name][0]:.3f}",
                    f"{PAPER[name][1]:.3f}",
                )
                for name, util, active, busy in rows
            ],
            title="Fig. 10: GPU utilization & active rate per policy",
        ),
    )
    by_name = {name: (util, active, busy) for name, util, active, busy in rows}
    assert by_name["coda"][0] - by_name["fifo"][0] >= 0.15
    assert by_name["coda"][0] - by_name["drf"][0] >= 0.15
    assert abs(by_name["fifo"][0] - by_name["drf"][0]) < 0.05
    # CODA during queueing periods keeps >= 85 % of GPUs busy; never
    # queueing at all satisfies the claim vacuously (and more strongly).
    coda_busy = by_name["coda"][2]
    assert coda_busy is None or coda_busy >= 0.85
