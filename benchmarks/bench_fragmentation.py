"""Sec. VI-C — GPU fragmentation per policy.

Shape expectations against the paper's 14.3 % (FIFO), 14.6 % (DRF), and
<1 % (CODA): the baselines strand GPUs by an order of magnitude more than
CODA, and they do so while GPU jobs are queued most of the time.
"""

from bench_util import once

from repro.experiments.figures import fragmentation_summary
from repro.metrics.report import render_table

PAPER = {"fifo": 0.143, "drf": 0.146, "coda": 0.01}


def test_fragmentation(benchmark, emit):
    rows = once(benchmark, fragmentation_summary)
    emit(
        "fragmentation",
        render_table(
            [
                "policy",
                "frag while queueing",
                "average frag",
                "time contended",
                "paper avg",
            ],
            [
                (
                    name,
                    f"{contended:.3f}",
                    f"{average:.3f}",
                    f"{share:.3f}",
                    f"{PAPER[name]:.3f}" if name != "coda" else "<0.010",
                )
                for name, contended, average, share in rows
            ],
            title="Sec. VI-C: GPU fragmentation rate",
        ),
    )
    by_name = {name: (contended, average, share) for name, contended, average, share in rows}
    assert by_name["coda"][1] < 0.01
    assert by_name["fifo"][1] > 5 * max(by_name["coda"][1], 1e-4)
    assert by_name["drf"][1] > 5 * max(by_name["coda"][1], 1e-4)
    assert by_name["fifo"][2] > 0.5
