"""Fig. 7 — normalized 1N1G performance under LLC/bandwidth pressure.

The HEAT co-runner's thread count sweeps the pressure.  Shape expectations:
NLP models lose >= 50 % at high pressure; AlexNet is the only sensitive CV
model; DeepSpeech is more sensitive than Wavenet; LLC pressure alone moves
nobody (implicitly covered: HEAT's LLC footprint rides along and the CV
models still do not budge).
"""

from bench_util import once

from repro.experiments.figures import fig7_contention
from repro.metrics.report import render_table


def test_fig7_contention(benchmark, emit):
    rows = once(benchmark, fig7_contention)
    emit(
        "fig07_contention",
        render_table(
            ["model", "heat threads", "node pressure", "normalized perf"],
            [
                (m, t, f"{p:.3f}", f"{perf:.3f}")
                for m, t, p, perf in rows
            ],
            title="Fig. 7: normalized performance under HEAT pressure",
        ),
    )
    at_peak = {m: perf for m, t, _, perf in rows if t == 16}
    assert at_peak["bat"] <= 0.55
    assert at_peak["transformer"] <= 0.55
    assert at_peak["vgg16"] >= 0.9
    assert at_peak["deepspeech"] < at_peak["wavenet"]
    assert at_peak["alexnet"] < 0.8
