"""Sec. VI-E — effectiveness of the contention eliminator.

Two views:

* **Controlled microbenchmark** — one contention-sensitive NLP trainer
  co-located with HEAT, with vs without the eliminator.  Deterministic;
  this is where the paper's "memory bandwidth-intensive CPU jobs degrade
  the performance of DNN training jobs" claim shows at full strength.
* **Cluster ablation** at elevated heavy-job incidence (3 % vs the paper's
  0.5 %).  The robust cluster indicator is hot-node exposure (node-samples
  past the 75 % threshold with trainers aboard); aggregate utilization
  moves little because the adaptive allocator partially compensates
  contention with extra cores (divergence documented in EXPERIMENTS.md).
"""

from bench_util import once

from repro.experiments.figures import eliminator_ablation, eliminator_microbenchmark
from repro.metrics.report import render_table


def test_eliminator_microbenchmark(benchmark, emit):
    outcomes = once(benchmark, eliminator_microbenchmark)
    quiet = outcomes["quiet_node"]
    emit(
        "eliminator_microbenchmark",
        render_table(
            ["configuration", "trainer runtime (s)", "slowdown vs quiet"],
            [
                (label, f"{runtime:.0f}", f"{runtime / quiet:.2f}x")
                for label, runtime in outcomes.items()
            ],
            title="Sec. VI-E (micro): NLP trainer + HEAT, one node",
        ),
    )
    assert outcomes["without_eliminator"] > 1.3 * outcomes["with_eliminator"]
    assert outcomes["with_eliminator"] < 1.2 * quiet


def test_eliminator_cluster_ablation(benchmark, emit):
    outcomes = once(benchmark, lambda: eliminator_ablation(heat_fraction=0.03))
    emit(
        "eliminator_ablation",
        render_table(
            [
                "configuration",
                "gpu util",
                "hot node-samples",
                "mean gpu queue",
                "throttles",
                "halvings",
                "finished gpu jobs",
            ],
            [
                (
                    label,
                    f"{stats['gpu_utilization']:.4f}",
                    f"{stats['hot_node_samples']:.0f}",
                    f"{stats['mean_gpu_queue_depth']:.2f}",
                    f"{stats['throttle_actions']:.0f}",
                    f"{stats['core_halvings']:.0f}",
                    f"{stats['finished_gpu_jobs']:.0f}",
                )
                for label, stats in outcomes.items()
            ],
            title="Sec. VI-E: contention-eliminator cluster ablation (3% HEAT)",
        ),
    )
    enabled = outcomes["with_eliminator"]
    disabled = outcomes["without_eliminator"]
    assert enabled["throttle_actions"] + enabled["core_halvings"] > 0
    assert disabled["throttle_actions"] == 0
    # The eliminator removes a large share of trainer exposure to
    # saturated memory (it cannot remove pressure the trainers cause
    # themselves, nor touch exempt inference jobs).
    assert enabled["hot_node_samples"] <= 0.7 * disabled["hot_node_samples"]
    # And costs nothing material in aggregate utilization.
    assert abs(enabled["gpu_utilization"] - disabled["gpu_utilization"]) < 0.02