"""Fig. 2 — trace characteristics and status-quo queueing.

Shape expectations from Sec. III: ~75 % CPU jobs / 25 % GPU jobs; 76.1 % of
GPU jobs request 1-2 cores per GPU and 15.3 % more than 10; under FIFO the
GPU jobs queue for minutes-to-hours while most CPU jobs start in seconds.
"""

from bench_util import once

from repro.experiments.figures import fig2_job_characteristics
from repro.metrics.report import render_cdf, render_table


def test_fig2_job_characteristics(benchmark, emit):
    stats = once(benchmark, fig2_job_characteristics)
    table = render_table(
        ["metric", "value", "paper"],
        [
            ("CPU-job share", f"{stats['cpu_job_fraction']:.3f}", "0.75"),
            ("GPU-job share", f"{stats['gpu_job_fraction']:.3f}", "0.25"),
            ("request 1-2 cores/GPU", f"{stats['requested_1_2']:.3f}", "0.761"),
            ("request >10 cores/GPU", f"{stats['requested_over_10']:.3f}", "0.153"),
            ("GPU wait > 3 min (FIFO)", f"{stats['gpu_wait_over_3min']:.3f}", "0.481"),
            ("GPU wait > 10 min (FIFO)", f"{stats['gpu_wait_over_10min']:.3f}", "0.413"),
            ("CPU start <= 10 s (FIFO)", f"{stats['cpu_within_10s']:.3f}", "~0.874"),
        ],
        title="Fig. 2: job characteristics and FIFO queueing",
    )
    groups = render_table(
        ["tenant group", "gpu jobs", "cpu jobs"],
        [
            (group, counts["gpu"], counts["cpu"])
            for group, counts in sorted(stats["group_breakdown"].items())
        ],
        title="Fig. 2a: job-type breakdown per tenant group",
    )
    cdfs = "\n\n".join(
        (
            render_cdf("gpu queueing (s)", stats["gpu_queue_cdf"]),
            render_cdf("cpu queueing (s)", stats["cpu_queue_cdf"]),
        )
    )
    emit("fig02_job_characteristics", table + "\n\n" + groups + "\n\n" + cdfs)

    assert abs(stats["cpu_job_fraction"] - 0.75) < 0.05
    assert abs(stats["requested_1_2"] - 0.761) < 0.05
    assert stats["gpu_wait_over_3min"] > 0.4
    assert stats["cpu_within_10s"] > 0.85
    # Fig. 2a: the research lab contributes most GPU jobs; companies and
    # CPU-only users contribute most CPU jobs.
    breakdown = stats["group_breakdown"]
    assert breakdown["research_lab"]["gpu"] > breakdown["ai_company"]["gpu"]
    assert (
        breakdown["ai_company"]["cpu"] + breakdown["cpu_only"]["cpu"]
        > 5 * breakdown["research_lab"]["cpu"]
    )
