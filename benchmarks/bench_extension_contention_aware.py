"""Extension: contention-aware GPU placement.

Beyond the paper's design (which reacts to contention via the eliminator),
this extension *avoids* it at placement time: trainers prefer nodes whose
memory-bandwidth and PCIe budgets can absorb them at their full core
count.  Evaluated with the eliminator disabled so the placement effect is
isolated, at two HEAT incidences.

Finding (worth the bench existing): the cluster-level effect is a genuine
trade-off.  At high hog incidence, avoidance cuts trainer exposure to
saturated memory substantially; but steering placements away from hot
nodes also costs packing efficiency, so aggregate utilization moves within
a couple of points either way.  The deterministic per-job benefit is
established by `tests/core/test_contention_aware.py`.
"""

from bench_util import once

from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.experiments.scenarios import Scenario, paper_scale_scenario, run_scenario
from repro.metrics.report import render_table
from repro.workload.tracegen import TraceConfig


def _run(aware: bool, heat_fraction: float):
    trace_config = TraceConfig(
        duration_days=1.0,
        gpu_jobs_per_day=1250.0,
        cpu_jobs_per_day=3750.0,
        heat_fraction=heat_fraction,
        seed=11,
    )
    base = paper_scale_scenario(duration_days=1.0, seed=11)
    scenario = Scenario(
        cluster_config=base.cluster_config,
        trace_config=trace_config,
        drain_s=base.drain_s,
    )
    config = CodaConfig(
        contention_aware_placement=aware,
        eliminator=EliminatorConfig(enabled=False),
    )
    result = run_scenario(scenario, CodaScheduler(config))
    collector = result.collector
    return {
        "gpu_utilization": collector.gpu_utilization.mean(),
        "hot_node_samples": float(sum(collector.hot_nodes.values())),
        "finished_gpu_jobs": float(result.finished_gpu_jobs),
    }


def test_contention_aware_placement(benchmark, emit):
    outcomes = once(
        benchmark,
        lambda: {
            (label, heat): _run(aware, heat)
            for heat in (0.02, 0.05)
            for label, aware in (("aware", True), ("unaware", False))
        },
    )
    emit(
        "extension_contention_aware",
        render_table(
            [
                "heat share",
                "placement",
                "gpu util",
                "hot node-samples",
                "finished gpu jobs",
            ],
            [
                (
                    f"{heat:.0%}",
                    label,
                    f"{stats['gpu_utilization']:.4f}",
                    f"{stats['hot_node_samples']:.0f}",
                    f"{stats['finished_gpu_jobs']:.0f}",
                )
                for (label, heat), stats in sorted(
                    outcomes.items(), key=lambda kv: (kv[0][1], kv[0][0])
                )
            ],
            title="Extension: contention-aware placement (eliminator off)",
        ),
    )
    # At high hog incidence the avoidance clearly reduces exposure...
    high_aware = outcomes[("aware", 0.05)]
    high_unaware = outcomes[("unaware", 0.05)]
    assert high_aware["hot_node_samples"] <= 0.85 * high_unaware["hot_node_samples"]
    # ...while aggregate utilization stays within the packing trade-off
    # band at both incidences.
    for heat in (0.02, 0.05):
        aware = outcomes[("aware", heat)]
        unaware = outcomes[("unaware", heat)]
        assert abs(aware["gpu_utilization"] - unaware["gpu_utilization"]) <= 0.03
        assert aware["finished_gpu_jobs"] >= 0.98 * unaware["finished_gpu_jobs"]