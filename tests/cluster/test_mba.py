"""MBA throttle-controller semantics."""

import pytest

from repro.cluster.mba import MBA_LEVELS, MbaController
from repro.cluster.mbm import BandwidthMonitor


def _controller(supported=True):
    monitor = BandwidthMonitor(100.0)
    monitor.register("job", 50.0, is_cpu_job=True)
    return MbaController(monitor=monitor, supported=supported), monitor


class TestLevels:
    def test_levels_descend_from_unthrottled(self):
        assert MBA_LEVELS[0] == 1.0
        assert list(MBA_LEVELS) == sorted(MBA_LEVELS, reverse=True)

    def test_default_level_is_unthrottled(self):
        controller, _ = _controller()
        assert controller.throttle_level("job") == 1.0


class TestThrottleDown:
    def test_first_step_goes_to_90_percent(self):
        controller, monitor = _controller()
        level = controller.throttle_down("job")
        assert level == pytest.approx(0.9)
        assert monitor.usage_of("job").granted == pytest.approx(45.0)

    def test_repeated_steps_descend(self):
        controller, _ = _controller()
        controller.throttle_down("job")
        assert controller.throttle_down("job") == pytest.approx(0.8)

    def test_bottoms_out_at_ten_percent(self):
        controller, _ = _controller()
        for _ in range(20):
            level = controller.throttle_down("job")
        assert level == pytest.approx(0.1)

    def test_unsupported_node_raises(self):
        controller, _ = _controller(supported=False)
        with pytest.raises(RuntimeError):
            controller.throttle_down("job")


class TestSetLevel:
    def test_explicit_level(self):
        controller, monitor = _controller()
        controller.set_level("job", 0.5)
        assert monitor.usage_of("job").granted == pytest.approx(25.0)

    def test_rejects_non_mba_level(self):
        controller, _ = _controller()
        with pytest.raises(ValueError):
            controller.set_level("job", 0.55)

    def test_level_one_clears_throttle(self):
        controller, monitor = _controller()
        controller.set_level("job", 0.5)
        controller.set_level("job", 1.0)
        assert controller.throttled_jobs() == {}
        assert monitor.usage_of("job").granted == pytest.approx(50.0)


class TestRelease:
    def test_release_lifts_cap(self):
        controller, monitor = _controller()
        controller.throttle_down("job")
        controller.release("job")
        assert monitor.usage_of("job").granted == pytest.approx(50.0)
        assert controller.throttle_level("job") == 1.0

    def test_release_unknown_is_silent(self):
        controller, _ = _controller()
        controller.release("ghost")

    def test_release_after_unregister_is_safe(self):
        controller, monitor = _controller()
        controller.throttle_down("job")
        monitor.unregister("job")
        controller.release("job")
