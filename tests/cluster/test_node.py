"""Node allocation lifecycle and contention registration."""

import pytest

from repro.cluster.node import Node, PcieMeter
from repro.config import NodeConfig


@pytest.fixture
def node() -> Node:
    return Node(node_id=0, config=NodeConfig(cores=28, gpus=4))


class TestCapacity:
    def test_fresh_node_is_empty(self, node):
        assert node.free_cpus == 28
        assert node.free_gpus == 4
        assert node.used_cpus == 0

    def test_can_fit_respects_both_dimensions(self, node):
        assert node.can_fit(28, 4)
        assert not node.can_fit(29, 0)
        assert not node.can_fit(0, 5)


class TestAllocate:
    def test_allocate_grants_specific_gpus(self, node):
        share = node.allocate("j1", 4, 2)
        assert share.cpus == 4
        assert share.gpu_ids == (0, 1)
        assert node.free_gpus == 2
        assert node.free_cpus == 24

    def test_gpu_devices_record_owner(self, node):
        node.allocate("j1", 2, 1)
        assert node.gpus[0].owner == "j1"
        assert node.gpus[1].owner is None

    def test_cpu_only_allocation(self, node):
        share = node.allocate("cpu1", 8, 0)
        assert share.gpu_ids == ()
        assert node.free_cpus == 20

    def test_double_allocate_same_job_raises(self, node):
        node.allocate("j1", 2, 1)
        with pytest.raises(RuntimeError):
            node.allocate("j1", 2, 1)

    def test_overallocation_raises(self, node):
        node.allocate("j1", 20, 0)
        with pytest.raises(RuntimeError):
            node.allocate("j2", 10, 0)

    def test_negative_request_raises(self, node):
        with pytest.raises(ValueError):
            node.allocate("j1", -1, 0)

    def test_second_job_gets_remaining_gpus(self, node):
        node.allocate("j1", 2, 2)
        share = node.allocate("j2", 2, 2)
        assert share.gpu_ids == (2, 3)


class TestRelease:
    def test_release_returns_everything(self, node):
        node.allocate("j1", 4, 2)
        node.release("j1")
        assert node.free_cpus == 28
        assert node.free_gpus == 4
        assert not node.holds("j1")

    def test_release_unknown_raises(self, node):
        with pytest.raises(RuntimeError):
            node.release("ghost")

    def test_release_clears_contention_registrations(self, node):
        node.allocate("j1", 4, 2)
        node.register_memory_traffic(
            "j1", 10.0, is_cpu_job=False, llc_mb=2.0, pcie_gbps=8.0
        )
        node.release("j1")
        assert not node.bandwidth.has("j1")
        assert node.pcie.total_demand == 0.0
        assert node.llc_pressure == 0.0

    def test_release_clears_mba_throttle(self, node):
        node.allocate("cpu1", 8, 0)
        node.register_memory_traffic("cpu1", 50.0, is_cpu_job=True)
        node.mba.throttle_down("cpu1")
        node.release("cpu1")
        assert node.mba.throttled_jobs() == {}


class TestResize:
    def test_grow(self, node):
        node.allocate("j1", 4, 1)
        share = node.resize_cpus("j1", 8)
        assert share.cpus == 8
        assert node.free_cpus == 20

    def test_shrink(self, node):
        node.allocate("j1", 8, 1)
        node.resize_cpus("j1", 2)
        assert node.free_cpus == 26

    def test_resize_keeps_gpus(self, node):
        node.allocate("j1", 4, 2)
        share = node.resize_cpus("j1", 6)
        assert share.gpu_ids == (0, 1)

    def test_grow_beyond_free_raises(self, node):
        node.allocate("j1", 4, 1)
        node.allocate("j2", 22, 0)
        with pytest.raises(RuntimeError):
            node.resize_cpus("j1", 8)

    def test_resize_unknown_raises(self, node):
        with pytest.raises(RuntimeError):
            node.resize_cpus("ghost", 4)


class TestContentionRegistration:
    def test_requires_residency(self, node):
        with pytest.raises(RuntimeError):
            node.register_memory_traffic("ghost", 5.0, is_cpu_job=True)

    def test_llc_pressure_accumulates(self, node):
        node.allocate("a", 2, 0)
        node.allocate("b", 2, 0)
        node.register_memory_traffic("a", 1.0, is_cpu_job=True, llc_mb=20.0)
        node.register_memory_traffic("b", 1.0, is_cpu_job=True, llc_mb=20.0)
        assert node.llc_pressure == pytest.approx(40.0 / 38.5)


class TestGpuUtilization:
    def test_set_and_average(self, node):
        node.allocate("j1", 4, 2)
        node.set_gpu_utilization("j1", 0.8)
        assert node.mean_active_gpu_utilization() == pytest.approx(0.8)

    def test_average_is_none_with_no_owners(self, node):
        assert node.mean_active_gpu_utilization() is None

    def test_out_of_range_raises(self, node):
        node.allocate("j1", 4, 1)
        with pytest.raises(ValueError):
            node.set_gpu_utilization("j1", 1.5)

    def test_unknown_job_raises(self, node):
        with pytest.raises(RuntimeError):
            node.set_gpu_utilization("ghost", 0.5)


class TestPcieMeter:
    def test_undersubscribed_ratio_is_one(self):
        meter = PcieMeter(capacity_gbps=32.0)
        meter.register("a", 12.0)
        meter.register("b", 12.0)
        assert meter.grant_ratio() == 1.0

    def test_oversubscribed_degrades_proportionally(self):
        meter = PcieMeter(capacity_gbps=32.0)
        meter.register("a", 24.0)
        meter.register("b", 24.0)
        assert meter.grant_ratio() == pytest.approx(32.0 / 48.0)

    def test_unregister(self):
        meter = PcieMeter(capacity_gbps=32.0)
        meter.register("a", 24.0)
        meter.unregister("a")
        assert meter.total_demand == 0.0
