"""ResourceVector arithmetic and DRF shares."""

import pytest

from repro.cluster.resources import ResourceVector


class TestConstruction:
    def test_defaults_to_zero(self):
        vector = ResourceVector()
        assert vector.cpus == 0 and vector.gpus == 0

    def test_rejects_negative_cpus(self):
        with pytest.raises(ValueError):
            ResourceVector(cpus=-1)

    def test_rejects_negative_gpus(self):
        with pytest.raises(ValueError):
            ResourceVector(gpus=-1)

    def test_is_hashable(self):
        assert len({ResourceVector(1, 2), ResourceVector(1, 2)}) == 1


class TestArithmetic:
    def test_addition(self):
        assert ResourceVector(1, 2) + ResourceVector(3, 4) == ResourceVector(4, 6)

    def test_subtraction(self):
        assert ResourceVector(5, 5) - ResourceVector(2, 3) == ResourceVector(3, 2)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1) - ResourceVector(2, 0)

    def test_scaled(self):
        assert ResourceVector(2, 1).scaled(3) == ResourceVector(6, 3)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1).scaled(-1)


class TestFits:
    def test_fits_when_both_dimensions_fit(self):
        assert ResourceVector(2, 1).fits(ResourceVector(4, 2))

    def test_does_not_fit_on_cpu_overflow(self):
        assert not ResourceVector(5, 0).fits(ResourceVector(4, 2))

    def test_does_not_fit_on_gpu_overflow(self):
        assert not ResourceVector(0, 3).fits(ResourceVector(4, 2))

    def test_exact_fit(self):
        assert ResourceVector(4, 2).fits(ResourceVector(4, 2))

    def test_is_zero(self):
        assert ResourceVector().is_zero()
        assert not ResourceVector(1, 0).is_zero()


class TestDominantShare:
    def test_cpu_dominant(self):
        usage = ResourceVector(cpus=50, gpus=1)
        total = ResourceVector(cpus=100, gpus=100)
        assert usage.dominant_share(total) == 0.5

    def test_gpu_dominant(self):
        usage = ResourceVector(cpus=1, gpus=50)
        total = ResourceVector(cpus=100, gpus=100)
        assert usage.dominant_share(total) == 0.5

    def test_zero_capacity_dimension_is_ignored(self):
        usage = ResourceVector(cpus=10, gpus=0)
        total = ResourceVector(cpus=100, gpus=0)
        assert usage.dominant_share(total) == 0.1

    def test_all_zero_capacity_raises(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1).dominant_share(ResourceVector(0, 0))

    def test_zero_usage_is_zero(self):
        assert ResourceVector().dominant_share(ResourceVector(10, 10)) == 0.0

    def test_str_format(self):
        assert str(ResourceVector(3, 2)) == "<3c,2g>"
