"""Rack topology and the two-tier fabric."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.interconnect import Interconnect
from repro.cluster.topology import RackedInterconnect, RackTopology
from repro.config import ClusterConfig, NodeConfig


class TestRackTopology:
    def test_flat_puts_everything_in_one_rack(self):
        topology = RackTopology.flat(8)
        assert topology.num_racks == 1
        assert topology.same_rack(range(8))

    def test_uniform_fills_racks_consecutively(self):
        topology = RackTopology.uniform(10, nodes_per_rack=4)
        assert topology.rack_of(0) == 0
        assert topology.rack_of(3) == 0
        assert topology.rack_of(4) == 1
        assert topology.rack_of(9) == 2
        assert topology.num_racks == 3

    def test_nodes_in_rack(self):
        topology = RackTopology.uniform(6, nodes_per_rack=3)
        assert topology.nodes_in_rack(1) == {3, 4, 5}

    def test_same_rack(self):
        topology = RackTopology.uniform(6, nodes_per_rack=3)
        assert topology.same_rack([0, 1, 2])
        assert not topology.same_rack([2, 3])
        assert topology.same_rack([])

    def test_racks_sorted(self):
        assert RackTopology.uniform(9, 3).racks() == [0, 1, 2]

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            RackTopology.flat(2).rack_of(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RackTopology.uniform(4, 0)
        with pytest.raises(ValueError):
            RackTopology(rack_of_node={-1: 0})


class TestRackedInterconnect:
    def _fabric(self, oversubscription=4.0):
        return RackedInterconnect(
            topology=RackTopology.uniform(8, nodes_per_rack=4),
            intra_rack=Interconnect(link_gbps=1.25),
            oversubscription=oversubscription,
        )

    def test_same_rack_gets_full_speed(self):
        fabric = self._fabric()
        assert fabric.for_nodes([0, 1]).link_gbps == 1.25

    def test_cross_rack_is_oversubscribed(self):
        fabric = self._fabric(oversubscription=4.0)
        assert fabric.for_nodes([0, 4]).link_gbps == pytest.approx(1.25 / 4)

    def test_oversubscription_one_is_flat(self):
        fabric = self._fabric(oversubscription=1.0)
        assert fabric.for_nodes([0, 4]).link_gbps == 1.25

    def test_cross_rack_sync_is_slower(self):
        fabric = self._fabric(oversubscription=4.0)
        same = fabric.for_nodes([0, 1]).sync_time(500e6, 2)
        cross = fabric.for_nodes([0, 4]).sync_time(500e6, 2)
        assert cross > 3 * same

    def test_validation(self):
        with pytest.raises(ValueError):
            self._fabric(oversubscription=0.5)


class TestClusterIntegration:
    def test_default_cluster_is_flat(self):
        cluster = Cluster()
        assert cluster.topology.num_racks == 1
        assert cluster.fabric.for_nodes([0, 79]).link_gbps == 1.25

    def test_racked_cluster(self):
        cluster = Cluster(
            ClusterConfig(
                node_groups=((8, NodeConfig(gpus=4)),),
                nodes_per_rack=4,
                rack_oversubscription=4.0,
            )
        )
        assert cluster.topology.num_racks == 2
        assert cluster.fabric.for_nodes([0, 4]).link_gbps == pytest.approx(
            1.25 / 4
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes_per_rack=0)
        with pytest.raises(ValueError):
            ClusterConfig(rack_oversubscription=0.9)
