"""GPU device, allocation records, and interconnect."""

import pytest

from repro.cluster.allocation import Allocation, NodeShare
from repro.cluster.gpu import Gpu
from repro.cluster.interconnect import Interconnect
from repro.cluster.resources import ResourceVector


class TestGpu:
    def test_fresh_gpu_is_free(self):
        assert Gpu(gpu_id=0).is_free

    def test_assign_and_release(self):
        gpu = Gpu(gpu_id=0)
        gpu.assign("j1")
        assert gpu.owner == "j1"
        gpu.release("j1")
        assert gpu.is_free

    def test_double_assign_raises(self):
        gpu = Gpu(gpu_id=0)
        gpu.assign("j1")
        with pytest.raises(RuntimeError):
            gpu.assign("j2")

    def test_release_by_non_owner_raises(self):
        gpu = Gpu(gpu_id=0)
        gpu.assign("j1")
        with pytest.raises(RuntimeError):
            gpu.release("j2")

    def test_release_clears_utilization(self):
        gpu = Gpu(gpu_id=0)
        gpu.assign("j1")
        gpu.utilization = 0.9
        gpu.release("j1")
        assert gpu.utilization == 0.0


class TestNodeShare:
    def test_vector(self):
        share = NodeShare(node_id=0, cpus=4, gpu_ids=(0, 1))
        assert share.vector == ResourceVector(cpus=4, gpus=2)
        assert share.gpus == 2

    def test_negative_cpus_raises(self):
        with pytest.raises(ValueError):
            NodeShare(node_id=0, cpus=-1)


class TestAllocation:
    def _allocation(self):
        return Allocation(
            job_id="j1",
            shares=[
                NodeShare(node_id=0, cpus=4, gpu_ids=(0,)),
                NodeShare(node_id=2, cpus=4, gpu_ids=(1, 2)),
            ],
        )

    def test_totals(self):
        allocation = self._allocation()
        assert allocation.total == ResourceVector(cpus=8, gpus=3)
        assert allocation.node_ids == [0, 2]
        assert allocation.num_nodes == 2

    def test_share_on(self):
        allocation = self._allocation()
        assert allocation.share_on(2).gpus == 2
        with pytest.raises(KeyError):
            allocation.share_on(1)

    def test_replace_share(self):
        allocation = self._allocation()
        allocation.replace_share(NodeShare(node_id=0, cpus=8, gpu_ids=(0,)))
        assert allocation.share_on(0).cpus == 8

    def test_replace_unknown_node_raises(self):
        with pytest.raises(KeyError):
            self._allocation().replace_share(NodeShare(node_id=9, cpus=1))

    def test_cpus_by_node(self):
        assert self._allocation().cpus_by_node() == {0: 4, 2: 4}


class TestInterconnect:
    def test_single_node_sync_is_free(self):
        assert Interconnect().sync_time(1e9, 1) == 0.0

    def test_multi_node_sync_is_push_plus_pull(self):
        fabric = Interconnect(link_gbps=1.25, latency_s=0.0)
        # 100 MB of weights: 2 * 0.1 GB / 1.25 GB/s = 0.16 s
        assert fabric.sync_time(100e6, 2) == pytest.approx(0.16)

    def test_latency_is_added(self):
        fabric = Interconnect(link_gbps=1.25, latency_s=1e-3)
        assert fabric.sync_time(0.0, 2) == pytest.approx(2e-3)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            Interconnect(link_gbps=0.0)
        with pytest.raises(ValueError):
            Interconnect().sync_time(-1.0, 2)
        with pytest.raises(ValueError):
            Interconnect().sync_time(1.0, 0)
