"""Cluster-level allocation, rollback, and readings."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, NodeConfig, paper_cluster, small_cluster


class TestConstruction:
    def test_default_is_paper_cluster(self):
        cluster = Cluster()
        assert len(cluster.nodes) == 80
        assert cluster.total == ResourceVector(cpus=80 * 28, gpus=400)

    def test_paper_cluster_config_totals(self):
        config = paper_cluster()
        assert config.num_nodes == 80
        assert config.total_gpus == 400
        assert config.total_cores == 2240

    def test_small_cluster(self):
        cluster = Cluster(small_cluster(nodes=3, gpus_per_node=2))
        assert len(cluster.nodes) == 3
        assert cluster.total.gpus == 6

    def test_node_ids_are_sequential(self, mixed_cluster):
        assert [node.node_id for node in mixed_cluster.nodes] == [0, 1, 2, 3]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(node_groups=())
        with pytest.raises(ValueError):
            ClusterConfig(node_groups=((0, NodeConfig()),))
        with pytest.raises(ValueError):
            NodeConfig(cores=0)


class TestAllocate:
    def test_single_node_allocation(self, tiny_cluster):
        allocation = tiny_cluster.allocate("j1", [(0, 4, 2)])
        assert allocation.total == ResourceVector(cpus=4, gpus=2)
        assert tiny_cluster.used == ResourceVector(cpus=4, gpus=2)

    def test_multi_node_allocation(self, tiny_cluster):
        allocation = tiny_cluster.allocate("j1", [(0, 2, 2), (1, 2, 2)])
        assert allocation.num_nodes == 2
        assert tiny_cluster.node(0).used_gpus == 2
        assert tiny_cluster.node(1).used_gpus == 2

    def test_double_allocation_raises(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 1, 0)])
        with pytest.raises(RuntimeError):
            tiny_cluster.allocate("j1", [(1, 1, 0)])

    def test_empty_placement_raises(self, tiny_cluster):
        with pytest.raises(ValueError):
            tiny_cluster.allocate("j1", [])

    def test_failed_multi_node_allocation_rolls_back(self, tiny_cluster):
        """If node 1 cannot host its share, node 0's grant is undone."""
        tiny_cluster.allocate("blocker", [(1, 28, 0)])
        with pytest.raises(RuntimeError):
            tiny_cluster.allocate("j1", [(0, 2, 2), (1, 2, 2)])
        assert tiny_cluster.node(0).free_cpus == 28
        assert tiny_cluster.node(0).free_gpus == 4
        assert not tiny_cluster.has_allocation("j1")


class TestRelease:
    def test_release_frees_all_nodes(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 2, 2), (1, 2, 2)])
        tiny_cluster.release("j1")
        assert tiny_cluster.used.is_zero()

    def test_release_unknown_raises(self, tiny_cluster):
        with pytest.raises(RuntimeError):
            tiny_cluster.release("ghost")


class TestResize:
    def test_resize_across_nodes(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 2, 1), (1, 2, 1)])
        tiny_cluster.resize_cpus("j1", {0: 4, 1: 4})
        allocation = tiny_cluster.allocation_of("j1")
        assert allocation.total.cpus == 8

    def test_resize_unknown_raises(self, tiny_cluster):
        with pytest.raises(RuntimeError):
            tiny_cluster.resize_cpus("ghost", {0: 4})


class TestReadings:
    def test_gpu_active_rate(self, tiny_cluster):
        assert tiny_cluster.gpu_active_rate() == 0.0
        tiny_cluster.allocate("j1", [(0, 2, 4)])
        assert tiny_cluster.gpu_active_rate() == pytest.approx(0.5)

    def test_cpu_active_rate(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 14, 0)])
        assert tiny_cluster.cpu_active_rate() == pytest.approx(14 / 56)

    def test_mean_gpu_utilization_active_only(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 2, 2)])
        tiny_cluster.node(0).set_gpu_utilization("j1", 0.6)
        assert tiny_cluster.mean_gpu_utilization() == pytest.approx(0.6)

    def test_mean_gpu_utilization_overall_counts_idle(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 2, 2)])
        tiny_cluster.node(0).set_gpu_utilization("j1", 0.8)
        overall = tiny_cluster.mean_gpu_utilization(active_only=False)
        assert overall == pytest.approx(0.8 * 2 / 8)

    def test_mean_gpu_utilization_empty_cluster(self, tiny_cluster):
        assert tiny_cluster.mean_gpu_utilization() == 0.0

    def test_nodes_with_free(self, tiny_cluster):
        tiny_cluster.allocate("j1", [(0, 28, 0)])
        free = tiny_cluster.nodes_with_free(1, 0)
        assert [node.node_id for node in free] == [1]

    def test_nodes_with_free_among(self, tiny_cluster):
        free = tiny_cluster.nodes_with_free(1, 1, among=[1])
        assert [node.node_id for node in free] == [1]
