"""Bandwidth-monitor arbitration (the simulated MBM)."""

import pytest

from repro.cluster.mbm import BandwidthMonitor


class TestRegistration:
    def test_register_and_read(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        assert monitor.usage_of("a").demand == 10.0
        assert monitor.has("a")

    def test_double_register_raises(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        with pytest.raises(RuntimeError):
            monitor.register("a", 5.0, is_cpu_job=True)

    def test_negative_demand_raises(self):
        monitor = BandwidthMonitor(100.0)
        with pytest.raises(ValueError):
            monitor.register("a", -1.0, is_cpu_job=True)

    def test_unregister_removes(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        monitor.unregister("a")
        assert not monitor.has("a")

    def test_unregister_unknown_is_silent(self):
        BandwidthMonitor(100.0).unregister("ghost")

    def test_update_demand_rearbitrates(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        monitor.update_demand("a", 60.0)
        assert monitor.usage_of("a").granted == 60.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BandwidthMonitor(0.0)


class TestArbitration:
    def test_undersubscribed_grants_everything(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 30.0, is_cpu_job=True)
        monitor.register("b", 40.0, is_cpu_job=False)
        assert monitor.grant_ratio("a") == 1.0
        assert monitor.grant_ratio("b") == 1.0
        assert monitor.pressure == pytest.approx(0.7)

    def test_oversubscribed_equal_demands_share_equally(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.register("b", 80.0, is_cpu_job=True)
        assert monitor.usage_of("a").granted == pytest.approx(50.0)
        assert monitor.usage_of("b").granted == pytest.approx(50.0)

    def test_max_min_protects_small_demands(self):
        """A tiny trainer keeps its full grant while a hog is squeezed —
        this is why NLP jobs suffer via latency, not starvation."""
        monitor = BandwidthMonitor(100.0)
        monitor.register("trainer", 1.0, is_cpu_job=False)
        monitor.register("heat", 200.0, is_cpu_job=True)
        assert monitor.grant_ratio("trainer") == 1.0
        assert monitor.usage_of("heat").granted == pytest.approx(99.0)

    def test_three_way_water_filling(self):
        monitor = BandwidthMonitor(90.0)
        monitor.register("small", 10.0, is_cpu_job=True)
        monitor.register("mid", 40.0, is_cpu_job=True)
        monitor.register("big", 100.0, is_cpu_job=True)
        assert monitor.usage_of("small").granted == pytest.approx(10.0)
        assert monitor.usage_of("mid").granted == pytest.approx(40.0)
        assert monitor.usage_of("big").granted == pytest.approx(40.0)

    def test_total_granted_never_exceeds_capacity(self):
        monitor = BandwidthMonitor(100.0)
        for index in range(7):
            monitor.register(f"job{index}", 30.0, is_cpu_job=True)
        assert monitor.total_granted <= 100.0 + 1e-9

    def test_grant_ratio_of_zero_demand_is_one(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("idle", 0.0, is_cpu_job=True)
        assert monitor.grant_ratio("idle") == 1.0

    def test_pressure_is_granted_over_capacity(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("hog", 500.0, is_cpu_job=True)
        assert monitor.pressure == pytest.approx(1.0)


class TestCaps:
    def test_cap_limits_grant(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.set_cap("a", 20.0)
        assert monitor.usage_of("a").granted == pytest.approx(20.0)

    def test_cap_releases_bandwidth_to_others(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.register("b", 80.0, is_cpu_job=False)
        monitor.set_cap("a", 20.0)
        assert monitor.usage_of("b").granted == pytest.approx(80.0)

    def test_cap_none_lifts_throttle(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.set_cap("a", 20.0)
        monitor.set_cap("a", None)
        assert monitor.usage_of("a").granted == pytest.approx(80.0)

    def test_negative_cap_raises(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        with pytest.raises(ValueError):
            monitor.set_cap("a", -5.0)

    def test_cpu_job_usages_filters_kind(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("cpu", 10.0, is_cpu_job=True)
        monitor.register("gpu", 10.0, is_cpu_job=False)
        assert set(monitor.cpu_job_usages()) == {"cpu"}
