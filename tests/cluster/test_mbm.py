"""Bandwidth-monitor arbitration (the simulated MBM)."""

import pytest

from repro.cluster.mbm import BandwidthMonitor


class TestRegistration:
    def test_register_and_read(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        assert monitor.usage_of("a").demand == 10.0
        assert monitor.has("a")

    def test_double_register_raises(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        with pytest.raises(RuntimeError):
            monitor.register("a", 5.0, is_cpu_job=True)

    def test_negative_demand_raises(self):
        monitor = BandwidthMonitor(100.0)
        with pytest.raises(ValueError):
            monitor.register("a", -1.0, is_cpu_job=True)

    def test_unregister_removes(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        monitor.unregister("a")
        assert not monitor.has("a")

    def test_unregister_unknown_is_silent(self):
        BandwidthMonitor(100.0).unregister("ghost")

    def test_update_demand_rearbitrates(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        monitor.update_demand("a", 60.0)
        assert monitor.usage_of("a").granted == 60.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BandwidthMonitor(0.0)


class TestArbitration:
    def test_undersubscribed_grants_everything(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 30.0, is_cpu_job=True)
        monitor.register("b", 40.0, is_cpu_job=False)
        assert monitor.grant_ratio("a") == 1.0
        assert monitor.grant_ratio("b") == 1.0
        assert monitor.pressure == pytest.approx(0.7)

    def test_oversubscribed_equal_demands_share_equally(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.register("b", 80.0, is_cpu_job=True)
        assert monitor.usage_of("a").granted == pytest.approx(50.0)
        assert monitor.usage_of("b").granted == pytest.approx(50.0)

    def test_max_min_protects_small_demands(self):
        """A tiny trainer keeps its full grant while a hog is squeezed —
        this is why NLP jobs suffer via latency, not starvation."""
        monitor = BandwidthMonitor(100.0)
        monitor.register("trainer", 1.0, is_cpu_job=False)
        monitor.register("heat", 200.0, is_cpu_job=True)
        assert monitor.grant_ratio("trainer") == 1.0
        assert monitor.usage_of("heat").granted == pytest.approx(99.0)

    def test_three_way_water_filling(self):
        monitor = BandwidthMonitor(90.0)
        monitor.register("small", 10.0, is_cpu_job=True)
        monitor.register("mid", 40.0, is_cpu_job=True)
        monitor.register("big", 100.0, is_cpu_job=True)
        assert monitor.usage_of("small").granted == pytest.approx(10.0)
        assert monitor.usage_of("mid").granted == pytest.approx(40.0)
        assert monitor.usage_of("big").granted == pytest.approx(40.0)

    def test_total_granted_never_exceeds_capacity(self):
        monitor = BandwidthMonitor(100.0)
        for index in range(7):
            monitor.register(f"job{index}", 30.0, is_cpu_job=True)
        assert monitor.total_granted <= 100.0 + 1e-9

    def test_grant_ratio_of_zero_demand_is_one(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("idle", 0.0, is_cpu_job=True)
        assert monitor.grant_ratio("idle") == 1.0

    def test_pressure_is_granted_over_capacity(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("hog", 500.0, is_cpu_job=True)
        assert monitor.pressure == pytest.approx(1.0)


class TestCaps:
    def test_cap_limits_grant(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.set_cap("a", 20.0)
        assert monitor.usage_of("a").granted == pytest.approx(20.0)

    def test_cap_releases_bandwidth_to_others(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.register("b", 80.0, is_cpu_job=False)
        monitor.set_cap("a", 20.0)
        assert monitor.usage_of("b").granted == pytest.approx(80.0)

    def test_cap_none_lifts_throttle(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 80.0, is_cpu_job=True)
        monitor.set_cap("a", 20.0)
        monitor.set_cap("a", None)
        assert monitor.usage_of("a").granted == pytest.approx(80.0)

    def test_negative_cap_raises(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("a", 10.0, is_cpu_job=True)
        with pytest.raises(ValueError):
            monitor.set_cap("a", -5.0)

    def test_cpu_job_usages_filters_kind(self):
        monitor = BandwidthMonitor(100.0)
        monitor.register("cpu", 10.0, is_cpu_job=True)
        monitor.register("gpu", 10.0, is_cpu_job=False)
        assert set(monitor.cpu_job_usages()) == {"cpu"}


class TestUncontendedFastPath:
    """The fast path must land on the identical grant vector the
    water-filling rounds produce (bitwise: repricing memos and the
    decision stream are keyed on these floats)."""

    @staticmethod
    def _reference_grants(capacity, specs):
        """The pre-fast-path algorithm, verbatim."""
        demands = {job: min(d, c) if c is not None else d for job, (d, c) in specs.items()}
        granted = {job: 0.0 for job in specs}
        pending = [job for job, d in demands.items() if d > 0]
        remaining = capacity
        while pending and remaining > 1e-12:
            fair_share = remaining / len(pending)
            satisfied = [j for j in pending if demands[j] <= fair_share]
            if satisfied:
                for job in satisfied:
                    granted[job] = demands[job]
                    remaining -= demands[job]
                pending = [j for j in pending if demands[j] > fair_share]
            else:
                for job in pending:
                    granted[job] = fair_share
                remaining = 0.0
                pending = []
        return {job: min(granted[job], demands[job]) for job in specs}

    def _check(self, capacity, specs):
        monitor = BandwidthMonitor(capacity)
        for job, (demand, cap) in specs.items():
            monitor.register(job, demand, is_cpu_job=True)
            if cap is not None:
                monitor.set_cap(job, cap)
        expected = self._reference_grants(capacity, specs)
        for job in specs:
            assert monitor.usage_of(job).granted == expected[job], job

    def test_uncontended_grants_equal_demands(self):
        self._check(100.0, {"a": (10.0, None), "b": (20.5, None), "c": (0.0, None)})

    def test_contended_matches_reference_rounds(self):
        self._check(100.0, {"a": (60.0, None), "b": (70.0, None), "c": (5.0, None)})

    def test_near_capacity_boundary_matches_reference(self):
        import random

        rng = random.Random(7)
        for _ in range(200):
            n = rng.randint(1, 6)
            capacity = rng.uniform(50.0, 150.0)
            total_scale = rng.choice([0.3, 0.9, 0.999, 1.0, 1.001, 1.5])
            raw = [rng.uniform(0.0, 1.0) for _ in range(n)]
            scale = capacity * total_scale / max(sum(raw), 1e-9)
            specs = {
                f"j{i}": (raw[i] * scale, rng.choice([None, raw[i] * scale * 0.5]))
                for i in range(n)
            }
            self._check(capacity, specs)
