"""Determinism and independence of named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(123456, "stream")
        assert 0 <= seed < 2**64


class TestRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_reproducible_across_registries(self):
        a = RngRegistry(7).stream("arrivals")
        b = RngRegistry(7).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_independent(self):
        """Draining one stream must not perturb another."""
        registry_a = RngRegistry(7)
        registry_b = RngRegistry(7)
        for _ in range(100):
            registry_a.stream("noise").random()
        assert (
            registry_a.stream("arrivals").random()
            == registry_b.stream("arrivals").random()
        )

    def test_different_roots_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream(
            "x"
        ).random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(7).fork("tenant-3").stream("jobs").random()
        b = RngRegistry(7).fork("tenant-3").stream("jobs").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("tenant-3")
        assert parent.root_seed != child.root_seed

    def test_repr_lists_streams(self):
        registry = RngRegistry(7)
        registry.stream("a")
        assert "a" in repr(registry)
