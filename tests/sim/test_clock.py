"""Clock semantics: monotonicity and formatting."""

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, Clock, fmt_duration


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(-1.0)

    def test_advances_forward(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_allowed(self):
        clock = Clock(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_rejects_moving_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.999)

    def test_repr_mentions_time(self):
        assert "12.5" in repr(Clock(12.5))


class TestUnits:
    def test_unit_relationships(self):
        assert MINUTE == 60.0
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR

    def test_fmt_seconds(self):
        assert fmt_duration(12.3) == "12.3s"

    def test_fmt_minutes(self):
        assert fmt_duration(90.0) == "1.5min"

    def test_fmt_hours(self):
        assert fmt_duration(2 * HOUR) == "2.00h"

    def test_fmt_days(self):
        assert fmt_duration(2.5 * DAY) == "2.50d"
