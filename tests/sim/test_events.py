"""Event ordering and cancellation."""

from repro.sim.events import Event, EventHandle, EventPriority


def _event(time, priority=EventPriority.SCHEDULE, seq=0):
    return Event(time=time, priority=int(priority), seq=seq, action=lambda: None)


class TestOrdering:
    def test_earlier_time_sorts_first(self):
        assert _event(1.0) < _event(2.0)

    def test_priority_breaks_time_ties(self):
        completion = _event(1.0, EventPriority.COMPLETION)
        arrival = _event(1.0, EventPriority.ARRIVAL)
        assert completion < arrival

    def test_sequence_breaks_full_ties(self):
        first = _event(1.0, seq=0)
        second = _event(1.0, seq=1)
        assert first < second

    def test_priority_order_is_completion_monitor_arrival_schedule(self):
        order = [
            EventPriority.COMPLETION,
            EventPriority.MONITOR,
            EventPriority.ARRIVAL,
            EventPriority.SCHEDULE,
        ]
        assert order == sorted(order)


class TestHandle:
    def test_reports_time_and_tag(self):
        event = Event(time=4.0, priority=0, seq=1, action=lambda: None, tag="x")
        handle = EventHandle(event)
        assert handle.time == 4.0
        assert handle.tag == "x"

    def test_cancel_marks_event(self):
        event = _event(1.0)
        handle = EventHandle(event)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        handle = EventHandle(_event(1.0))
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_repr_shows_state(self):
        handle = EventHandle(_event(1.0))
        assert "pending" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)
