"""Engine run-loop behaviour."""

import pytest

from repro.sim.engine import Engine
from repro.sim.events import EventPriority


class TestScheduling:
    def test_fires_in_time_order(self, engine):
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_fifo_within_priority(self, engine):
        fired = []
        for label in "abc":
            engine.schedule(1.0, lambda label=label: fired.append(label))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_priority_orders_same_instant(self, engine):
        fired = []
        engine.schedule(
            1.0, lambda: fired.append("arrival"), priority=EventPriority.ARRIVAL
        )
        engine.schedule(
            1.0,
            lambda: fired.append("completion"),
            priority=EventPriority.COMPLETION,
        )
        engine.run()
        assert fired == ["completion", "arrival"]

    def test_rejects_past_events(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(4.0, lambda: None)

    def test_schedule_in_is_relative(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        handle = engine.schedule_in(2.5, lambda: None)
        assert handle.time == 7.5

    def test_schedule_in_rejects_negative_delay(self, engine):
        with pytest.raises(ValueError):
            engine.schedule_in(-1.0, lambda: None)

    def test_clock_advances_to_event_time(self, engine):
        engine.schedule(4.0, lambda: None)
        engine.run()
        assert engine.now == 4.0


class TestCancellation:
    def test_cancelled_events_do_not_fire(self, engine):
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_pending_excludes_cancelled(self, engine):
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending == 1
        assert keep.time == 1.0

    def test_peek_skips_cancelled_head(self, engine):
        head = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        head.cancel()
        assert engine.peek_time() == 2.0

    def test_cancel_during_execution(self, engine):
        fired = []
        later = engine.schedule(2.0, lambda: fired.append("later"))
        engine.schedule(1.0, later.cancel)
        engine.run()
        assert fired == []


class TestRunLoop:
    def test_run_until_stops_before_later_events(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=3.0)
        assert fired == [1]
        assert engine.pending == 1

    def test_run_until_includes_boundary_events(self, engine):
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run(until=3.0)
        assert fired == [3]

    def test_run_until_advances_clock_to_horizon(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_max_events_limits_execution(self, engine):
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_events_scheduled_during_run_fire(self, engine):
        fired = []

        def chain():
            fired.append("first")
            engine.schedule_in(1.0, lambda: fired.append("second"))

        engine.schedule(1.0, chain)
        engine.run()
        assert fired == ["first", "second"]

    def test_run_returns_fired_count(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.run() == 2

    def test_step_on_empty_queue_returns_false(self, engine):
        assert engine.step() is False

    def test_reentrancy_is_rejected(self, engine):
        def recurse():
            engine.run()

        engine.schedule(1.0, recurse)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_fired_counter(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.fired == 1


class TestLivePendingCounter:
    """``Engine.pending`` is a maintained counter, not a heap scan; every
    transition (schedule, fire, cancel, double-cancel, cancel-after-fire)
    must keep it exact."""

    def test_counts_schedules_and_fires(self, engine):
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert engine.pending == 5
        engine.run(max_events=2)
        assert engine.pending == 3
        engine.run()
        assert engine.pending == 0
        assert all(h.time for h in handles)  # keep handles alive

    def test_double_cancel_decrements_once(self, engine):
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 1

    def test_cancel_after_fire_is_a_noop(self, engine):
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(max_events=1)
        assert engine.pending == 1
        handle.cancel()  # already fired: must not corrupt the counter
        assert engine.pending == 1

    def test_cancel_inside_callback_counts_once(self, engine):
        victim = engine.schedule(3.0, lambda: None)

        def kill():
            victim.cancel()
            victim.cancel()

        engine.schedule(1.0, kill)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0

    def test_counter_matches_heap_under_interleaving(self, engine):
        import random

        rng = random.Random(42)
        live = []
        expected = 0
        for _ in range(300):
            if live and rng.random() < 0.4:
                handle, fired_or_cancelled = live.pop(rng.randrange(len(live)))
                if not fired_or_cancelled:
                    handle.cancel()
                    expected -= 1
            else:
                live.append([engine.schedule(rng.uniform(0.1, 50.0), lambda: None), False])
                expected += 1
            assert engine.pending == expected
        fired = engine.run()
        assert fired == expected
        assert engine.pending == 0
