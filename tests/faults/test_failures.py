"""Failure execution paths: crash, checkpoint-restart, GPU loss, stragglers.

The acceptance scenario lives in :class:`TestDeterministicCrashScenario`:
a node crash while a 4-GPU gang is running, replayed twice under the same
seeds, must reproduce restart counts, makespans, and queue contents
exactly.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.core.coda import CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.faults import FaultConfig, FaultInjector
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.sim.events import EventPriority
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, *, gpus=1, nodes=1, iters=100, checkpoint=10, cpus=3,
         tenant=1, submit=0.0, model="resnet50"):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=cpus,
        total_iterations=iters,
        checkpoint_interval_iters=checkpoint,
    )


def _cpu(job_id, *, cores=4, duration=100.0, tenant=2, submit=0.0):
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
    )


def _runner(nodes=2, scheduler=None, **kwargs):
    cluster = Cluster(small_cluster(nodes=nodes))
    return SimulationRunner(
        cluster, scheduler or FifoScheduler(), sample_interval_s=50.0, **kwargs
    )


class TestNodeCrash:
    def test_resident_job_is_killed_and_node_leaves_pool(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=10_000))
        runner.engine.run(until=100.0)
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        runner.fail_node(node_id)
        node = runner.cluster.node(node_id)
        assert not node.is_up
        assert node.free_cpus == 0 and node.free_gpu_ids == []
        assert not runner.cluster.has_allocation("j")
        assert runner.collector.faults.node_failures == 1
        assert runner.collector.faults.restarts == 1
        assert runner.collector.records["j"].failure_count == 1

    def test_crash_is_idempotent_and_recovery_reopens_node(self):
        runner = _runner()
        runner.engine.run(until=1.0)
        runner.fail_node(0)
        runner.fail_node(0)  # second crash of a down node is a no-op
        assert runner.collector.faults.node_failures == 1
        runner.recover_node(0)
        runner.recover_node(0)
        node = runner.cluster.node(0)
        assert node.is_up and node.free_cpus > 0

    def test_displaced_job_restarts_and_completes(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=100))

        def crash():
            runner.fail_node(runner.cluster.allocation_of("j").node_ids[0])

        runner.engine.schedule(50.0, crash, priority=EventPriority.MONITOR)
        # Leave the crashed node down; the restart must land elsewhere.
        runner.engine.run()
        record = runner.collector.records["j"]
        assert record.finish_time is not None
        assert record.failure_count == 1

    def test_downtime_is_accounted(self):
        runner = _runner()
        runner.engine.run(until=10.0)
        runner.fail_node(0)
        runner.engine.run(until=110.0)
        runner.recover_node(0)
        faults = runner.collector.faults
        assert faults.node_downtime_s == pytest.approx(100.0)
        # An open outage counts through "now".
        runner.fail_node(1)
        runner.engine.run(until=160.0)
        assert faults.downtime_through(runner.engine.now) == pytest.approx(150.0)

    def test_multi_node_gang_dies_whole_and_frees_survivors(self):
        runner = _runner(nodes=2)
        runner.submit_at(0.0, _gpu("gang", gpus=2, nodes=2, iters=10_000))
        runner.engine.run(until=100.0)
        assert runner.cluster.allocation_of("gang").num_nodes == 2
        runner.fail_node(0)
        # One crash kills the whole gang and releases node 1's share.
        assert not runner.cluster.has_allocation("gang")
        assert runner.cluster.node(1).free_gpus == runner.cluster.node(1).total_gpus
        assert runner.collector.faults.restarts == 1


class TestCheckpointRestart:
    def _processing_time(self, *, checkpoint, crash_at=None):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=100, checkpoint=checkpoint))
        if crash_at is not None:

            def crash():
                node_id = runner.cluster.allocation_of("j").node_ids[0]
                runner.fail_node(node_id)
                runner.engine.schedule(
                    crash_at + 10.0,
                    lambda: runner.recover_node(node_id),
                    priority=EventPriority.MONITOR,
                )

            runner.engine.schedule(
                crash_at, crash, priority=EventPriority.MONITOR
            )
        runner.engine.run()
        record = runner.collector.records["j"]
        assert record.finish_time is not None
        return runner, record

    def test_restart_resumes_from_checkpoint_boundary(self):
        _, clean = self._processing_time(checkpoint=10)
        runner, crashed = self._processing_time(checkpoint=10, crash_at=50.0)
        # Only the tail past the last checkpoint is re-run, so the crashed
        # job pays less than a from-scratch restart would.
        assert crashed.processing_time > clean.processing_time
        assert crashed.processing_time < 2 * clean.processing_time
        assert runner.collector.faults.lost_gpu_iterations > 0
        assert (
            runner.collector.faults.lost_gpu_iterations
            < runner.collector.records["j"].failure_count * 10 + 1e-9
        )

    def test_no_checkpointing_restarts_from_scratch(self):
        _, clean = self._processing_time(checkpoint=10)
        _, crashed = self._processing_time(checkpoint=0, crash_at=50.0)
        # All progress at the crash instant is lost: total processing is
        # the clean run plus everything done before the crash.
        assert crashed.processing_time > clean.processing_time

    def test_checkpoint_floor_arithmetic(self):
        job = _gpu("j", iters=100, checkpoint=30)
        assert job.checkpointed_iterations(0.0) == 0.0
        assert job.checkpointed_iterations(29.9) == 0.0
        assert job.checkpointed_iterations(30.0) == 30.0
        assert job.checkpointed_iterations(95.5) == 90.0
        assert _gpu("k", checkpoint=0).checkpointed_iterations(95.5) == 0.0


class TestGpuFailure:
    def test_owner_takes_failure_path_and_device_leaves_pool(self):
        runner = _runner()
        runner.submit_at(0.0, _gpu("j", iters=10_000))
        runner.engine.run(until=100.0)
        allocation = runner.cluster.allocation_of("j")
        node_id = allocation.node_ids[0]
        node = runner.cluster.node(node_id)
        gpu_id = next(gpu.gpu_id for gpu in node.gpus if gpu.owner == "j")
        total_free_before = len(node.free_gpu_ids)
        runner.fail_gpu(node_id, gpu_id)
        assert not runner.cluster.has_allocation("j")
        assert gpu_id not in node.free_gpu_ids
        # The failed device stays out even though its owner was evicted.
        assert len(node.free_gpu_ids) == total_free_before
        assert runner.collector.faults.gpu_failures == 1
        runner.repair_gpu(node_id, gpu_id)
        assert gpu_id in node.free_gpu_ids

    def test_unowned_gpu_failure_kills_nobody(self):
        runner = _runner()
        runner.engine.run(until=1.0)
        runner.fail_gpu(0, 0)
        runner.fail_gpu(0, 0)  # repeat is a no-op
        assert runner.collector.faults.gpu_failures == 1
        assert runner.collector.faults.restarts == 0

    def test_placement_avoids_failed_gpu(self):
        runner = _runner(nodes=1)
        runner.engine.run(until=1.0)
        runner.fail_gpu(0, 0)
        node = runner.cluster.node(0)
        runner.submit_at(2.0, _gpu("j", gpus=node.total_gpus - 1, iters=10))
        runner.engine.run(until=3.0)
        assert runner.cluster.has_allocation("j")
        assert node.gpus[0].owner is None


class TestStraggler:
    def test_straggler_stretches_then_heals(self):
        slow, clean = _runner(), _runner()
        for runner in (slow, clean):
            runner.submit_at(0.0, _cpu("c", duration=100.0))
        slow.engine.run(until=10.0)
        slow.apply_cpu_straggler("c", factor=0.25, duration_s=40.0)
        slow.engine.run()
        clean.engine.run()
        slow_time = slow.collector.records["c"].processing_time
        clean_time = clean.collector.records["c"].processing_time
        # 40 s at quarter speed does 10 s of work: 30 s of wall time lost.
        assert slow_time == pytest.approx(clean_time + 30.0)
        assert slow.collector.faults.stragglers == 1

    def test_straggler_on_missing_job_is_ignored(self):
        runner = _runner()
        runner.apply_cpu_straggler("ghost", factor=0.5, duration_s=10.0)
        assert runner.collector.faults.stragglers == 0

    def test_stale_heal_does_not_touch_new_incarnation(self):
        runner = _runner()
        runner.submit_at(0.0, _cpu("c", duration=1000.0))
        runner.engine.run(until=10.0)
        runner.apply_cpu_straggler("c", factor=0.25, duration_s=50.0)
        # The job dies and restarts before the straggler window closes.
        node_id = runner.cluster.allocation_of("c").node_ids[0]
        runner.fail_node(node_id)
        runner.recover_node(node_id)
        runner.engine.run(until=100.0)
        record = runner._running_cpu["c"]
        assert record.straggle_factor == 1.0


class TestTelemetryOutage:
    def test_outage_blinds_monitor_then_lifts(self):
        runner = _runner()
        runner.engine.run(until=10.0)
        runner.begin_telemetry_outage(0, 50.0)
        monitor = runner.cluster.node(0).bandwidth
        assert monitor.observe(runner.engine.now) is None
        assert not monitor.telemetry_up(runner.engine.now)
        assert runner.collector.faults.telemetry_dropouts == 1
        runner.engine.run(until=70.0)
        assert monitor.telemetry_up(runner.engine.now)
        assert monitor.observe(runner.engine.now) is not None

    def test_overlapping_outages_extend_not_shorten(self):
        runner = _runner()
        runner.begin_telemetry_outage(0, 100.0)
        runner.begin_telemetry_outage(0, 10.0)
        monitor = runner.cluster.node(0).bandwidth
        assert not monitor.telemetry_up(50.0)
        assert monitor.telemetry_up(100.0)


class TestSchedulerRecovery:
    def test_failed_gpu_job_requeues_at_array_head(self):
        from tests.core.fakes import FakeContext

        cluster = Cluster(small_cluster(nodes=2))
        scheduler = CodaScheduler()
        context = FakeContext(lambda job_id, cores: 0.9, cluster=cluster)
        scheduler.attach(context)
        first = _gpu("first", iters=10_000)
        scheduler.submit(first, 0.0)
        for decision in scheduler.schedule(cluster, 0.0):
            cluster.allocate(decision.job.job_id, list(decision.placements))
            scheduler.job_started(decision.job, list(decision.placements), 0.0)
        # Park a sibling in the same (tenant, sub-array) queue, then fail
        # the running head: it must land *ahead* of the waiting sibling.
        scheduler.submit(_gpu("second", iters=10_000, submit=1.0), 1.0)
        cluster.release("first")
        scheduler.job_failed(first, 2.0)
        _, queue = scheduler._gpu_group_queue(first)
        assert [job.job_id for job in queue] == ["first", "second"]
        assert "first" not in scheduler.allocator._active

    def test_failure_resets_allocator_tuning_memory(self):
        scheduler = CodaScheduler()
        runner = _runner(scheduler=scheduler)
        job = _gpu("j", iters=100_000)
        runner.submit_at(0.0, job)
        # Run long enough for the 90 s profiling phase to finish.
        runner.engine.run(until=600.0)
        allocator = scheduler.allocator
        assert "j" in allocator._known_cores
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        runner.fail_node(node_id)
        assert "j" not in allocator._known_cores
        assert "j" not in allocator._active

    def test_failure_mid_profiling_aborts_session(self):
        scheduler = CodaScheduler()
        runner = _runner(scheduler=scheduler)
        runner.submit_at(0.0, _gpu("j", iters=100_000))
        runner.engine.run(until=30.0)  # inside the 90 s tuning window
        allocator = scheduler.allocator
        assert "j" in allocator._active
        node_id = runner.cluster.allocation_of("j").node_ids[0]
        runner.fail_node(node_id)
        assert "j" not in allocator._active


class TestDeterministicCrashScenario:
    """The ISSUE acceptance scenario, end to end."""

    def _one_run(self):
        scheduler = CodaScheduler()
        injector = FaultInjector(
            FaultConfig(seed=11, node_mtbf_s=1200.0, node_mttr_s=300.0)
        )
        cluster = Cluster(small_cluster(nodes=2))
        runner = SimulationRunner(
            cluster,
            scheduler,
            sample_interval_s=50.0,
            fault_injector=injector,
        )
        runner.submit_at(0.0, _gpu("gang", gpus=4, nodes=1, iters=2000))
        for index in range(3):
            runner.submit_at(
                0.0, _gpu(f"small{index}", iters=500, tenant=2)
            )
            runner.submit_at(0.0, _cpu(f"cpu{index}", tenant=3))
        result = runner.run(until=30_000.0)
        record = runner.collector.records["gang"]
        return {
            "restarts": runner.collector.faults.restarts,
            "node_failures": runner.collector.faults.node_failures,
            "downtime": result.node_downtime_s,
            "gang_failures": record.failure_count,
            "gang_makespan": record.finish_time,
            "injected": injector.injected,
            "events": result.events_fired,
            "finished": result.finished_gpu_jobs + result.finished_cpu_jobs,
        }

    def test_two_seeded_runs_are_identical(self):
        first, second = self._one_run(), self._one_run()
        assert first == second
        # The scenario actually exercises the failure path ...
        assert first["node_failures"] > 0
        assert first["restarts"] >= first["gang_failures"] > 0
        # ... and every displaced job still completes.
        assert first["gang_makespan"] is not None
        assert first["finished"] == 7
