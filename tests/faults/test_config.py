"""FaultConfig validation and channel gating."""

import pytest

from repro.faults import FaultConfig


class TestValidation:
    def test_default_config_is_inert(self):
        assert not FaultConfig().any_channel_active

    def test_any_single_channel_activates(self):
        assert FaultConfig(node_mtbf_s=3600.0).any_channel_active
        assert FaultConfig(gpu_mtbf_s=3600.0).any_channel_active
        assert FaultConfig(telemetry_mtbf_s=3600.0).any_channel_active
        assert FaultConfig(straggler_interval_s=3600.0).any_channel_active

    @pytest.mark.parametrize(
        "field", ["node_mtbf_s", "gpu_mtbf_s", "telemetry_mtbf_s",
                  "straggler_interval_s"]
    )
    def test_non_positive_rate_rejected(self, field):
        with pytest.raises(ValueError):
            FaultConfig(**{field: 0.0})
        with pytest.raises(ValueError):
            FaultConfig(**{field: -1.0})

    def test_non_positive_repair_times_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(node_mttr_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(gpu_mttr_s=-5.0)
        with pytest.raises(ValueError):
            FaultConfig(telemetry_outage_s=0.0)

    def test_straggler_factor_must_be_fractional(self):
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=0.0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=1.0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_duration_s=0.0)
