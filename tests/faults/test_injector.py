"""FaultInjector wiring: stream independence, seeding, attach rules."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.runner import SimulationRunner
from repro.faults import FaultConfig, FaultInjector
from repro.schedulers.fifo import FifoScheduler


def _run(config, *, seed=None, until=20_000.0, nodes=2):
    injector = FaultInjector(config, seed=seed)
    runner = SimulationRunner(
        Cluster(small_cluster(nodes=nodes)),
        FifoScheduler(),
        sample_interval_s=500.0,
        fault_injector=injector,
    )
    runner.engine.run(until=until)
    return injector.injected


class TestAttach:
    def test_double_attach_is_refused(self):
        injector = FaultInjector(FaultConfig(node_mtbf_s=100.0))
        cluster = Cluster(small_cluster(nodes=1))
        SimulationRunner(
            cluster, FifoScheduler(), sample_interval_s=500.0,
            fault_injector=injector,
        )
        with pytest.raises(RuntimeError):
            SimulationRunner(
                Cluster(small_cluster(nodes=1)),
                FifoScheduler(),
                sample_interval_s=500.0,
                fault_injector=injector,
            )

    def test_inert_config_schedules_nothing(self):
        injector = FaultInjector(FaultConfig())
        runner = SimulationRunner(
            Cluster(small_cluster(nodes=2)),
            FifoScheduler(),
            sample_interval_s=500.0,
            fault_injector=injector,
        )
        runner.engine.run(until=5000.0)
        assert injector.injected == []


class TestDeterminism:
    CONFIG = FaultConfig(
        seed=3,
        node_mtbf_s=2000.0,
        node_mttr_s=300.0,
        telemetry_mtbf_s=1500.0,
    )

    def test_same_seed_same_schedule(self):
        assert _run(self.CONFIG) == _run(self.CONFIG)

    def test_seed_override_beats_config_seed(self):
        baseline = _run(self.CONFIG)
        reseeded = _run(self.CONFIG, seed=99)
        assert baseline != reseeded
        assert reseeded == _run(self.CONFIG, seed=99)

    def test_channels_draw_from_independent_streams(self):
        """Toggling one channel must not move another channel's events:
        each (channel, node) pair owns a named RNG stream."""
        with_mbm = _run(self.CONFIG)
        without_mbm = _run(
            FaultConfig(seed=3, node_mtbf_s=2000.0, node_mttr_s=300.0)
        )
        crashes = [
            (when, detail["node_id"])
            for when, kind, detail in with_mbm
            if kind == "node-crash"
        ]
        crashes_alone = [
            (when, detail["node_id"])
            for when, kind, detail in without_mbm
            if kind == "node-crash"
        ]
        assert crashes and crashes == crashes_alone

    def test_nodes_draw_from_independent_streams(self):
        """Growing the cluster leaves existing nodes' schedules alone."""
        small = _run(self.CONFIG, nodes=2)
        large = _run(self.CONFIG, nodes=3)
        node0 = [
            when for when, kind, detail in small
            if kind == "node-crash" and detail["node_id"] == 0
        ]
        node0_large = [
            when for when, kind, detail in large
            if kind == "node-crash" and detail["node_id"] == 0
        ]
        assert node0 and node0 == node0_large
