"""Node quarantine, restart budgets, and the dead-job ledger, end to end.

The ISSUE acceptance criteria live here: a crash-looping node is
quarantined and hosts zero jobs for the whole window (IV007 enforced by a
strict auditor riding along), and a poison job lands in the dead-job
ledger once its restart budget runs out.
"""

import pytest

from repro.analysis.invariants import InvariantAuditor
from repro.cluster.cluster import Cluster
from repro.config import small_cluster
from repro.experiments.runner import SimulationRunner
from repro.health import RestartPolicy
from repro.health.tracker import NodeHealthState
from repro.perfmodel.stages import TrainSetup
from repro.schedulers.fifo import FifoScheduler
from repro.sim.events import EventPriority
from repro.workload.job import GpuJob


def _gpu(job_id, *, gpus=1, nodes=1, iters=100, cpus=3, tenant=1, submit=0.0):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        model_name="resnet50",
        setup=TrainSetup(nodes, gpus),
        requested_cpus=cpus,
        total_iterations=iters,
        checkpoint_interval_iters=10,
    )


class TestRestartBudget:
    """Scheduler-level budget mechanics, driven by hand."""

    def _started(self, scheduler, cluster, now=0.0):
        for decision in scheduler.schedule(cluster, now):
            cluster.allocate(decision.job.job_id, list(decision.placements))
            scheduler.job_started(decision.job, list(decision.placements), now)

    def test_first_failure_requeues_immediately(self):
        from tests.core.fakes import FakeContext

        cluster = Cluster(small_cluster(nodes=2))
        scheduler = FifoScheduler(
            restart_policy=RestartPolicy(max_restarts=2, base_delay_s=100.0)
        )
        scheduler.attach(FakeContext(lambda j, c: 0.9, cluster=cluster))
        job = _gpu("j", iters=10_000)
        scheduler.submit(job, 0.0)
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 1.0)
        assert [p.job_id for p in scheduler.pending_jobs()] == ["j"]
        assert scheduler.restart_count("j") == 1

    def test_second_failure_is_delayed_then_requeued(self):
        from tests.core.fakes import FakeContext

        cluster = Cluster(small_cluster(nodes=2))
        context = FakeContext(lambda j, c: 0.9, cluster=cluster)
        scheduler = FifoScheduler(
            restart_policy=RestartPolicy(max_restarts=5, base_delay_s=100.0)
        )
        scheduler.attach(context)
        job = _gpu("j", iters=10_000)
        scheduler.submit(job, 0.0)
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 1.0)  # immediate
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 2.0)  # backed off 100 s
        assert scheduler.pending_jobs() == []
        assert any("requeue:j" == e[3] for e in context.events)
        context.fire_next()
        assert [p.job_id for p in scheduler.pending_jobs()] == ["j"]
        assert context.schedule_requests >= 1

    def test_exhausted_budget_moves_job_to_dead_ledger(self):
        from tests.core.fakes import FakeContext

        cluster = Cluster(small_cluster(nodes=2))
        scheduler = FifoScheduler(
            restart_policy=RestartPolicy(max_restarts=1, base_delay_s=0.0)
        )
        scheduler.attach(FakeContext(lambda j, c: 0.9, cluster=cluster))
        job = _gpu("j", iters=10_000)
        scheduler.submit(job, 0.0)
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 1.0)  # first failure: within budget
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 2.0)  # second: budget exhausted
        assert scheduler.pending_jobs() == []
        assert len(scheduler.dead_jobs) == 1
        dead = scheduler.dead_jobs[0]
        assert dead.job_id == "j"
        assert dead.failures == 2
        assert dead.reason == "restart budget exhausted"

    def test_without_context_delayed_requeue_degrades_to_immediate(self):
        cluster = Cluster(small_cluster(nodes=2))
        scheduler = FifoScheduler(
            restart_policy=RestartPolicy(max_restarts=5, base_delay_s=100.0)
        )
        job = _gpu("j", iters=10_000)
        scheduler.submit(job, 0.0)
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 1.0)
        self._started(scheduler, cluster)
        cluster.release("j")
        scheduler.job_failed(job, 2.0)  # no context to defer through
        assert [p.job_id for p in scheduler.pending_jobs()] == ["j"]


class TestPoisonJobEndToEnd:
    def test_poison_job_lands_in_dead_ledger(self):
        scheduler = FifoScheduler(
            restart_policy=RestartPolicy(max_restarts=2, base_delay_s=5.0)
        )
        cluster = Cluster(small_cluster(nodes=2))
        runner = SimulationRunner(
            cluster, scheduler, sample_interval_s=50.0
        )
        runner.submit_at(0.0, _gpu("poison", iters=100_000))

        def sabotage() -> None:
            # Crash whatever node hosts the poison job, then bring the
            # node back so only the job — not the cluster — looks broken.
            if runner.cluster.has_allocation("poison"):
                node_id = runner.cluster.allocation_of("poison").node_ids[0]
                runner.fail_node(node_id)
                runner.engine.schedule_in(
                    5.0,
                    lambda node_id=node_id: runner.recover_node(node_id),
                    priority=EventPriority.MONITOR,
                )
            runner.engine.schedule_in(
                20.0, sabotage, priority=EventPriority.MONITOR
            )

        runner.engine.schedule_in(
            20.0, sabotage, priority=EventPriority.MONITOR
        )
        result = runner.run(until=500.0)
        assert len(scheduler.dead_jobs) == 1
        assert scheduler.dead_jobs[0].job_id == "poison"
        assert scheduler.dead_jobs[0].failures == 3
        assert result.dead_jobs == 1
        assert scheduler.pending_jobs() == []
        assert runner.collector.records["poison"].finish_time is None
        # Two crashes on one node and one on the other: nobody quarantined.
        assert result.quarantines == 0


class TestQuarantineEndToEnd:
    def test_crash_looping_node_is_quarantined_then_readmitted(self):
        cluster = Cluster(small_cluster(nodes=2))
        auditor = InvariantAuditor(interval_s=25.0, strict=True)
        scheduler = FifoScheduler()
        runner = SimulationRunner(
            cluster, scheduler, sample_interval_s=50.0, auditor=auditor
        )
        # Full-node GPU jobs arriving through the horizon keep queue
        # pressure up: any node the scheduler may use, it will use.
        for i in range(25):
            runner.submit_at(
                100.0 * i, _gpu(f"g{i}", gpus=4, iters=1_000_000, submit=100.0 * i)
            )
        # Crash-loop node 0: down at 100/200/300, back up 50 s later.
        for strike in range(3):
            when = 100.0 + 100.0 * strike
            runner.engine.schedule(
                when,
                lambda: runner.fail_node(0),
                priority=EventPriority.MONITOR,
            )
            runner.engine.schedule(
                when + 50.0,
                lambda: runner.recover_node(0),
                priority=EventPriority.MONITOR,
            )

        observations = {}

        def probe(when: float) -> None:
            observations[when] = (
                runner.health.state_of(0, runner.engine.now),
                sorted(runner.cluster.node(0).jobs_here()),
            )

        # Default base quarantine is 1800 s: the window is [300, 2100).
        for when in (500.0, 1500.0, 2050.0, 2200.0):
            runner.engine.schedule(
                when,
                lambda when=when: probe(when),
                priority=EventPriority.MONITOR,
            )
        result = runner.run(until=2500.0)
        # The third strike quarantined the node ...
        assert result.quarantines == 1
        assert runner.collector.faults.quarantines == 1
        # ... which hosted nothing for the whole window despite constant
        # queue pressure (the strict IV007 auditor swept every 25 s) ...
        for when in (500.0, 1500.0, 2050.0):
            state, residents = observations[when]
            assert state is NodeHealthState.QUARANTINED
            assert residents == []
        # ... and was re-used promptly after readmission.
        state, residents = observations[2200.0]
        assert state is NodeHealthState.PROBATION
        assert residents != []
        assert result.quarantine_s == pytest.approx(1800.0)
        assert auditor.stats.ok

    def test_suspect_node_avoided_while_alternatives_exist(self):
        cluster = Cluster(small_cluster(nodes=2))
        runner = SimulationRunner(
            cluster, FifoScheduler(), sample_interval_s=50.0
        )
        # One crash: node 0 is SUSPECT but still usable.
        runner.engine.schedule(
            10.0, lambda: runner.fail_node(0), priority=EventPriority.MONITOR
        )
        runner.engine.schedule(
            20.0, lambda: runner.recover_node(0), priority=EventPriority.MONITOR
        )
        runner.submit_at(30.0, _gpu("a", iters=1_000_000))
        runner.submit_at(31.0, _gpu("b", iters=1_000_000))
        runner.engine.run(until=100.0)
        # The first job avoids the suspect node; the second has no
        # healthy alternative with free GPUs left at equal fit, but both
        # fit on node 1, so both land there.
        assert list(runner.cluster.allocation_of("a").node_ids) == [1]
        assert list(runner.cluster.allocation_of("b").node_ids) == [1]
