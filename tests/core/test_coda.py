"""CodaScheduler wiring (Fig. 8) on the real simulation runner."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.workload.heat import heat_job
from repro.workload.job import GpuJob


def _gpu(job_id, model="resnet50", gpus=1, nodes=1, submit=0.0, iters=2000):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=iters,
    )


def _runner(scheduler=None, nodes=2):
    cluster = Cluster(small_cluster(nodes=nodes))
    scheduler = scheduler or CodaScheduler()
    return SimulationRunner(cluster, scheduler, sample_interval_s=600.0), scheduler


class TestAllocatorIntegration:
    def test_job_starts_at_nstart_and_tunes_to_optimum(self):
        runner, scheduler = _runner()
        job = _gpu("j", model="alexnet", iters=3000)  # optimum 8, CV start 3
        runner.submit_at(0.0, job)
        runner.engine.run(until=900.0)
        allocation = runner.cluster.allocation_of("j")
        assert allocation.shares[0].cpus == 8
        outcome = scheduler.allocator.outcomes["j"]
        assert outcome.n_start == 3
        assert outcome.tuned_cores == 8

    def test_second_job_of_tenant_starts_from_history(self):
        runner, scheduler = _runner()
        runner.submit_at(0.0, _gpu("first", model="alexnet", iters=1200))
        runner.engine.run(until=4000.0)
        assert runner.collector.records["first"].finish_time is not None
        runner.submit_at(4000.0, _gpu("second", model="alexnet", iters=1000))
        runner.engine.run(until=4001.0)
        allocation = runner.cluster.allocation_of("second")
        assert allocation.shares[0].cpus == 8  # history, not the CV default

    def test_tuning_shows_in_collector_final_cpus(self):
        runner, scheduler = _runner()
        runner.submit_at(0.0, _gpu("j", model="wavenet", iters=200))
        runner.engine.run(until=1500.0)
        record = runner.collector.records["j"]
        assert record.final_cpus == 6  # wavenet optimum

    def test_short_job_finishing_mid_tuning_is_clean(self):
        runner, scheduler = _runner()
        runner.submit_at(0.0, _gpu("j", model="resnet50", iters=10))
        runner.engine.run(until=2000.0)
        assert runner.collector.records["j"].finish_time is not None
        assert not scheduler.allocator.is_tuning("j")


class TestEliminatorIntegration:
    def _hot_runner(self, mba=True):
        cluster = Cluster(
            ClusterConfig(
                node_groups=(
                    # A single-socket-equivalent node: the 96 GB/s HEAT
                    # instance pushes it well past the 75 % threshold.
                    (1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0,
                                   mba_supported=mba)),
                )
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(eliminator=EliminatorConfig(monitor_interval_s=30.0))
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # A contention-sensitive NLP trainer plus a HEAT hog on one node.
        runner.submit_at(0.0, _gpu("nlp", model="bat", iters=2000))
        runner.submit_at(
            1.0, heat_job("heat", 1.0, threads=12, duration_s=7200.0, tenant_id=18)
        )
        return runner, scheduler

    def test_eliminator_throttles_heat_job(self):
        runner, scheduler = self._hot_runner()
        runner.engine.run(until=600.0)
        assert scheduler.eliminator.throttle_actions >= 1
        node = runner.cluster.nodes[0]
        assert node.mba.throttle_level("heat") < 1.0

    def test_throttling_restores_trainer_speed(self):
        runner, scheduler = self._hot_runner()
        # Read just before the first 30-second monitor tick fires.
        runner.engine.run(until=29.0)
        degraded = runner.gpu_job_utilization("nlp")
        runner.engine.run(until=3600.0)
        recovered = runner.gpu_job_utilization("nlp")
        assert recovered > degraded * 1.2

    def test_without_mba_cores_are_halved(self):
        runner, scheduler = self._hot_runner(mba=False)
        runner.engine.run(until=600.0)
        assert scheduler.eliminator.halving_actions >= 1
        node = runner.cluster.nodes[0]
        assert node.share_of("heat").cpus < 12

    def test_disabled_eliminator_never_acts(self):
        cluster = Cluster(small_cluster(nodes=1))
        scheduler = CodaScheduler(
            CodaConfig(eliminator=EliminatorConfig(enabled=False))
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(0.0, _gpu("nlp", model="bat", iters=500))
        runner.submit_at(1.0, heat_job("heat", 1.0, threads=12, tenant_id=18))
        runner.engine.run(until=1200.0)
        assert scheduler.eliminator.throttle_actions == 0


class TestConfig:
    def test_defaults(self):
        config = CodaConfig()
        assert config.reserved_cores == 16
        assert config.profiling_step_s == 90.0
        assert config.eliminator.enabled

    def test_scheduler_name(self):
        assert CodaScheduler().name == "coda"

    def test_job_started_before_attach_raises(self):
        scheduler = CodaScheduler()
        with pytest.raises(RuntimeError):
            scheduler.job_started(_gpu("j"), [(0, 2, 1)], 0.0)
