"""The contention-aware placement extension (off by default)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.coda import CodaConfig, CodaScheduler
from repro.core.eliminator import EliminatorConfig
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.workload.heat import heat_job
from repro.workload.job import GpuJob


def _nlp(job_id="nlp", iters=10000):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name="bat",
        setup=TrainSetup(1, 1),
        requested_cpus=5,
        total_iterations=iters,
    )


def _two_node_runner(aware: bool):
    """Two nodes; the HEAT hog occupies node 1 — the 1-GPU sub-array node
    a small trainer's placement would normally prefer.

    The eliminator is disabled so the test isolates *placement*.  A 1-core
    dummy CPU job steers the (headroom best-fit) HEAT placement onto
    node 1.
    """
    from repro.workload.job import CpuJob

    cluster = Cluster(
        ClusterConfig(
            node_groups=((2, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
        )
    )
    scheduler = CodaScheduler(
        CodaConfig(
            contention_aware_placement=aware,
            eliminator=EliminatorConfig(enabled=False),
        )
    )
    runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
    runner.submit_at(
        0.0,
        CpuJob(job_id="dummy", tenant_id=18, submit_time=0.0, cores=1,
               duration_s=1e6),
    )
    runner.submit_at(
        0.5, heat_job("heat", 0.5, threads=12, duration_s=1e6, tenant_id=18)
    )
    return runner, scheduler


class TestPlacementChoice:
    def test_default_is_off(self):
        assert CodaConfig().contention_aware_placement is False
        assert CodaScheduler().contention_aware is False

    def test_aware_placement_avoids_the_hot_node(self):
        runner, _ = _two_node_runner(aware=True)
        runner.engine.run(until=1.0)
        heat_node = runner.cluster.allocation_of("heat").node_ids[0]
        runner.submit_at(2.0, _nlp())
        runner.engine.run(until=3.0)
        trainer_node = runner.cluster.allocation_of("nlp").node_ids[0]
        assert trainer_node != heat_node

    def test_aware_trainer_runs_at_full_speed(self):
        runner, _ = _two_node_runner(aware=True)
        runner.submit_at(2.0, _nlp())
        runner.engine.run(until=10.0)
        # On the clean node the NLP job sits at its quiet-node optimum.
        assert runner.gpu_job_utilization("nlp") == pytest.approx(
            runner.gpu_job_expected_utilization("nlp")
        )

    def test_unaware_placement_may_land_hot(self):
        """Best-fit ignores bandwidth: with equal free resources it picks
        the lowest node id, which is where the HEAT job lives (it holds
        cores, making node 0 the *tighter* — preferred — fit)."""
        runner, _ = _two_node_runner(aware=False)
        runner.engine.run(until=1.0)
        heat_node = runner.cluster.allocation_of("heat").node_ids[0]
        runner.submit_at(2.0, _nlp())
        runner.engine.run(until=10.0)
        trainer_node = runner.cluster.allocation_of("nlp").node_ids[0]
        assert trainer_node == heat_node
        assert runner.gpu_job_utilization("nlp") < (
            runner.gpu_job_expected_utilization("nlp")
        )

    def test_falls_back_to_hot_nodes_when_nothing_else_fits(self):
        """Awareness is a preference, not an admission control: with every
        node hot, the job still runs."""
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4, mem_bandwidth_gbps=110.0)),)
            )
        )
        scheduler = CodaScheduler(
            CodaConfig(
                contention_aware_placement=True,
                eliminator=EliminatorConfig(enabled=False),
            )
        )
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(
            0.0, heat_job("heat", 0.0, threads=12, duration_s=1e6, tenant_id=18)
        )
        runner.submit_at(2.0, _nlp(iters=100))
        runner.engine.run(until=10.0)
        assert cluster.has_allocation("nlp")
