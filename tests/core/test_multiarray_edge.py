"""Multi-array scheduler edge behaviours."""

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig, small_cluster
from repro.core.coda import CodaConfig, CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import CpuJob, GpuJob


def _gpu(job_id, tenant=1, gpus=1, nodes=1, model="resnet50", iters=100000, submit=0.0):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=iters,
    )


def _cpu(job_id, tenant=18, cores=4, duration=1e6, submit=0.0, bw=50.0, heat=False):
    return CpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=submit,
        cores=cores,
        duration_s=duration,
        bw_demand_gbps=bw,
        is_heat=heat,
    )


class TestMultiNodeReclaim:
    def test_multi_node_job_aborts_borrowers_on_both_nodes(self):
        """A 2N2G job reclaims reserved cores from CPU borrowers on two
        nodes at once."""
        cluster = Cluster(small_cluster(nodes=2))
        scheduler = CodaScheduler(CodaConfig(reserved_cores=26))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # CPU array capacity is 2 cores/node; these jobs must borrow.
        for index in range(2):
            runner.submit_at(0.0, _cpu(f"b{index}", cores=27, bw=1.0))
        runner.engine.run(until=1.0)
        assert len(scheduler._borrowed_cpu) == 2
        runner.submit_at(
            2.0, _gpu("gang", gpus=2, nodes=2, model="transformer")
        )
        result_events = runner.engine.run(until=10.0)
        assert cluster.has_allocation("gang")
        assert runner.collector.records["b0"].preempt_count == 1
        assert runner.collector.records["b1"].preempt_count == 1


class TestHalvedCpuJobAccounting:
    def test_halving_frees_cpu_array_capacity_immediately(self):
        """Sec. V-D: 'For the released CPU cores, CODA tries to schedule
        new CPU jobs' — the live accounting must see the halving."""
        cluster = Cluster(
            ClusterConfig(
                node_groups=(
                    (1, NodeConfig(gpus=4, mba_supported=False)),
                )
            )
        )
        scheduler = CodaScheduler(CodaConfig(reserved_cores=16))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # Fill the 12-core CPU array with one hog, then contend: a
        # sensitive trainer forces the no-MBA fallback (core halving).
        runner.submit_at(0.0, _cpu("hog", cores=12, bw=100.0, heat=True))
        runner.submit_at(0.0, _gpu("nlp", model="bat", iters=100000))
        runner.submit_at(1.0, _cpu("waiter", cores=6, bw=1.0))
        runner.engine.run(until=300.0)
        assert runner.collector.core_halving_events >= 1
        assert cluster.node(0).share_of("hog").cpus <= 6
        # The freed cores admitted the waiting CPU job.
        assert runner.collector.records["waiter"].first_start is not None


class TestLedgerConsistency:
    def test_preempted_gpu_borrower_releases_its_share(self):
        cluster = Cluster(
            ClusterConfig(
                node_groups=((1, NodeConfig(gpus=4)), (1, NodeConfig(gpus=8)))
            )
        )
        scheduler = CodaScheduler()
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # Three small jobs; whoever DRF places last overflows onto the
        # big node as a borrower.
        runner.submit_at(0.0, _gpu("small-a", tenant=2, gpus=2))
        runner.submit_at(0.0, _gpu("small-b", tenant=2, gpus=2))
        runner.submit_at(0.0, _gpu("small-c", tenant=1, gpus=2))
        runner.engine.run(until=1.0)
        assert len(scheduler._borrowed_gpu) == 1
        borrower_id = next(iter(scheduler._borrowed_gpu))
        borrower_tenant = scheduler._running[borrower_id].tenant_id
        # An 8-GPU claimer migrates the borrower off the big node.
        runner.submit_at(2.0, _gpu("claimer", tenant=3, gpus=8))
        runner.engine.run(until=3.0)
        assert cluster.has_allocation("claimer")
        # The tenant's ledger share reflects exactly its *running* jobs:
        # queued (migrated, not yet re-placed) jobs contribute nothing.
        tenants = {"small-a": 2, "small-b": 2, "small-c": 1}
        expected = sum(
            2
            for job_id, tenant in tenants.items()
            if tenant == borrower_tenant and cluster.has_allocation(job_id)
        )
        assert scheduler._gpu_ledger.usage_of(borrower_tenant).gpus == expected


class TestBackfillBound:
    def test_backfill_depth_limits_scan(self):
        cluster = Cluster(small_cluster(nodes=1))
        scheduler = CodaScheduler()
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        # The big queue holds BACKFILL_DEPTH impossible jobs (8 GPUs per
        # node on a 4-GPU cluster) ahead of a feasible 4-GPU job: the
        # bounded scan must not reach it.
        for index in range(scheduler.BACKFILL_DEPTH):
            runner.submit_at(0.0, _gpu(f"impossible{index}", tenant=1, gpus=8))
        runner.submit_at(0.0, _gpu("feasible", tenant=1, gpus=4))
        runner.engine.run(until=10.0)
        assert not cluster.has_allocation("feasible")
