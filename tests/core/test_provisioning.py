"""Array provisioning from historical statistics."""

import pytest

from repro.config import paper_cluster
from repro.core.coda import CodaConfig
from repro.core.provisioning import (
    optimal_cores_per_gpu,
    suggest_four_gpu_fraction,
    suggest_reservation,
)
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import GpuJob
from repro.workload.tracegen import TraceConfig, generate_trace


def _job(job_id, model="resnet50", gpus=1, nodes=1):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=0.0,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=10,
    )


class TestOptimalCoresPerGpu:
    def test_matches_model_optima(self):
        samples = optimal_cores_per_gpu([_job("a", "alexnet"), _job("b", "resnet50")])
        assert samples == [8.0, 3.0]

    def test_multi_gpu_normalized_per_gpu(self):
        samples = optimal_cores_per_gpu([_job("a", "resnet50", gpus=4)])
        assert samples == [pytest.approx(11 / 4)]

    def test_multi_node_jobs_excluded(self):
        assert optimal_cores_per_gpu([_job("a", nodes=2, gpus=2)]) == []


class TestSuggestReservation:
    def test_cv_heavy_history_reserves_many_cores(self):
        jobs = [_job(f"a{i}", "alexnet") for i in range(10)]
        reserved = suggest_reservation(jobs, paper_cluster())
        # AlexNet wants 8/GPU; typical node carries 5 GPUs -> clamped to
        # leave the CPU-array minimum on a 28-core node.
        assert reserved == 24

    def test_light_history_reserves_few(self):
        jobs = [_job(f"t{i}", "transformer") for i in range(10)]
        reserved = suggest_reservation(jobs, paper_cluster())
        assert 8 <= reserved <= 12  # 2/GPU x 5 GPUs typical

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            suggest_reservation([], paper_cluster())

    def test_paper_trace_suggests_near_the_default(self):
        trace = generate_trace(TraceConfig(duration_days=0.2, seed=5))
        reserved = suggest_reservation(trace.gpu_jobs, paper_cluster())
        assert 12 <= reserved <= 24


class TestSuggestFourGpuFraction:
    def test_share_of_big_demand(self):
        jobs = [_job("a", gpus=4), _job("b", gpus=1), _job("c", gpus=1)]
        assert suggest_four_gpu_fraction(jobs) == pytest.approx(4 / 6)

    def test_clamped_to_bounds(self):
        only_small = [_job("a", gpus=1)]
        only_big = [_job("a", gpus=4)]
        assert suggest_four_gpu_fraction(only_small) == 0.1
        assert suggest_four_gpu_fraction(only_big) == 0.8

    def test_multi_node_jobs_count_total_gpus(self):
        jobs = [_job("a", gpus=2, nodes=2), _job("b", gpus=1)]
        assert suggest_four_gpu_fraction(jobs) == pytest.approx(4 / 5)

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            suggest_four_gpu_fraction([])


class TestCodaConfigProvisioning:
    def test_provisioned_from_trace(self):
        trace = generate_trace(TraceConfig(duration_days=0.2, seed=5))
        config = CodaConfig.provisioned_from(trace.gpu_jobs, paper_cluster())
        assert 1 <= config.reserved_cores <= 24
        assert 0.1 <= config.four_gpu_fraction <= 0.8

    def test_overrides_win(self):
        trace = generate_trace(TraceConfig(duration_days=0.1, seed=5))
        config = CodaConfig.provisioned_from(
            trace.gpu_jobs, paper_cluster(), reserved_cores=9
        )
        assert config.reserved_cores == 9
