"""The adaptive CPU allocator's profiling-step loop."""

import pytest

from repro.core.allocator import AdaptiveCpuAllocator
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import GpuJob

from tests.core.fakes import FakeContext


def _job(job_id="g1", tenant=1, model="resnet50", gpus=1, nodes=1, req=2):
    return GpuJob(
        job_id=job_id,
        tenant_id=tenant,
        submit_time=0.0,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=req,
        total_iterations=1000,
    )


def curve_with_knee(optimum: int, peak: float = 0.9):
    def fn(job_id: str, cores: int) -> float:
        if cores <= optimum:
            return peak * cores / optimum
        return max(0.0, peak - 0.002 * (cores - optimum))

    return fn


class TestInitialCores:
    def test_uses_nstart_rules(self):
        allocator = AdaptiveCpuAllocator()
        assert allocator.initial_cores(_job(model="resnet50"), node_cores=28) == 3
        assert allocator.initial_cores(_job(model="bat"), node_cores=28) == 5

    def test_clamped_by_node(self):
        allocator = AdaptiveCpuAllocator()
        assert allocator.initial_cores(_job(model="bat", gpus=8), node_cores=12) == 12

    def test_tuned_job_restarts_at_tuned_value(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        context.fire_all()
        assert allocator.tuned_cores(job.job_id) == 5
        assert allocator.initial_cores(job, node_cores=28) == 5


class TestProfilingLoop:
    def test_converges_and_records_outcome(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        assert allocator.is_tuning(job.job_id)
        context.fire_all()
        assert not allocator.is_tuning(job.job_id)
        outcome = allocator.outcomes[job.job_id]
        assert outcome.tuned_cores == 5
        assert outcome.profiling_steps == 4
        assert context.cores[job.job_id] == 5

    def test_profiling_steps_are_90s_apart(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(3))
        job = _job()
        context.start_job(job.job_id, 3)
        allocator.on_job_started(job, 3, context)
        assert context.events[0][0] == pytest.approx(90.0)

    def test_resize_failure_settles_on_best_seen(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(10))
        context.max_resize = 6
        job = _job()
        context.start_job(job.job_id, 5)
        allocator.on_job_started(job, 5, context)
        context.fire_all()
        assert allocator.tuned_cores(job.job_id) == 6

    def test_job_finish_mid_tuning_cancels_events(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        allocator.on_job_finished(job, final_cores=4)
        context.stop_job(job.job_id)
        assert context.fire_all() <= 1  # the cancelled step never recurses
        assert not allocator.is_tuning(job.job_id)

    def test_duplicate_start_is_ignored(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        allocator.on_job_started(job, 4, context)
        assert len(context.events) == 1

    def test_step_after_job_vanishes_is_harmless(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        context.stop_job(job.job_id)  # finished without notifying allocator
        context.fire_all()  # must not raise


class TestHistoryFeedback:
    def test_finish_records_history_per_gpu(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(12))
        job = _job(gpus=4)
        context.start_job(job.job_id, 12)
        allocator.on_job_started(job, 12, context)
        context.fire_all()
        allocator.on_job_finished(job, final_cores=12)
        assert allocator.history.best_cores(1, "CV") == 3  # 12 cores / 4 GPUs

    def test_multi_node_outcomes_excluded_from_history(self):
        allocator = AdaptiveCpuAllocator()
        job = _job(nodes=2, gpus=2)
        allocator.on_job_finished(job, final_cores=2)
        assert allocator.history.best_cores(1, "CV") is None

    def test_next_job_starts_from_history(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(6))
        first = _job("g1")
        context.start_job("g1", 3)
        allocator.on_job_started(first, 3, context)
        context.fire_all()
        allocator.on_job_finished(first, final_cores=6)
        second = _job("g2")
        assert allocator.initial_cores(second, node_cores=28) == 6


class TestPreemption:
    def test_preempted_mid_tuning_remembers_best(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        context.fire_next()  # baseline measurement at 4
        allocator.on_job_preempted(job, current_cores=4)
        assert not allocator.is_tuning(job.job_id)
        assert allocator.tuned_cores(job.job_id) is not None

    def test_preempted_after_tuning_keeps_tuned_cores(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 5)
        allocator.on_job_started(job, 5, context)
        context.fire_all()
        allocator.on_job_preempted(job, current_cores=5)
        assert allocator.tuned_cores(job.job_id) == 5

    def test_restart_after_migration_skips_tuning(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 5)
        allocator.on_job_started(job, 5, context)
        context.fire_all()
        allocator.on_job_preempted(job, current_cores=5)
        events_before = len(context.events)
        allocator.on_job_started(job, 5, context)
        assert len(context.events) == events_before


class TestDegradedMode:
    """Repeated failure-killed profiling sessions suspend new sessions
    for a cooldown; the allocator then serves N_start only."""

    def _fail_active_session(self, allocator, context, job_id, at):
        job = _job(job_id=job_id)
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        assert allocator.is_tuning(job.job_id)
        context._now = at
        context.stop_job(job.job_id)
        allocator.on_job_failed(job, now=at)

    def test_enters_degraded_after_threshold_aborts(self):
        allocator = AdaptiveCpuAllocator(
            degraded_after_aborts=3, degraded_cooldown_s=1000.0
        )
        context = FakeContext(curve_with_knee(5))
        for i in range(3):
            self._fail_active_session(allocator, context, f"g{i}", at=10.0 * (i + 1))
        assert allocator.degraded_entries == 1
        assert allocator.is_degraded(30.0)
        # New jobs run at N_start with no session opened.
        job = _job(job_id="after")
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        assert not allocator.is_tuning(job.job_id)
        assert allocator.sessions_skipped_degraded == 1

    def test_probing_resumes_after_cooldown(self):
        allocator = AdaptiveCpuAllocator(
            degraded_after_aborts=2, degraded_cooldown_s=100.0
        )
        context = FakeContext(curve_with_knee(5))
        for i in range(2):
            self._fail_active_session(allocator, context, f"g{i}", at=10.0)
        assert allocator.is_degraded(50.0)
        context._now = 200.0
        assert not allocator.is_degraded(200.0)
        job = _job(job_id="later")
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        assert allocator.is_tuning(job.job_id)

    def test_clean_session_resets_the_strike_count(self):
        allocator = AdaptiveCpuAllocator(
            degraded_after_aborts=2, degraded_cooldown_s=1000.0
        )
        context = FakeContext(curve_with_knee(5))
        self._fail_active_session(allocator, context, "g0", at=10.0)
        # A session that converges cleanly proves the loop works again.
        ok = _job(job_id="ok")
        context.start_job(ok.job_id, 4)
        allocator.on_job_started(ok, 4, context)
        context.fire_all()
        assert not allocator.is_tuning(ok.job_id)
        self._fail_active_session(allocator, context, "g1", at=500.0)
        assert allocator.degraded_entries == 0
        assert not allocator.is_degraded(500.0)

    def test_failures_without_active_session_do_not_count(self):
        allocator = AdaptiveCpuAllocator(
            degraded_after_aborts=1, degraded_cooldown_s=1000.0
        )
        # The job never opened a session (e.g. it was already tuned).
        allocator.on_job_failed(_job(job_id="idle"), now=10.0)
        assert allocator.degraded_entries == 0

    def test_failed_job_forgets_tuned_cores(self):
        allocator = AdaptiveCpuAllocator()
        context = FakeContext(curve_with_knee(5))
        job = _job()
        context.start_job(job.job_id, 4)
        allocator.on_job_started(job, 4, context)
        context.fire_all()
        assert allocator.tuned_cores(job.job_id) == 5
        allocator.on_job_failed(job, now=1000.0)
        assert allocator.tuned_cores(job.job_id) is None


class TestValidation:
    def test_bad_profiling_step(self):
        with pytest.raises(ValueError):
            AdaptiveCpuAllocator(profiling_step_s=0.0)

    def test_bad_max_cores(self):
        with pytest.raises(ValueError):
            AdaptiveCpuAllocator(max_cores_per_job=0)

    def test_bad_degraded_knobs(self):
        with pytest.raises(ValueError):
            AdaptiveCpuAllocator(degraded_after_aborts=0)
        with pytest.raises(ValueError):
            AdaptiveCpuAllocator(degraded_cooldown_s=-1.0)
