"""A hand-cranked SchedulerContext for unit-testing CODA components."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.schedulers.base import SchedulerContext


class FakeHandle:
    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class FakeContext(SchedulerContext):
    """Deterministic, manually-advanced context.

    * ``utilization_fn(job_id, cores) -> util`` supplies the profiling
      signal;
    * scheduled events queue up and fire when the test calls
      :meth:`fire_next`;
    * resizes succeed unless the test sets ``resize_allowed`` False or a
      per-value limit via ``max_resize``.
    """

    def __init__(
        self,
        utilization_fn: Callable[[str, int], float],
        cluster: Optional[Cluster] = None,
    ) -> None:
        self.cluster = cluster or Cluster()
        self._utilization_fn = utilization_fn
        self._now = 0.0
        self.cores: Dict[str, int] = {}
        self.events: List[Tuple[float, Callable[[], None], FakeHandle, str]] = []
        self.resize_allowed = True
        self.max_resize: Optional[int] = None
        self.resize_calls: List[Tuple[str, int]] = []
        self.throttled: List[Tuple[str, int]] = []
        self.halved: List[str] = []
        self.preempted: List[str] = []
        self.mba_supported = True
        self.running: set = set()
        self.schedule_requests = 0

    # ------------------------------------------------------------------ #
    # SchedulerContext

    @property
    def now(self) -> float:
        return self._now

    def schedule_event(self, delay_s, action, tag=""):
        handle = FakeHandle()
        self.events.append((self._now + delay_s, action, handle, tag))
        return handle

    def resize_gpu_job_cores(self, job_id: str, cpus_per_node: int) -> bool:
        if not self.resize_allowed:
            return False
        if self.max_resize is not None and cpus_per_node > self.max_resize:
            return False
        self.resize_calls.append((job_id, cpus_per_node))
        self.cores[job_id] = cpus_per_node
        return True

    def gpu_job_utilization(self, job_id: str) -> float:
        if job_id not in self.running:
            raise KeyError(job_id)
        return self._utilization_fn(job_id, self.cores[job_id])

    def gpu_job_expected_utilization(self, job_id: str) -> float:
        return self.gpu_job_utilization(job_id)

    def throttle_cpu_job(self, job_id: str, node_id: int) -> bool:
        if not self.mba_supported:
            return False
        self.throttled.append((job_id, node_id))
        return True

    def halve_cpu_job_cores(self, job_id: str) -> None:
        self.halved.append(job_id)

    def preempt_job(self, job_id: str, *, preserve_progress: bool, reason: str) -> None:
        self.preempted.append(job_id)

    def request_schedule(self) -> None:
        self.schedule_requests += 1

    # ------------------------------------------------------------------ #
    # Test driving

    def start_job(self, job_id: str, cores: int) -> None:
        self.running.add(job_id)
        self.cores[job_id] = cores

    def stop_job(self, job_id: str) -> None:
        self.running.discard(job_id)

    def fire_next(self) -> bool:
        """Fire the earliest live scheduled event; False when none left."""
        live = [entry for entry in self.events if not entry[2].cancelled]
        if not live:
            return False
        live.sort(key=lambda entry: entry[0])
        when, action, handle, _ = live[0]
        self.events.remove((when, action, handle, _))
        self._now = max(self._now, when)
        action()
        return True

    def fire_all(self, limit: int = 100) -> int:
        fired = 0
        while fired < limit and self.fire_next():
            fired += 1
        return fired

    def release_cpu_throttle(self, job_id: str, node_id: int) -> None:
        node = self.cluster.nodes[node_id]
        node.mba.release(job_id)
