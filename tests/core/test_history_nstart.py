"""Tenant history log and N_start determination (Sec. V-B1)."""

import pytest

from repro.core.historylog import TenantHistory
from repro.core.nstart import CATEGORY_DEFAULTS, GLOBAL_DEFAULT, determine_n_start
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import GpuJob, JobHints


def _job(
    tenant=1,
    model="resnet50",
    category_provided=True,
    nodes=1,
    gpus=1,
    **hint_kwargs,
):
    return GpuJob(
        job_id="j",
        tenant_id=tenant,
        submit_time=0.0,
        model_name=model,
        setup=TrainSetup(nodes, gpus),
        requested_cpus=2,
        total_iterations=10,
        hints=JobHints(category_provided=category_provided, **hint_kwargs),
    )


class TestTenantHistory:
    def test_best_cores_takes_largest(self):
        history = TenantHistory()
        history.record(1, "a", "resnet50", "CV", 3)
        history.record(1, "b", "alexnet", "CV", 8)
        assert history.best_cores(1, "CV") == 8

    def test_no_history_returns_none(self):
        assert TenantHistory().best_cores(1, "CV") is None

    def test_categories_are_separate(self):
        history = TenantHistory()
        history.record(1, "a", "bat", "NLP", 5)
        assert history.best_cores(1, "CV") is None

    def test_tenants_are_separate(self):
        history = TenantHistory()
        history.record(1, "a", "bat", "NLP", 5)
        assert history.best_cores(2, "NLP") is None

    def test_window_evicts_old_entries(self):
        history = TenantHistory(window=2)
        history.record(1, "a", "alexnet", "CV", 9)
        history.record(1, "b", "resnet50", "CV", 3)
        history.record(1, "c", "resnet50", "CV", 3)
        assert history.best_cores(1, "CV") == 3

    def test_any_category_fallback(self):
        history = TenantHistory()
        history.record(1, "a", "bat", "NLP", 5)
        history.record(1, "b", "resnet50", "CV", 3)
        assert history.best_cores_any_category(1) == 5
        assert history.best_cores_any_category(2) is None

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError):
            TenantHistory().record(1, "a", "bat", "NLP", 0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TenantHistory(window=0)

    def test_entries_for(self):
        history = TenantHistory()
        history.record(1, "a", "bat", "NLP", 5)
        entries = history.entries_for(1, "NLP")
        assert len(entries) == 1
        assert entries[0].job_id == "a"


class TestCategoryDefaults:
    def test_paper_values(self):
        """Sec. V-B1: 3 for CV, 5 for NLP, 5 for SPEECH."""
        assert CATEGORY_DEFAULTS == {"CV": 3, "NLP": 5, "SPEECH": 5}

    def test_cv_default(self):
        start = determine_n_start(_job(model="resnet50"), TenantHistory(), max_cores=28)
        assert start == 3

    def test_nlp_default(self):
        start = determine_n_start(_job(model="bat"), TenantHistory(), max_cores=28)
        assert start == 5

    def test_speech_default(self):
        start = determine_n_start(_job(model="wavenet"), TenantHistory(), max_cores=28)
        assert start == 5

    def test_no_category_uses_global_default(self):
        start = determine_n_start(
            _job(category_provided=False), TenantHistory(), max_cores=28
        )
        assert start == GLOBAL_DEFAULT


class TestHistoryPriority:
    def test_same_category_history_wins(self):
        history = TenantHistory()
        history.record(1, "a", "alexnet", "CV", 8)
        assert determine_n_start(_job(), history, max_cores=28) == 8

    def test_cross_category_fallback_without_category(self):
        history = TenantHistory()
        history.record(1, "a", "bat", "NLP", 5)
        start = determine_n_start(
            _job(category_provided=False), history, max_cores=28
        )
        assert start == 5

    def test_other_tenants_history_is_ignored(self):
        history = TenantHistory()
        history.record(2, "a", "alexnet", "CV", 8)
        assert determine_n_start(_job(tenant=1), history, max_cores=28) == 3


class TestHints:
    def test_pipeline_hint_reduces_by_one(self):
        start = determine_n_start(
            _job(uses_pipeline=True), TenantHistory(), max_cores=28
        )
        assert start == 2

    def test_many_weights_reduces_by_one(self):
        start = determine_n_start(
            _job(many_weights=True), TenantHistory(), max_cores=28
        )
        assert start == 2

    def test_complex_prep_increases_by_one(self):
        start = determine_n_start(
            _job(model="bat", complex_inter_iteration=True),
            TenantHistory(),
            max_cores=28,
        )
        assert start == 6

    def test_hints_compose(self):
        start = determine_n_start(
            _job(uses_pipeline=True, many_weights=True), TenantHistory(), max_cores=28
        )
        assert start == 1

    def test_hints_do_not_apply_to_history_starts(self):
        """History already reflects tuned outcomes; hints must not skew it."""
        history = TenantHistory()
        history.record(1, "a", "resnet50", "CV", 4)
        start = determine_n_start(_job(uses_pipeline=True), history, max_cores=28)
        assert start == 4

    def test_floor_is_one_core(self):
        history = TenantHistory()
        job = _job(uses_pipeline=True, many_weights=True)
        start = determine_n_start(job, history, max_cores=28)
        assert start >= 1


class TestScaling:
    def test_multi_gpu_scales_linearly(self):
        """Sec. IV-B2: per-node demand is linear in local GPU count."""
        start = determine_n_start(_job(gpus=4), TenantHistory(), max_cores=28)
        assert start == 12

    def test_multi_node_capped_at_two(self):
        start = determine_n_start(
            _job(nodes=2, gpus=2, model="alexnet"), TenantHistory(), max_cores=28
        )
        assert start <= 2

    def test_clamped_to_max_cores(self):
        history = TenantHistory()
        history.record(1, "a", "alexnet", "CV", 8)
        start = determine_n_start(_job(gpus=4), history, max_cores=28)
        assert start == 28

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            determine_n_start(_job(), TenantHistory(), max_cores=0)
