"""Rack-aware gang placement (extension) and its runtime effect."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.coda import CodaConfig, CodaScheduler
from repro.experiments.runner import SimulationRunner
from repro.perfmodel.stages import TrainSetup
from repro.workload.job import GpuJob


def _racked_cluster(oversubscription=8.0) -> Cluster:
    """Eight 4-GPU nodes, two racks of four, oversubscribed core."""
    return Cluster(
        ClusterConfig(
            node_groups=((8, NodeConfig(gpus=4)),),
            nodes_per_rack=4,
            rack_oversubscription=oversubscription,
            interconnect_gbps=0.125,  # slow enough that physics dominates
        )
    )


def _gang(job_id, iters=2000, submit=0.0, model="vgg16"):
    return GpuJob(
        job_id=job_id,
        tenant_id=1,
        submit_time=submit,
        model_name=model,
        setup=TrainSetup(2, 2),
        requested_cpus=2,
        total_iterations=iters,
    )


class TestRuntimeEffect:
    def test_cross_rack_gang_trains_slower(self):
        """The racked fabric reaches the performance model: the same gang
        priced across racks synchronizes over the oversubscribed core."""
        from repro.perfmodel.catalog import get_model
        from repro.perfmodel.speed import iteration_time

        cluster = _racked_cluster()
        profile = get_model("vgg16")
        setup = TrainSetup(2, 2)
        same_fabric = cluster.fabric.for_nodes([0, 1])
        cross_fabric = cluster.fabric.for_nodes([0, 4])
        same_iter = iteration_time(profile, setup, 2, interconnect=same_fabric)
        cross_iter = iteration_time(profile, setup, 2, interconnect=cross_fabric)
        assert cross_iter.total_s > same_iter.total_s

    def test_runner_prices_gangs_through_the_fabric(self):
        """A gang the scheduler placed within a rack runs at the
        intra-rack speed the model predicts."""
        from repro.perfmodel.catalog import get_model
        from repro.perfmodel.speed import iteration_time

        cluster = _racked_cluster()
        runner = SimulationRunner(
            cluster, CodaScheduler(), sample_interval_s=600.0
        )
        runner.submit_at(0.0, _gang("same", iters=10**6))
        runner.engine.run(until=1.0)
        nodes = cluster.allocation_of("same").node_ids
        assert cluster.topology.same_rack(nodes)
        expected = iteration_time(
            get_model("vgg16"),
            TrainSetup(2, 2),
            cluster.allocation_of("same").shares[0].cpus,
            interconnect=cluster.fabric.for_nodes(nodes),
        )
        assert runner._running_gpu["same"].speed == pytest.approx(
            1.0 / expected.total_s
        )


class TestPlacementPreference:
    def test_rack_aware_keeps_gangs_in_one_rack(self):
        cluster = _racked_cluster()
        scheduler = CodaScheduler(CodaConfig(rack_aware_placement=True))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        for index in range(4):
            runner.submit_at(0.0, _gang(f"g{index}", iters=10**6))
        runner.engine.run(until=1.0)
        for index in range(4):
            nodes = cluster.allocation_of(f"g{index}").node_ids
            assert cluster.topology.same_rack(nodes), f"g{index}: {nodes}"

    def test_rack_aware_still_places_when_no_rack_fits(self):
        """Preference, not admission control: with every rack partially
        used, the gang straddles racks rather than queueing."""
        cluster = _racked_cluster()
        # Occupy all GPUs of three nodes in each rack.
        cluster.allocate("wall", [(n, 1, 4) for n in (0, 1, 2, 4, 5, 6)])
        scheduler = CodaScheduler(CodaConfig(rack_aware_placement=True))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(0.0, _gang("straddler", iters=100))
        runner.engine.run(until=1.0)
        nodes = cluster.allocation_of("straddler").node_ids
        assert not cluster.topology.same_rack(nodes)

    def test_default_is_off_and_flat_topology_is_untouched(self):
        assert CodaConfig().rack_aware_placement is False
        cluster = Cluster(ClusterConfig(node_groups=((4, NodeConfig(gpus=4)),)))
        scheduler = CodaScheduler(CodaConfig(rack_aware_placement=True))
        runner = SimulationRunner(cluster, scheduler, sample_interval_s=600.0)
        runner.submit_at(0.0, _gang("g", iters=10))
        runner.engine.run(until=100.0)
        assert runner.collector.records["g"].finish_time is not None