"""Array-layout construction (Fig. 9)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NodeConfig
from repro.core.arrays import ArrayLayout, build_layout


def _mixed(four_gpu_nodes=3, eight_gpu_nodes=2) -> Cluster:
    return Cluster(
        ClusterConfig(
            node_groups=(
                (four_gpu_nodes, NodeConfig(gpus=4)),
                (eight_gpu_nodes, NodeConfig(gpus=8)),
            )
        )
    )


class TestBuildLayout:
    def test_partitions_every_node_exactly_once(self):
        cluster = _mixed()
        layout = build_layout(cluster)
        assert layout.four_gpu_nodes | layout.one_gpu_nodes == set(range(5))
        assert not layout.four_gpu_nodes & layout.one_gpu_nodes

    def test_densest_nodes_go_to_four_gpu_array(self):
        cluster = _mixed()
        layout = build_layout(cluster, four_gpu_fraction=0.5)
        # The two 8-GPU nodes (ids 3, 4) carry 16 of 28 GPUs > 50 %.
        assert layout.four_gpu_nodes == {3, 4}

    def test_fraction_zero_gives_empty_big_array(self):
        layout = build_layout(_mixed(), four_gpu_fraction=0.0)
        assert layout.four_gpu_nodes == frozenset()

    def test_fraction_one_takes_everything(self):
        layout = build_layout(_mixed(), four_gpu_fraction=1.0)
        assert layout.one_gpu_nodes == frozenset()

    def test_historical_demand_overrides_fraction(self):
        # 80 % of historical GPU demand is >= 4-GPU jobs.
        layout = build_layout(
            _mixed(), historical_big_job_gpus=[4, 4, 4, 4, 1, 1, 1, 1]
        )
        carried = sum(
            _mixed().nodes[node_id].total_gpus
            for node_id in layout.four_gpu_nodes
        )
        assert carried >= 0.7 * 28

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            build_layout(_mixed(), four_gpu_fraction=1.5)


class TestLayoutQueries:
    def _layout(self):
        return build_layout(_mixed(), four_gpu_fraction=0.5, reserved_cores=16)

    def test_primary_routing(self):
        layout = self._layout()
        assert layout.primary_nodes(4) == layout.four_gpu_nodes
        assert layout.primary_nodes(8) == layout.four_gpu_nodes
        assert layout.primary_nodes(1) == layout.one_gpu_nodes
        assert layout.primary_nodes(2) == layout.one_gpu_nodes

    def test_fallback_is_the_other_array(self):
        layout = self._layout()
        assert layout.fallback_nodes(4) == layout.one_gpu_nodes
        assert layout.fallback_nodes(1) == layout.four_gpu_nodes

    def test_cpu_array_capacity(self):
        layout = self._layout()
        assert layout.cpu_array_capacity(28) == 12
        assert layout.cpu_array_capacity(10) == 0

    def test_overlapping_arrays_rejected(self):
        with pytest.raises(ValueError):
            ArrayLayout(
                four_gpu_nodes=frozenset({1}),
                one_gpu_nodes=frozenset({1}),
                reserved_cores=4,
            )

    def test_negative_reservation_rejected(self):
        with pytest.raises(ValueError):
            ArrayLayout(
                four_gpu_nodes=frozenset(),
                one_gpu_nodes=frozenset({1}),
                reserved_cores=-1,
            )
